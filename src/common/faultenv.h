#ifndef DBSHERLOCK_COMMON_FAULTENV_H_
#define DBSHERLOCK_COMMON_FAULTENV_H_

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/status.h"

namespace dbsherlock::common::faultenv {

/// Seeded, schedule-driven fault injection for the file and socket
/// operations underneath dbsherlockd (DESIGN.md §13). Every durability-
/// or wire-critical syscall in the daemon goes through one of the
/// wrappers below, each tagged with a short *site* label:
///
///   wal.write / wal.fsync       DurableModelStore WAL appends
///   snap.write / snap.fsync     DurableModelStore snapshot compaction
///   seg.write / seg.fsync       TenantStore segment seals
///   seg.read                    TenantStore segment reads (scans, recovery)
///   seg.dirsync                 TenantStore directory fsync after seal
///   srv.send / srv.recv         Server per-connection I/O
///   cli.send / cli.recv         Client request/response I/O
///   cli.connect                 Client TCP connect
///
/// When no schedule is installed the wrappers are a single relaxed
/// atomic load away from the raw syscall — unmeasurable on the service
/// bench. When a schedule is installed (programmatically or via the
/// DBSHERLOCK_FAULT_SCHEDULE environment variable), each call consults
/// the schedule's seeded PCG32 stream and either passes through or
/// injects a fault.
///
/// Schedule grammar (';'-separated entries):
///
///   seed=N                      RNG seed (default 1)
///   <site>=<kind>@<prob>[,ms=N][,after=N][,limit=N]
///
/// `site` is an exact label or a prefix wildcard ("wal.*", "*"). `prob`
/// is the per-call injection probability in [0,1]. `after=N` arms the
/// rule only after N calls at the site; `limit=N` caps how many times
/// the rule fires; `ms=N` sets the stall duration. Kinds:
///
///   eio     fail with EIO, nothing written/read
///   enospc  fail with ENOSPC, nothing written
///   short   short write (half the bytes land, call reports the short
///           count) / short read (1 byte) — exercises retry loops
///   torn    write half the bytes, then fail with EIO — simulates a
///           crash mid-write leaving a torn tail on disk
///   stall   sleep `ms` (default 50), then perform the op normally
///   reset   fail with ECONNRESET (ECONNREFUSED at connect sites)
///
/// Example:
///   DBSHERLOCK_FAULT_SCHEDULE='seed=7;wal.write=torn@0.02,limit=1;
///     seg.fsync=enospc@0.05;srv.recv=stall@0.01,ms=40;srv.send=reset@0.005'

/// One fault decision, visible for tests.
enum class FaultKind { kEio, kEnospc, kShort, kTorn, kStall, kReset };

/// Parses `spec` and installs it as the process-wide schedule, replacing
/// any previous one. An empty spec is equivalent to Clear().
common::Status InstallSchedule(const std::string& spec);

/// Installs the schedule from $DBSHERLOCK_FAULT_SCHEDULE if set. A parse
/// error is returned (and nothing installed) so daemons can refuse to
/// start with a typo'd schedule rather than silently running clean.
common::Status InstallFromEnv();

/// Removes the schedule; wrappers pass through again.
void Clear();

/// The installed schedule spec ("" when disabled) — stamped into
/// BENCH_chaos.json so every chaos run is reproducible.
std::string ActiveSpec();

/// Total faults injected since the schedule was installed.
uint64_t InjectedCount();

/// Per-site call/injection counters: {"site":{"calls":n,"injected":n}}.
common::JsonValue StatsJson();

namespace internal {
extern std::atomic<bool> g_enabled;
ssize_t WriteFaulty(const char* site, int fd, const void* buf, size_t n);
ssize_t ReadFaulty(const char* site, int fd, void* buf, size_t n);
int FsyncFaulty(const char* site, int fd);
ssize_t SendFaulty(const char* site, int fd, const void* buf, size_t n,
                   int flags);
ssize_t RecvFaulty(const char* site, int fd, void* buf, size_t n, int flags);
int ConnectFaulty(const char* site, int fd, const sockaddr* addr,
                  socklen_t len);
}  // namespace internal

/// True when a schedule is installed (one relaxed load).
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Wrappers: identical contracts to the raw syscalls (including errno on
// failure), plus injection when a schedule is live.

inline ssize_t Write(const char* site, int fd, const void* buf, size_t n) {
  if (!Enabled()) return ::write(fd, buf, n);
  return internal::WriteFaulty(site, fd, buf, n);
}

inline ssize_t Read(const char* site, int fd, void* buf, size_t n) {
  if (!Enabled()) return ::read(fd, buf, n);
  return internal::ReadFaulty(site, fd, buf, n);
}

inline int Fsync(const char* site, int fd) {
  if (!Enabled()) return ::fsync(fd);
  return internal::FsyncFaulty(site, fd);
}

inline ssize_t Send(const char* site, int fd, const void* buf, size_t n,
                    int flags) {
  if (!Enabled()) return ::send(fd, buf, n, flags);
  return internal::SendFaulty(site, fd, buf, n, flags);
}

inline ssize_t Recv(const char* site, int fd, void* buf, size_t n,
                    int flags) {
  if (!Enabled()) return ::recv(fd, buf, n, flags);
  return internal::RecvFaulty(site, fd, buf, n, flags);
}

inline int Connect(const char* site, int fd, const sockaddr* addr,
                   socklen_t len) {
  if (!Enabled()) return ::connect(fd, addr, len);
  return internal::ConnectFaulty(site, fd, addr, len);
}

}  // namespace dbsherlock::common::faultenv

#endif  // DBSHERLOCK_COMMON_FAULTENV_H_
