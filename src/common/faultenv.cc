#include "common/faultenv.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/strings.h"

namespace dbsherlock::common::faultenv {

namespace {

using common::Result;
using common::Status;

struct Rule {
  std::string site;          // exact label, or prefix when wildcard
  bool wildcard = false;     // site ended in '*'
  FaultKind kind = FaultKind::kEio;
  double probability = 0.0;
  int stall_ms = 50;
  uint64_t after = 0;              // armed only past this many site calls
  uint64_t limit = UINT64_MAX;     // max injections for this rule
  uint64_t fired = 0;
};

struct SiteStats {
  uint64_t calls = 0;
  uint64_t injected = 0;
};

/// The process-wide schedule. The mutex is only ever taken on the
/// enabled path; disabled callers see just the relaxed atomic in
/// Enabled().
struct Schedule {
  std::string spec;
  std::vector<Rule> rules;
  Pcg32 rng{1, 54};
  std::map<std::string, SiteStats> stats;
  uint64_t injected_total = 0;
};

std::mutex g_mu;
std::unique_ptr<Schedule> g_schedule;

Result<FaultKind> ParseKind(const std::string& name) {
  if (name == "eio") return FaultKind::kEio;
  if (name == "enospc") return FaultKind::kEnospc;
  if (name == "short") return FaultKind::kShort;
  if (name == "torn") return FaultKind::kTorn;
  if (name == "stall") return FaultKind::kStall;
  if (name == "reset") return FaultKind::kReset;
  return Status::ParseError("unknown fault kind '" + name +
                            "' (want eio|enospc|short|torn|stall|reset)");
}

/// Parses one "<site>=<kind>@<prob>[,ms=N][,after=N][,limit=N]" entry.
Result<Rule> ParseRule(const std::string& entry) {
  size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::ParseError("fault rule '" + entry +
                              "' wants <site>=<kind>@<prob>[,opts]");
  }
  Rule rule;
  rule.site = std::string(common::Trim(entry.substr(0, eq)));
  if (!rule.site.empty() && rule.site.back() == '*') {
    rule.wildcard = true;
    rule.site.pop_back();
  }
  std::vector<std::string> fields = common::Split(entry.substr(eq + 1), ',');
  if (fields.empty()) {
    return Status::ParseError("fault rule '" + entry + "' without a fault");
  }
  size_t at = fields[0].find('@');
  if (at == std::string::npos) {
    return Status::ParseError("fault '" + fields[0] +
                              "' wants <kind>@<probability>");
  }
  auto kind = ParseKind(std::string(common::Trim(fields[0].substr(0, at))));
  if (!kind.ok()) return kind.status();
  rule.kind = *kind;
  auto prob = common::ParseDouble(fields[0].substr(at + 1));
  if (!prob.ok()) return prob.status();
  if (!(*prob >= 0.0 && *prob <= 1.0)) {
    return Status::ParseError(common::StrFormat(
        "fault probability %g outside [0, 1]", *prob));
  }
  rule.probability = *prob;
  for (size_t i = 1; i < fields.size(); ++i) {
    size_t opt_eq = fields[i].find('=');
    if (opt_eq == std::string::npos) {
      return Status::ParseError("bad fault option '" + fields[i] + "'");
    }
    std::string key = std::string(common::Trim(fields[i].substr(0, opt_eq)));
    auto value = common::ParseInt64(fields[i].substr(opt_eq + 1));
    if (!value.ok() || *value < 0) {
      return Status::ParseError("bad fault option value in '" + fields[i] +
                                "'");
    }
    if (key == "ms") {
      rule.stall_ms = static_cast<int>(*value);
    } else if (key == "after") {
      rule.after = static_cast<uint64_t>(*value);
    } else if (key == "limit") {
      rule.limit = static_cast<uint64_t>(*value);
    } else {
      return Status::ParseError("unknown fault option '" + key +
                                "' (want ms|after|limit)");
    }
  }
  return rule;
}

Result<std::unique_ptr<Schedule>> ParseSchedule(const std::string& spec) {
  auto schedule = std::make_unique<Schedule>();
  schedule->spec = spec;
  uint64_t seed = 1;
  for (const std::string& raw : common::Split(spec, ';')) {
    std::string entry = std::string(common::Trim(raw));
    if (entry.empty()) continue;
    if (entry.rfind("seed=", 0) == 0) {
      auto parsed = common::ParseInt64(entry.substr(5));
      if (!parsed.ok() || *parsed < 0) {
        return Status::ParseError("bad fault schedule seed in '" + entry +
                                  "'");
      }
      seed = static_cast<uint64_t>(*parsed);
      continue;
    }
    auto rule = ParseRule(entry);
    if (!rule.ok()) return rule.status();
    schedule->rules.push_back(std::move(*rule));
  }
  schedule->rng = Pcg32(seed, 54);
  return schedule;
}

struct Decision {
  FaultKind kind;
  int stall_ms;
};

/// One decision per call at `site`: walks the rules in order, first match
/// that fires wins. Must be called with g_mu held and g_schedule live.
std::optional<Decision> DecideLocked(const char* site) {
  Schedule& s = *g_schedule;
  SiteStats& stats = s.stats[site];
  uint64_t call = stats.calls++;
  std::string_view site_view(site);
  for (Rule& rule : s.rules) {
    bool matches = rule.wildcard
                       ? site_view.substr(0, rule.site.size()) == rule.site
                       : site_view == rule.site;
    if (!matches || call < rule.after || rule.fired >= rule.limit) continue;
    // The RNG is consulted for every armed matching rule, so the stream
    // is a deterministic function of (seed, call sequence) alone.
    if (!s.rng.NextBernoulli(rule.probability)) continue;
    ++rule.fired;
    ++stats.injected;
    ++s.injected_total;
    return Decision{rule.kind, rule.stall_ms};
  }
  return std::nullopt;
}

std::optional<Decision> Decide(const char* site) {
  std::lock_guard lock(g_mu);
  if (g_schedule == nullptr) return std::nullopt;
  return DecideLocked(site);
}

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(std::max(0, ms)));
}

}  // namespace

namespace internal {

std::atomic<bool> g_enabled{false};

ssize_t WriteFaulty(const char* site, int fd, const void* buf, size_t n) {
  auto decision = Decide(site);
  if (!decision) return ::write(fd, buf, n);
  switch (decision->kind) {
    case FaultKind::kEio:
      errno = EIO;
      return -1;
    case FaultKind::kEnospc:
      errno = ENOSPC;
      return -1;
    case FaultKind::kShort:
      if (n > 1) return ::write(fd, buf, n / 2);
      return ::write(fd, buf, n);
    case FaultKind::kTorn: {
      // Half the bytes land on disk, then the call fails: the torn-tail
      // shape a crash mid-write leaves behind.
      if (n > 1) (void)::write(fd, buf, n / 2);
      errno = EIO;
      return -1;
    }
    case FaultKind::kStall:
      SleepMs(decision->stall_ms);
      return ::write(fd, buf, n);
    case FaultKind::kReset:
      errno = ECONNRESET;
      return -1;
  }
  errno = EIO;
  return -1;
}

ssize_t ReadFaulty(const char* site, int fd, void* buf, size_t n) {
  auto decision = Decide(site);
  if (!decision) return ::read(fd, buf, n);
  switch (decision->kind) {
    case FaultKind::kEio:
    case FaultKind::kEnospc:
    case FaultKind::kTorn:
      errno = EIO;
      return -1;
    case FaultKind::kShort:
      return ::read(fd, buf, n > 0 ? 1 : 0);
    case FaultKind::kStall:
      SleepMs(decision->stall_ms);
      return ::read(fd, buf, n);
    case FaultKind::kReset:
      errno = ECONNRESET;
      return -1;
  }
  errno = EIO;
  return -1;
}

int FsyncFaulty(const char* site, int fd) {
  auto decision = Decide(site);
  if (!decision) return ::fsync(fd);
  switch (decision->kind) {
    case FaultKind::kEnospc:
      errno = ENOSPC;
      return -1;
    case FaultKind::kStall:
      SleepMs(decision->stall_ms);
      return ::fsync(fd);
    default:
      errno = EIO;
      return -1;
  }
}

ssize_t SendFaulty(const char* site, int fd, const void* buf, size_t n,
                   int flags) {
  auto decision = Decide(site);
  if (!decision) return ::send(fd, buf, n, flags);
  switch (decision->kind) {
    case FaultKind::kShort:
      if (n > 1) return ::send(fd, buf, n / 2, flags);
      return ::send(fd, buf, n, flags);
    case FaultKind::kStall:
      SleepMs(decision->stall_ms);
      return ::send(fd, buf, n, flags);
    case FaultKind::kReset:
      errno = ECONNRESET;
      return -1;
    default:
      errno = EIO;
      return -1;
  }
}

ssize_t RecvFaulty(const char* site, int fd, void* buf, size_t n,
                   int flags) {
  auto decision = Decide(site);
  if (!decision) return ::recv(fd, buf, n, flags);
  switch (decision->kind) {
    case FaultKind::kShort:
      return ::recv(fd, buf, n > 0 ? 1 : 0, flags);
    case FaultKind::kStall:
      SleepMs(decision->stall_ms);
      return ::recv(fd, buf, n, flags);
    case FaultKind::kReset:
      errno = ECONNRESET;
      return -1;
    default:
      errno = EIO;
      return -1;
  }
}

int ConnectFaulty(const char* site, int fd, const sockaddr* addr,
                  socklen_t len) {
  auto decision = Decide(site);
  if (!decision) return ::connect(fd, addr, len);
  switch (decision->kind) {
    case FaultKind::kStall:
      SleepMs(decision->stall_ms);
      return ::connect(fd, addr, len);
    case FaultKind::kReset:
      errno = ECONNREFUSED;
      return -1;
    default:
      errno = EIO;
      return -1;
  }
}

}  // namespace internal

Status InstallSchedule(const std::string& spec) {
  if (common::Trim(spec).empty()) {
    Clear();
    return Status::OK();
  }
  auto schedule = ParseSchedule(spec);
  if (!schedule.ok()) return schedule.status();
  {
    std::lock_guard lock(g_mu);
    g_schedule = std::move(*schedule);
  }
  internal::g_enabled.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status InstallFromEnv() {
  const char* spec = std::getenv("DBSHERLOCK_FAULT_SCHEDULE");
  if (spec == nullptr) return Status::OK();
  return InstallSchedule(spec);
}

void Clear() {
  internal::g_enabled.store(false, std::memory_order_relaxed);
  std::lock_guard lock(g_mu);
  g_schedule.reset();
}

std::string ActiveSpec() {
  std::lock_guard lock(g_mu);
  return g_schedule == nullptr ? std::string() : g_schedule->spec;
}

uint64_t InjectedCount() {
  std::lock_guard lock(g_mu);
  return g_schedule == nullptr ? 0 : g_schedule->injected_total;
}

common::JsonValue StatsJson() {
  std::lock_guard lock(g_mu);
  common::JsonValue::Object out;
  if (g_schedule != nullptr) {
    for (const auto& [site, stats] : g_schedule->stats) {
      common::JsonValue::Object entry;
      entry["calls"] = static_cast<double>(stats.calls);
      entry["injected"] = static_cast<double>(stats.injected);
      out[site] = common::JsonValue(std::move(entry));
    }
  }
  return common::JsonValue(std::move(out));
}

}  // namespace dbsherlock::common::faultenv
