#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"

namespace dbsherlock::common {

namespace {

/// Set for the lifetime of every pool worker thread (see OnWorkerThread).
thread_local bool tls_on_pool_worker = false;

}  // namespace

size_t EffectiveParallelism(size_t requested) {
  if (requested != 0) return requested;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) { EnsureAtLeast(num_threads); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::EnsureAtLeast(size_t num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < num_threads && !stop_) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  tls_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(EffectiveParallelism(0));
  return pool;
}

bool ThreadPool::OnWorkerThread() { return tls_on_pool_worker; }

ParallelRunner::ParallelRunner(size_t parallelism)
    : lanes_(EffectiveParallelism(parallelism)) {
  // Grow the pool once, up front: Run() then never spawns a thread, which
  // keeps a daemon's steady-state hot path free of thread creation.
  if (lanes_ > 1) ThreadPool::Global().EnsureAtLeast(lanes_ - 1);
}

void ParallelRunner::Run(size_t n,
                         const std::function<void(size_t)>& fn) const {
  if (n == 0) return;
  size_t lanes = std::min(lanes_, n);
  // Serial path: explicit request, trivial range, or already inside a pool
  // worker (running nested work inline avoids pool-saturation deadlock).
  if (lanes <= 1 || ThreadPool::OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Lanes claim fixed-size index chunks off a shared counter. Small chunks
  // (several per lane) absorb per-index cost skew without a scheduler.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    size_t n = 0;
    size_t chunk = 1;
    const std::function<void(size_t)>* fn = nullptr;

    std::mutex mu;
    std::condition_variable done_cv;
    size_t pending_helpers = 0;
    // Lowest failing index seen, with its exception: rethrowing the
    // scheduling-independent minimum keeps error surfacing deterministic.
    size_t error_index = std::numeric_limits<size_t>::max();
    std::exception_ptr error;
  } shared;
  shared.n = n;
  shared.chunk = std::max<size_t>(1, n / (lanes * 4));
  shared.fn = &fn;

  auto work = [&shared] {
    while (!shared.failed.load(std::memory_order_relaxed)) {
      size_t begin = shared.next.fetch_add(shared.chunk);
      if (begin >= shared.n) return;
      size_t end = std::min(begin + shared.chunk, shared.n);
      for (size_t i = begin; i < end; ++i) {
        try {
          (*shared.fn)(i);
        } catch (...) {
          shared.failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(shared.mu);
          if (i < shared.error_index) {
            shared.error_index = i;
            shared.error = std::current_exception();
          }
          return;
        }
      }
    }
  };

  // Per-task observability: how long helper tasks sit in the pool queue
  // before a worker picks them up (the backpressure signal for future
  // sharding/batching work) and how long each lane actually runs.
  static LatencyHistogram* queue_wait =
      MetricsRegistry::Global().GetHistogram("parallel.task_queue_wait_us");
  static LatencyHistogram* task_exec =
      MetricsRegistry::Global().GetHistogram("parallel.task_exec_us");
  static Counter* submitted =
      MetricsRegistry::Global().GetCounter("parallel.tasks_submitted");
  TRACE_SPAN("parallel.for");

  // Workers were provisioned in the constructor; no growth here.
  ThreadPool& pool = ThreadPool::Global();
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.pending_helpers = lanes - 1;
  }
  submitted->Increment(lanes - 1);
  for (size_t h = 0; h + 1 < lanes; ++h) {
    const double submit_us = Tracer::NowMicros();
    pool.Submit([&shared, work, submit_us] {
      const double dequeued_us = Tracer::NowMicros();
      queue_wait->Record(dequeued_us - submit_us);
      work();
      task_exec->Record(Tracer::NowMicros() - dequeued_us);
      std::lock_guard<std::mutex> lock(shared.mu);
      if (--shared.pending_helpers == 0) shared.done_cv.notify_all();
    });
  }
  {
    // The calling thread is always a lane (never queued: wait is 0 by
    // construction, so only its execution time is recorded).
    const double inline_start_us = Tracer::NowMicros();
    work();
    task_exec->Record(Tracer::NowMicros() - inline_start_us);
  }
  std::unique_lock<std::mutex> lock(shared.mu);
  shared.done_cv.wait(lock, [&shared] { return shared.pending_helpers == 0; });
  if (shared.error) std::rethrow_exception(shared.error);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t parallelism) {
  ParallelRunner(parallelism).Run(n, fn);
}

}  // namespace dbsherlock::common
