#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dbsherlock::common {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t b = 0;
  size_t e = input.size();
  while (b < e && (input[b] == ' ' || input[b] == '\t' || input[b] == '\r' ||
                   input[b] == '\n')) {
    ++b;
  }
  while (e > b && (input[e - 1] == ' ' || input[e - 1] == '\t' ||
                   input[e - 1] == '\r' || input[e - 1] == '\n')) {
    --e;
  }
  return input.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty()) return Status::ParseError("empty numeric field");
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid double: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty()) return Status::ParseError("empty integer field");
  char* end = nullptr;
  int64_t v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer: '" + buf + "'");
  }
  return v;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace dbsherlock::common
