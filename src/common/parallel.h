#ifndef DBSHERLOCK_COMMON_PARALLEL_H_
#define DBSHERLOCK_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbsherlock::common {

/// Resolves a parallelism request: 0 means "one lane per hardware thread"
/// (never less than 1); any other value is taken literally. 1 selects the
/// exact serial path (no pool involvement at all).
size_t EffectiveParallelism(size_t requested);

/// A small shared worker pool. Diagnosis code never uses it directly —
/// ParallelFor/ParallelMap below schedule onto the process-wide instance —
/// but tests construct private pools to probe lifecycle behavior.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: tasks then only run when
  /// a caller drains them through ParallelFor's calling thread).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Grows the pool to at least `num_threads` workers (never shrinks).
  void EnsureAtLeast(size_t num_threads);

  /// The process-wide pool, created on first use and sized to
  /// hardware_concurrency; grown on demand when a caller requests a higher
  /// explicit parallelism (benchmarks probe oversubscription this way).
  static ThreadPool& Global();

  /// True when the calling thread is one of this process's pool workers.
  /// Nested ParallelFor calls use this to degrade to the serial path
  /// instead of deadlocking on a saturated pool.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// A reusable, long-lived parallel-execution handle. Constructing one
/// resolves the requested parallelism and grows the process-wide pool to
/// that size once; every Run() after that schedules onto the already-warm
/// workers, so a steady-state caller (e.g. the dbsherlockd append path)
/// performs zero thread creation and zero pool-growth locking per call.
/// ParallelFor/ParallelMap below are thin wrappers over a transient
/// runner, so both entry points share one fan-out implementation.
class ParallelRunner {
 public:
  /// `parallelism`: 0 = one lane per hardware thread, 1 = always serial.
  explicit ParallelRunner(size_t parallelism = 0);

  /// Lanes this runner fans out over (>= 1).
  size_t lanes() const { return lanes_; }

  /// Runs fn(0) .. fn(n-1) over min(lanes(), n) lanes. The calling thread
  /// always participates, so forward progress never depends on pool
  /// capacity. Blocks until every index has run. Distinct indices may
  /// touch shared state only through distinct slots (write fn results
  /// into per-index storage; see ParallelMap).
  ///
  /// If any fn(i) throws, remaining unclaimed work is abandoned and the
  /// recorded exception with the lowest index is rethrown here, so the
  /// error surfaced does not depend on thread scheduling.
  void Run(size_t n, const std::function<void(size_t)>& fn) const;

 private:
  size_t lanes_;
};

/// One-shot convenience over ParallelRunner (see Run for the contract).
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t parallelism = 0);

/// Ordered parallel map: returns {fn(0), ..., fn(n-1)} with results in
/// index order regardless of execution order, so parallel and serial runs
/// are bit-identical. R must be default-constructible.
template <typename Fn>
auto ParallelMap(size_t n, Fn&& fn, size_t parallelism = 0)
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(n);
  ParallelFor(
      n, [&](size_t i) { out[i] = fn(i); }, parallelism);
  return out;
}

}  // namespace dbsherlock::common

#endif  // DBSHERLOCK_COMMON_PARALLEL_H_
