#ifndef DBSHERLOCK_COMMON_STATS_H_
#define DBSHERLOCK_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dbsherlock::common {

/// Arithmetic mean; 0 for an empty span.
double Mean(std::span<const double> xs);

/// Population variance; 0 for fewer than 2 elements.
double Variance(std::span<const double> xs);

/// Population standard deviation.
double StdDev(std::span<const double> xs);

/// Median (copies the data; average of middle pair for even sizes).
/// Returns 0 for an empty span.
double Median(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0,1]. Returns 0 for an empty span.
double Quantile(std::span<const double> xs, double q);

double Min(std::span<const double> xs);
double Max(std::span<const double> xs);

/// Min-max normalization of a single value into [0,1]. When max == min the
/// result is 0 (the paper's Eq. 2 is undefined there; a constant column has
/// no separation power anyway).
double MinMaxNormalize(double value, double min, double max);

/// Min-max normalizes a whole column (Eq. 2 of the paper).
std::vector<double> MinMaxNormalize(std::span<const double> xs);

/// Sliding-window medians of window size `w` (the median filter used by the
/// potential-power computation of Section 7). Output has
/// max(0, xs.size() - w + 1) entries; entry i is the median of xs[i, i+w).
std::vector<double> SlidingMedian(std::span<const double> xs, size_t w);

/// A fixed-width 1-D histogram over [lo, hi] with `bins` buckets. Values
/// outside the range clamp to the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double value);
  size_t BinOf(double value) const;
  size_t bins() const { return counts_.size(); }
  uint64_t count(size_t bin) const { return counts_[bin]; }
  uint64_t total() const { return total_; }

  /// Shannon entropy (natural log) of the empirical bin distribution.
  double Entropy() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// A 2-D joint histogram used by the mutual-information independence test of
/// Section 5. Both axes are fixed-width over their own [lo, hi].
class JointHistogram {
 public:
  JointHistogram(double lo_x, double hi_x, size_t bins_x, double lo_y,
                 double hi_y, size_t bins_y);

  void Add(double x, double y);
  uint64_t total() const { return total_; }

  /// Marginal entropies H(X), H(Y) and joint entropy H(X,Y), natural log.
  double EntropyX() const;
  double EntropyY() const;
  double EntropyJoint() const;

  /// Mutual information MI(X,Y) = H(X) + H(Y) - H(X,Y); clamped at >= 0.
  double MutualInformation() const;

  /// The paper's independence factor κ = MI² / (H(X)·H(Y)). 0 when either
  /// marginal entropy is 0 (a constant attribute carries no dependence
  /// evidence). Clamped into [0, 1].
  double IndependenceFactor() const;

 private:
  size_t BinX(double x) const;
  size_t BinY(double y) const;

  double lo_x_, hi_x_, width_x_;
  double lo_y_, hi_y_, width_y_;
  size_t bins_x_, bins_y_;
  std::vector<uint64_t> counts_;  // bins_x_ * bins_y_, row-major in x.
  uint64_t total_ = 0;
};

/// Computes κ(X, Y) for two equally sized columns by discretizing each with
/// `bins` equi-width bins over its own observed range (Section 5; the paper
/// uses γ bins per attribute). Returns 0 when sizes mismatch or are empty.
double IndependenceFactor(std::span<const double> xs,
                          std::span<const double> ys, size_t bins);

/// Precision / recall / F1 over binary decisions.
struct BinaryClassificationCounts {
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  uint64_t true_negatives = 0;
  uint64_t false_negatives = 0;

  void Add(bool predicted, bool actual);
  double Precision() const;
  double Recall() const;
  double F1() const;
};

}  // namespace dbsherlock::common

#endif  // DBSHERLOCK_COMMON_STATS_H_
