#ifndef DBSHERLOCK_COMMON_RANDOM_H_
#define DBSHERLOCK_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dbsherlock::common {

/// Deterministic PCG32 random number generator (O'Neill, PCG-XSH-RR).
///
/// All randomness in this repository flows through seeded Pcg32 instances so
/// every experiment is reproducible bit-for-bit given the same seed. The
/// generator is small (two uint64 words), cheap to copy, and statistically
/// far better than std::minstd / rand().
class Pcg32 {
 public:
  /// Seeds the generator. `seq` selects one of 2^63 independent streams.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t seq = 1)
      : state_(0), inc_((seq << 1u) | 1u) {
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire-style
  /// rejection to avoid modulo bias.
  uint32_t NextBounded(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi) {
    return lo + static_cast<int>(NextBounded(static_cast<uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return NextU32() * (1.0 / 4294967296.0); }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal variate (Box-Muller; one value per call, no caching so
  /// the stream stays simple to reason about).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Poisson-distributed count with the given mean. Uses Knuth's method for
  /// small means and a normal approximation above 64 (adequate for workload
  /// arrival modeling).
  int NextPoisson(double mean);

  /// Returns true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = NextBounded(static_cast<uint32_t>(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace dbsherlock::common

#endif  // DBSHERLOCK_COMMON_RANDOM_H_
