#ifndef DBSHERLOCK_QUERY_EXECUTOR_H_
#define DBSHERLOCK_QUERY_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/anomaly_detector.h"
#include "core/explainer.h"
#include "query/compiler.h"
#include "query/report.h"
#include "store/tenant_store.h"
#include "tsdata/schema.h"

namespace dbsherlock::query {

/// Budgets and shaping knobs for query execution. Defaults mirror the
/// service's DIAGNOSE_RANGE budgets; the service threads its configured
/// --max-range-rows and scan parallelism through here.
struct ExecutorOptions {
  /// Row budget for the discovery scan and for each finding's context
  /// window (the --max-range-rows contract). 0 = unlimited.
  size_t max_rows = 500000;
  /// A finding's diagnosis window extends this multiple of the region
  /// length on each side, so the explainer sees a normal baseline.
  double range_context_factor = 8.0;
  /// Matching rows closer than this merge into one candidate region.
  double merge_gap_sec = 4.0;
  /// At most this many findings are diagnosed (largest regions win).
  size_t max_findings = 3;
  /// Sparkline rendering: bucket count and how many attributes to chart.
  size_t sparkline_width = 48;
  size_t sparkline_attributes = 3;
  /// Scan decode parallelism (0 = hardware lanes).
  size_t parallelism = 0;
  /// Refine WHERE-discovered regions with the anomaly detector; a region
  /// the detector does not confirm is still diagnosed as-is, flagged.
  bool run_detector = true;
  core::AnomalyDetectorOptions detector;
};

/// What the executor runs against. `rank` lets the service rank causes
/// with its durable fleet-wide model store; when null the explainer's own
/// repository is used (standalone/test mode).
struct ExecutionContext {
  const tsdata::Schema* schema = nullptr;       // required
  const store::TenantStore* history = nullptr;  // required except DESCRIBE
  const core::Explainer* explainer = nullptr;   // required except DESCRIBE
  std::function<std::vector<core::RankedCause>(
      const tsdata::Dataset& window, const tsdata::DiagnosisRegions& regions)>
      rank;
  /// DESCRIBE extras the executor cannot see on its own.
  uint64_t models = 0;
  uint64_t diagnoses = 0;
};

/// Runs a compiled statement: discovery scan (zone-map pushdown) → region
/// merge → per-finding context window → detector refinement → explainer +
/// cause ranking → report assembly. Budget overruns become notes in the
/// report, not errors, except a discovery scan that cannot run at all.
common::Result<IncidentReport> Execute(const CompiledQuery& query,
                                       const ExecutionContext& context,
                                       const ExecutorOptions& options);

}  // namespace dbsherlock::query

#endif  // DBSHERLOCK_QUERY_EXECUTOR_H_
