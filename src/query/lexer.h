#ifndef DBSHERLOCK_QUERY_LEXER_H_
#define DBSHERLOCK_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "query/ast.h"

namespace dbsherlock::query {

enum class TokenKind {
  kIdent,       // attribute / keyword / tenant name
  kNumber,      // numeric literal (optionally signed, decimal, exponent)
  kPercentile,  // pN, N in [0, 100] checked by the parser
  kOp,          // > >= < <= = ==
  kEnd,         // end of input (span points one past the last byte)
  kError,       // unrecognized byte run; parser reports it with its span
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // raw slice of the input
  double number = 0.0;  // kNumber value; kPercentile N
  CompareOp op = CompareOp::kGt;  // kOp only
  Span span;
};

/// Splits `text` into tokens. Never fails: unrecognizable bytes become a
/// kError token carrying their span, and the list always ends with kEnd.
/// Identifiers are [A-Za-z_][A-Za-z0-9_.:-]*; `p` followed only by digits
/// (and an optional decimal part) lexes as a percentile.
std::vector<Token> Lex(const std::string& text);

}  // namespace dbsherlock::query

#endif  // DBSHERLOCK_QUERY_LEXER_H_
