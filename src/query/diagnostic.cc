#include "query/diagnostic.h"

#include <algorithm>

namespace dbsherlock::query {

std::string FormatDiagnostic(const std::string& text, const Diagnostic& diag) {
  // Find the line containing the span start (clamped to end-of-input). A
  // span that starts on the newline itself points at the NEXT line — the
  // offending text is what follows the break, not the line it ended.
  size_t begin = std::min(diag.span.begin, text.size());
  while (begin < text.size() && text[begin] == '\n') ++begin;
  size_t line_start = text.rfind('\n', begin == 0 ? 0 : begin - 1);
  line_start = (line_start == std::string::npos) ? 0 : line_start + 1;
  size_t line_end = text.find('\n', line_start);
  if (line_end == std::string::npos) line_end = text.size();

  std::string out = diag.message;
  out.push_back('\n');
  out.append("  ");
  out.append(text, line_start, line_end - line_start);
  out.push_back('\n');
  out.append("  ");
  size_t col = begin >= line_start ? begin - line_start : 0;
  col = std::min(col, line_end - line_start);
  for (size_t i = 0; i < col; ++i) {
    // Preserve tabs so the caret stays aligned in terminals.
    out.push_back(text[line_start + i] == '\t' ? '\t' : ' ');
  }
  out.push_back('^');
  size_t underline = diag.span.length();
  size_t room = (line_end - line_start) > col ? line_end - line_start - col : 0;
  underline = std::min(underline, std::max<size_t>(room, 1));
  for (size_t i = 1; i < underline; ++i) out.push_back('~');
  return out;
}

}  // namespace dbsherlock::query
