#include "query/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "common/metrics.h"
#include "common/trace.h"
#include "query/diagnostic.h"
#include "tsdata/region.h"

namespace dbsherlock::query {

namespace {

using common::Result;
using common::Status;

std::string NumStr(double v) { return FormatNumber(std::round(v * 1e4) / 1e4); }

/// "avg_latency_ms > 41.31 (p99 of 7200 stored values)".
std::string ConditionDisplay(const CompiledCondition& c) {
  std::string out = c.attribute;
  out += " ";
  out += CompareOpText(c.source.op);
  out += " ";
  out += NumStr(c.threshold);
  if (c.source.threshold.is_percentile) {
    out += " (p" + FormatNumber(c.source.threshold.percentile) + ")";
  }
  return out;
}

/// Merges matching timestamps into candidate regions: a gap wider than
/// `merge_gap_sec` splits; each region's half-open end extends one median
/// intra-region step past its last match so that row stays inside.
std::vector<tsdata::TimeRange> MergeMatches(const std::vector<double>& ts,
                                            double merge_gap_sec) {
  std::vector<tsdata::TimeRange> out;
  size_t start = 0;
  for (size_t i = 1; i <= ts.size(); ++i) {
    if (i < ts.size() && ts[i] - ts[i - 1] <= merge_gap_sec) continue;
    std::vector<double> gaps;
    for (size_t j = start + 1; j < i; ++j) gaps.push_back(ts[j] - ts[j - 1]);
    double step = 1.0;
    if (!gaps.empty()) {
      std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2,
                       gaps.end());
      step = std::max(gaps[gaps.size() / 2], 1e-9);
    }
    out.push_back({ts[start], ts[i - 1] + step});
    start = i;
  }
  return out;
}

size_t RowsInside(const std::vector<double>& ts,
                  const tsdata::TimeRange& range) {
  size_t n = 0;
  for (double t : ts) {
    if (range.Contains(t)) ++n;
  }
  return n;
}

struct FindingPlan {
  tsdata::TimeRange region;
  size_t matched = 0;
};

void BuildDescribe(const ExecutionContext& context, IncidentReport* report) {
  DescribeInfo& d = report->describe;
  const tsdata::Schema& schema = *context.schema;
  d.num_attributes = schema.num_attributes();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    d.attributes.push_back(schema.attribute(i).name);
    if (schema.attribute(i).kind == tsdata::AttributeKind::kNumeric) {
      ++d.numeric_attributes;
    }
  }
  d.models = context.models;
  d.diagnoses = context.diagnoses;
  const store::TenantStore* history = context.history;
  if (history == nullptr) return;
  d.has_history = true;
  d.segments = history->num_segments();
  d.sealed_rows = history->sealed_rows();
  d.sealed_bytes = history->sealed_bytes();
  d.active_rows = history->active_rows();
  d.compression_ratio = history->compression_ratio();
  std::vector<store::SegmentInfo> manifest = history->Manifest();
  if (!manifest.empty()) {
    d.has_extent = true;
    d.min_ts = manifest.front().min_ts;
    d.max_ts = manifest.back().max_ts;
  }
}

/// Ranked causes → report entries with confidence margins. The margin is
/// the lead over the next cause; the last shown cause's margin is its
/// lead over the lambda bar it had to clear.
std::vector<RankedCauseEntry> WithMargins(
    const std::vector<core::RankedCause>& causes, double lambda) {
  std::vector<RankedCauseEntry> out;
  out.reserve(causes.size());
  for (size_t i = 0; i < causes.size(); ++i) {
    RankedCauseEntry entry;
    entry.cause = causes[i].cause;
    entry.confidence = causes[i].confidence;
    entry.suggested_action = causes[i].suggested_action;
    entry.margin = (i + 1 < causes.size())
                       ? causes[i].confidence - causes[i + 1].confidence
                       : std::max(causes[i].confidence - lambda, 0.0);
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace

Result<IncidentReport> Execute(const CompiledQuery& query,
                               const ExecutionContext& context,
                               const ExecutorOptions& options) {
  TRACE_SPAN("query.execute");
  if (context.schema == nullptr) {
    return Status::Internal("Execute needs a schema");
  }
  IncidentReport report;
  report.kind = query.ast.kind;
  report.query = query.ast.Print();
  report.rank_key = query.ast.rank_key;
  report.top_k = query.ast.top_k;
  report.quantiles = query.quantile_stats;
  report.percentiles_resolved = query.percentiles_resolved;
  for (const CompiledCondition& c : query.conditions) {
    report.conditions.push_back(ConditionDisplay(c));
  }

  if (query.ast.kind == QueryKind::kDescribe) {
    BuildDescribe(context, &report);
    return report;
  }

  if (context.history == nullptr) {
    return Status::FailedPrecondition(
        "tenant has no durable history (daemon running without "
        "--store-dir?)");
  }
  if (context.explainer == nullptr) {
    return Status::Internal("Execute needs an explainer");
  }

  // --- Candidate regions --------------------------------------------------
  std::vector<FindingPlan> plans;
  if (query.ast.kind == QueryKind::kExplainWhere) {
    store::ScanOptions disc;
    disc.t0 = query.ast.t0;
    disc.t1 = query.ast.t1;
    disc.parallelism = options.parallelism;
    disc.max_rows = options.max_rows;
    for (const CompiledCondition& c : query.conditions) {
      disc.bounds.push_back(c.bound);
    }
    std::vector<double> matched;
    store::ScanVisitor visitor;
    visitor.on_chunk = [&matched](const tsdata::Dataset& chunk) {
      std::span<const double> ts = chunk.timestamps();
      matched.insert(matched.end(), ts.begin(), ts.end());
      return Status::OK();
    };
    visitor.on_reset = [&matched] { matched.clear(); };
    DBSHERLOCK_RETURN_NOT_OK(
        context.history->ScanVisit(disc, visitor, &report.discovery));
    report.matched_rows = matched.size();
    if (report.discovery.truncated) {
      report.notes.push_back(
          "discovery scan hit the row budget; regions after the cut were "
          "not considered — narrow BETWEEN or raise --max-range-rows");
    }
    if (matched.empty()) {
      report.notes.push_back("no rows matched the WHERE conditions in [" +
                             NumStr(query.ast.t0) + ", " +
                             NumStr(query.ast.t1) + ")");
      return report;
    }
    std::vector<tsdata::TimeRange> regions =
        MergeMatches(matched, options.merge_gap_sec);
    for (const tsdata::TimeRange& r : regions) {
      plans.push_back({r, RowsInside(matched, r)});
    }
    if (options.max_findings > 0 && plans.size() > options.max_findings) {
      std::stable_sort(plans.begin(), plans.end(),
                       [](const FindingPlan& a, const FindingPlan& b) {
                         return a.matched > b.matched;
                       });
      report.notes.push_back(
          "matched rows formed " + std::to_string(plans.size()) +
          " candidate regions; diagnosing the " +
          std::to_string(options.max_findings) + " largest");
      plans.resize(options.max_findings);
    }
    std::stable_sort(plans.begin(), plans.end(),
                     [](const FindingPlan& a, const FindingPlan& b) {
                       return a.region.start < b.region.start;
                     });
  } else {
    plans.push_back({{query.ast.t0, query.ast.t1}, 0});
  }

  // --- Diagnose each candidate -------------------------------------------
  auto& metrics = common::MetricsRegistry::Global();
  for (const FindingPlan& plan : plans) {
    std::string region_label = "[" + NumStr(plan.region.start) + ", " +
                               NumStr(plan.region.end) + ")";
    // The context window gives the explainer a normal-side baseline; at
    // least 30s per side even for sliver regions.
    double context_sec =
        std::max(plan.region.length() * options.range_context_factor, 30.0);
    store::ScanOptions window_options;
    window_options.t0 = plan.region.start - context_sec;
    window_options.t1 = plan.region.end + context_sec;
    window_options.parallelism = options.parallelism;
    window_options.max_rows = options.max_rows;
    store::ScanStats window_stats;
    auto window =
        context.history->ScanWithOptions(window_options, &window_stats);
    if (!window.ok()) return window.status();
    if (window_stats.truncated) {
      report.notes.push_back("finding " + region_label +
                             ": context window exceeded the row budget; "
                             "skipped (raise --max-range-rows)");
      continue;
    }
    if (window->num_rows() == 0) {
      report.notes.push_back("finding " + region_label +
                             ": no rows in the context window");
      continue;
    }

    RegionFinding finding;
    finding.region = plan.region;
    finding.window_rows = window->num_rows();

    tsdata::DiagnosisRegions regions;
    regions.abnormal = tsdata::RegionSpec({plan.region});
    if (options.run_detector) {
      core::DetectionResult detected =
          core::DetectAnomalies(*window, options.detector);
      std::vector<tsdata::TimeRange> overlapping;
      for (const tsdata::TimeRange& r : detected.abnormal.ranges()) {
        if (r.start < plan.region.end && plan.region.start < r.end) {
          overlapping.push_back(r);
        }
      }
      finding.detector_confirmed = !overlapping.empty();
      if (finding.detector_confirmed &&
          query.ast.kind == QueryKind::kExplainWhere) {
        // Trust the detector's sharper edges over the raw match run, and
        // keep its guard-banded normal side.
        tsdata::DiagnosisRegions refined =
            core::DetectionToRegions(detected, *window, options.detector);
        regions.abnormal = tsdata::RegionSpec(std::move(overlapping));
        regions.normal = refined.normal;
      } else if (!finding.detector_confirmed) {
        report.notes.push_back("finding " + region_label +
                               ": the anomaly detector did not confirm "
                               "this region; diagnosing it as marked");
      }
    }

    tsdata::LabeledRows labeled = tsdata::SplitRows(*window, regions);
    finding.abnormal_rows = labeled.abnormal.size();
    if (labeled.abnormal.empty()) {
      report.notes.push_back("finding " + region_label +
                             ": no rows inside the abnormal region");
      continue;
    }
    if (labeled.normal.empty()) {
      report.notes.push_back("finding " + region_label +
                             ": every window row is abnormal; widen "
                             "BETWEEN for a normal baseline");
      continue;
    }

    core::Explanation explanation =
        context.explainer->Diagnose(*window, regions);
    finding.predicates = explanation.predicates;
    finding.warnings = explanation.warnings;
    std::vector<core::RankedCause> causes =
        context.rank ? context.rank(*window, regions) : explanation.causes;
    finding.causes = WithMargins(
        causes, context.explainer->options().confidence_threshold);
    if (query.ast.rank_key == RankKey::kMargin) {
      std::stable_sort(finding.causes.begin(), finding.causes.end(),
                       [](const RankedCauseEntry& a,
                          const RankedCauseEntry& b) {
                         if (a.margin != b.margin) return a.margin > b.margin;
                         if (a.confidence != b.confidence) {
                           return a.confidence > b.confidence;
                         }
                         return a.cause < b.cause;
                       });
    }
    if (query.ast.top_k > 0 && finding.causes.size() > query.ast.top_k) {
      finding.causes.resize(query.ast.top_k);
    }

    // Sparkline context: the queried attributes first, then the winning
    // predicates' attributes.
    std::vector<std::string> chart;
    auto add_attr = [&chart, &options](const std::string& name) {
      if (chart.size() >= options.sparkline_attributes) return;
      if (std::find(chart.begin(), chart.end(), name) != chart.end()) return;
      chart.push_back(name);
    };
    for (const CompiledCondition& c : query.conditions) add_attr(c.attribute);
    for (const core::AttributeDiagnosis& p : finding.predicates) {
      add_attr(p.predicate.attribute);
    }
    for (const std::string& name : chart) {
      auto idx = context.schema->IndexOf(name);
      if (!idx.ok()) continue;
      if (context.schema->attribute(*idx).kind !=
          tsdata::AttributeKind::kNumeric) {
        continue;
      }
      tsdata::TimeRange marker = plan.region;
      if (!regions.abnormal.ranges().empty()) {
        marker = regions.abnormal.ranges().front();
      }
      SparklineRow row = RenderSparkline(
          name, window->column(*idx).numeric_values(), window->timestamps(),
          marker, options.sparkline_width);
      if (!row.cells.empty()) finding.context.push_back(std::move(row));
    }

    report.findings.push_back(std::move(finding));
    metrics.GetCounter("query.findings")->Increment();
  }

  if (report.findings.empty() && report.notes.empty()) {
    report.notes.push_back("nothing to explain");
  }
  return report;
}

}  // namespace dbsherlock::query
