#ifndef DBSHERLOCK_QUERY_AST_H_
#define DBSHERLOCK_QUERY_AST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dbsherlock::query {

/// Half-open byte range [begin, end) into the original query text. Every
/// AST node carries the span it was parsed from so diagnostics — both
/// syntactic and semantic — can point at the offending characters.
struct Span {
  size_t begin = 0;
  size_t end = 0;

  Span() = default;
  Span(size_t b, size_t e) : begin(b), end(e) {}

  size_t length() const { return end > begin ? end - begin : 0; }
  /// Smallest span covering both operands.
  static Span Join(const Span& a, const Span& b);

  bool operator==(const Span& other) const = default;
};

enum class CompareOp { kGt, kGe, kLt, kLe, kEq };

/// Display form: ">", ">=", "<", "<=", "=".
const char* CompareOpText(CompareOp op);

/// The right-hand side of a condition: a numeric literal (`40.5`) or a
/// percentile (`p99`) resolved against the tenant's stored history at
/// compile time.
struct Threshold {
  bool is_percentile = false;
  double value = 0.0;       // literal, when !is_percentile
  double percentile = 0.0;  // N of pN in [0, 100], when is_percentile
  Span span;
};

/// One `<attr> <op> <threshold>` conjunct of a WHERE clause.
struct Condition {
  std::string attribute;
  Span attribute_span;
  CompareOp op = CompareOp::kGt;
  Span op_span;
  Threshold threshold;
};

enum class QueryKind { kExplainWhere, kExplainRegion, kDescribe };

/// RANK BY key: `confidence` orders causes by model confidence (Eq. 3);
/// `margin` orders by each cause's lead over the runner-up.
enum class RankKey { kConfidence, kMargin };

/// A parsed DQL statement. Grammar (DESIGN.md §16):
///
///   query    := explain | describe
///   explain  := "EXPLAIN" body [ "RANK" "BY" rank-key ] [ "TOP" int ]
///   body     := "WHERE" cond { "AND" cond } "BETWEEN" number number
///             | "REGION" number number
///   cond     := ident op ( number | percentile )
///   op       := ">" | ">=" | "<" | "<=" | "="
///   describe := "DESCRIBE" [ ident ]
///
/// Keywords are case-insensitive; Print() emits the canonical form
/// (upper-case keywords, shortest round-trip numbers) and is a parse
/// fixed point: Parse(Print(q)) prints back identically.
struct Query {
  QueryKind kind = QueryKind::kExplainWhere;
  std::vector<Condition> conditions;  // kExplainWhere only
  double t0 = 0.0;                    // BETWEEN / REGION bounds
  double t1 = 0.0;
  Span t0_span;
  Span t1_span;
  RankKey rank_key = RankKey::kConfidence;
  bool has_rank = false;
  uint64_t top_k = 3;
  bool has_top = false;
  std::string tenant;  // kDescribe only; empty = the connection's tenant
  Span tenant_span;

  std::string Print() const;
};

/// Shortest decimal form that strtod parses back to exactly `value` —
/// the canonical number format used by Query::Print.
std::string FormatNumber(double value);

}  // namespace dbsherlock::query

#endif  // DBSHERLOCK_QUERY_AST_H_
