#include "query/ast.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dbsherlock::query {

Span Span::Join(const Span& a, const Span& b) {
  if (a.length() == 0 && a.begin == 0) return b;
  if (b.length() == 0 && b.begin == 0) return a;
  return Span(std::min(a.begin, b.begin), std::max(a.end, b.end));
}

const char* CompareOpText(CompareOp op) {
  switch (op) {
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kEq:
      return "=";
  }
  return "?";
}

std::string FormatNumber(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  // Integers stay in plain notation ("50", never "5e+01"): the shortest
  // %g form below would pick scientific for round numbers, and a
  // percentile printed as "p5e+01" no longer lexes as a percentile.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

namespace {

void PrintThreshold(const Threshold& t, std::string* out) {
  if (t.is_percentile) {
    out->append("p");
    out->append(FormatNumber(t.percentile));
  } else {
    out->append(FormatNumber(t.value));
  }
}

void PrintSuffix(const Query& q, std::string* out) {
  if (q.has_rank) {
    out->append(" RANK BY ");
    out->append(q.rank_key == RankKey::kConfidence ? "confidence" : "margin");
  }
  if (q.has_top) {
    out->append(" TOP ");
    out->append(std::to_string(q.top_k));
  }
}

}  // namespace

std::string Query::Print() const {
  std::string out;
  switch (kind) {
    case QueryKind::kDescribe:
      out = "DESCRIBE";
      if (!tenant.empty()) {
        out.append(" ");
        out.append(tenant);
      }
      return out;
    case QueryKind::kExplainRegion:
      out = "EXPLAIN REGION " + FormatNumber(t0) + " " + FormatNumber(t1);
      PrintSuffix(*this, &out);
      return out;
    case QueryKind::kExplainWhere:
      out = "EXPLAIN WHERE ";
      for (size_t i = 0; i < conditions.size(); ++i) {
        if (i > 0) out.append(" AND ");
        const Condition& c = conditions[i];
        out.append(c.attribute);
        out.append(" ");
        out.append(CompareOpText(c.op));
        out.append(" ");
        PrintThreshold(c.threshold, &out);
      }
      out.append(" BETWEEN " + FormatNumber(t0) + " " + FormatNumber(t1));
      PrintSuffix(*this, &out);
      return out;
  }
  return out;
}

}  // namespace dbsherlock::query
