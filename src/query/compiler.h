#ifndef DBSHERLOCK_QUERY_COMPILER_H_
#define DBSHERLOCK_QUERY_COMPILER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "store/tenant_store.h"
#include "tsdata/schema.h"

namespace dbsherlock::query {

/// One WHERE conjunct after semantic analysis: the attribute resolved
/// against the tenant schema (aliases like `latency` map to
/// `avg_latency_ms`), the percentile resolved to a concrete value from
/// the stored history, and the comparison lowered onto the store's closed
/// [lo, hi] AttributeBound so region discovery rides the zone-map
/// pushdown (DESIGN.md §14).
struct CompiledCondition {
  Condition source;             // the AST conjunct, spans intact
  std::string attribute;        // resolved schema attribute name
  double threshold = 0.0;       // resolved RHS value
  store::AttributeBound bound;  // pushdown form of `attr op threshold`
};

/// A statement ready to execute. `quantile_stats` aggregates the zone-map
/// bracketing work done while resolving pN thresholds (reported in the
/// incident report's scan accounting).
struct CompiledQuery {
  Query ast;
  std::string text;  // original query text, for diagnostics and echo
  std::vector<CompiledCondition> conditions;  // kExplainWhere only
  store::QuantileStats quantile_stats;
  size_t percentiles_resolved = 0;
};

struct CompileContext {
  const tsdata::Schema* schema = nullptr;       // required
  const store::TenantStore* history = nullptr;  // required for pN thresholds
};

/// Resolves names and thresholds. Errors carry caret diagnostics rendered
/// against `text` (InvalidArgument for semantic problems,
/// FailedPrecondition when a percentile needs history the tenant lacks).
common::Result<CompiledQuery> Compile(const Query& ast,
                                      const std::string& text,
                                      const CompileContext& context);

/// Resolves a user-facing attribute name against a schema: exact match,
/// then a small alias table (latency, cpu, throughput, iowait), then a
/// unique case-insensitive substring match. Returns the schema name or
/// NotFound listing near misses.
common::Result<std::string> ResolveAttribute(const tsdata::Schema& schema,
                                             const std::string& name);

}  // namespace dbsherlock::query

#endif  // DBSHERLOCK_QUERY_COMPILER_H_
