#include "query/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "core/predicate.h"

namespace dbsherlock::query {

namespace {

/// Golden-file stability: every float that reaches a rendering is rounded
/// to 1e-4 first, so formatting is identical across scan parallelism,
/// ISAs, and code paths that differ only in float summation order noise.
double Round4(double v) {
  if (!std::isfinite(v)) return 0.0;
  return std::round(v * 1e4) / 1e4;
}

std::string Num(double v) { return FormatNumber(Round4(v)); }

std::string Fixed1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", Round4(v));
  return buf;
}

const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kExplainWhere:
      return "explain_where";
    case QueryKind::kExplainRegion:
      return "explain_region";
    case QueryKind::kDescribe:
      return "describe";
  }
  return "?";
}

}  // namespace

SparklineRow RenderSparkline(const std::string& attribute,
                             std::span<const double> values,
                             std::span<const double> timestamps,
                             const tsdata::TimeRange& abnormal,
                             size_t width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  SparklineRow row;
  row.attribute = attribute;
  const size_t n = values.size();
  if (n == 0 || width == 0) return row;
  width = std::min(width, n);

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(lo <= hi)) return row;  // nothing finite at all
  row.min = Round4(lo);
  row.max = Round4(hi);

  bool any_marker = false;
  std::string marker;
  for (size_t b = 0; b < width; ++b) {
    size_t first = b * n / width;
    size_t last = (b + 1) * n / width;
    if (last <= first) last = first + 1;
    double sum = 0.0;
    size_t count = 0;
    bool abnormal_bucket = false;
    for (size_t i = first; i < last && i < n; ++i) {
      if (std::isfinite(values[i])) {
        sum += values[i];
        ++count;
      }
      if (i < timestamps.size() && abnormal.Contains(timestamps[i])) {
        abnormal_bucket = true;
      }
    }
    if (count == 0) {
      row.cells.append("·");  // · — no finite sample in this bucket
    } else {
      double mean = sum / static_cast<double>(count);
      size_t level = 0;
      if (hi > lo) {
        level = static_cast<size_t>((mean - lo) / (hi - lo) * 7.999);
        level = std::min<size_t>(level, 7);
      } else {
        level = 3;  // flat series renders mid-height
      }
      row.cells.append(kLevels[level]);
    }
    marker.push_back(abnormal_bucket ? '^' : ' ');
    any_marker = any_marker || abnormal_bucket;
  }
  if (any_marker) {
    while (!marker.empty() && marker.back() == ' ') marker.pop_back();
    row.marker = std::move(marker);
  }
  return row;
}

std::string RenderMarkdown(const IncidentReport& report) {
  std::string out;
  auto line = [&out](const std::string& s) {
    out.append(s);
    out.push_back('\n');
  };

  if (report.kind == QueryKind::kDescribe) {
    const DescribeInfo& d = report.describe;
    line("# Tenant `" + report.tenant + "`");
    line("");
    line("- attributes: " + std::to_string(d.num_attributes) + " (" +
         std::to_string(d.numeric_attributes) + " numeric)");
    if (d.has_history) {
      line("- history: " + std::to_string(d.segments) + " sealed segments, " +
           std::to_string(d.sealed_rows) + " sealed rows (" +
           std::to_string(d.sealed_bytes) + " bytes compressed, " +
           Fixed1(d.compression_ratio * 100.0) + "% of raw), " +
           std::to_string(d.active_rows) + " active rows");
      if (d.has_extent) {
        line("- time extent: [" + Num(d.min_ts) + ", " + Num(d.max_ts) + "]");
      }
    } else {
      line("- history: none (daemon running without --store-dir)");
    }
    line("- causal models: " + std::to_string(d.models));
    line("- background diagnoses: " + std::to_string(d.diagnoses));
    if (!report.notes.empty()) {
      line("");
      line("## Notes");
      line("");
      for (const std::string& n : report.notes) line("- " + n);
    }
    return out;
  }

  line("# Incident report — tenant `" + report.tenant + "`");
  line("");
  line("**Query:** `" + report.query + "`");
  line("");
  if (!report.conditions.empty()) {
    line("**Conditions:**");
    for (const std::string& c : report.conditions) line("- " + c);
    line("");
  }
  if (report.kind == QueryKind::kExplainWhere) {
    const store::ScanStats& s = report.discovery;
    line("**Discovery:** " + std::to_string(report.matched_rows) +
         " matching rows; decoded " + std::to_string(s.segments_decoded) +
         "/" + std::to_string(s.segments_total) + " segments (" +
         std::to_string(s.segments_skipped_time) + " pruned by time, " +
         std::to_string(s.segments_skipped_zone) + " by zone maps)" +
         (s.truncated ? " — truncated by the row budget" : "") + ".");
    line("");
  }
  if (report.percentiles_resolved > 0) {
    line("**Percentiles:** resolved " +
         std::to_string(report.percentiles_resolved) + " threshold(s) over " +
         std::to_string(report.quantiles.values_total) +
         " stored values, decoding " +
         std::to_string(report.quantiles.segments_decoded) + "/" +
         std::to_string(report.quantiles.segments_total) + " segments.");
    line("");
  }

  if (report.findings.empty()) {
    line("No abnormal region to explain.");
  }
  for (size_t f = 0; f < report.findings.size(); ++f) {
    const RegionFinding& finding = report.findings[f];
    line("## Finding " + std::to_string(f + 1) + " — t in [" +
         Num(finding.region.start) + ", " + Num(finding.region.end) + ") · " +
         (finding.detector_confirmed ? "detector confirmed"
                                     : "not detector confirmed"));
    line("");
    line("Window " + std::to_string(finding.window_rows) + " rows, " +
         std::to_string(finding.abnormal_rows) + " abnormal.");
    line("");
    if (finding.causes.empty()) {
      line("No stored causal model cleared the confidence bar.");
      line("");
    } else {
      line("| # | likely cause | confidence | margin | suggested action |");
      line("|--:|---|--:|--:|---|");
      for (size_t i = 0; i < finding.causes.size(); ++i) {
        const RankedCauseEntry& cause = finding.causes[i];
        line("| " + std::to_string(i + 1) + " | " + cause.cause + " | " +
             Fixed1(cause.confidence) + " | +" + Fixed1(cause.margin) +
             " | " +
             (cause.suggested_action.empty() ? "—" : cause.suggested_action) +
             " |");
      }
      line("");
    }
    if (!finding.predicates.empty()) {
      line("**Predicates:**");
      for (const core::AttributeDiagnosis& p : finding.predicates) {
        line("- `" + p.predicate.ToString() + "` (separation " +
             Fixed1(p.partition_separation_power * 100.0) + ")");
      }
      line("");
    }
    if (!finding.warnings.empty()) {
      line("**Data quality:**");
      for (const core::DataQualityWarning& w : finding.warnings) {
        line("- " + w.attribute + ": " + w.reason);
      }
      line("");
    }
    if (!finding.context.empty()) {
      line("**Context:**");
      line("");
      line("```");
      for (const SparklineRow& row : finding.context) {
        line(row.attribute + " [" + Num(row.min) + " .. " + Num(row.max) +
             "]");
        line(row.cells);
        if (!row.marker.empty()) line(row.marker);
      }
      line("```");
      line("");
    }
  }

  if (!report.notes.empty()) {
    line("## Notes");
    line("");
    for (const std::string& n : report.notes) line("- " + n);
  }
  while (out.size() >= 2 && out[out.size() - 1] == '\n' &&
         out[out.size() - 2] == '\n') {
    out.pop_back();
  }
  return out;
}

common::JsonValue ReportToJson(const IncidentReport& report) {
  using common::JsonValue;
  JsonValue::Object out;
  out["tenant"] = report.tenant;
  out["query"] = report.query;
  out["kind"] = KindName(report.kind);

  if (report.kind == QueryKind::kDescribe) {
    const DescribeInfo& d = report.describe;
    JsonValue::Object desc;
    desc["attributes"] = static_cast<double>(d.num_attributes);
    desc["numeric_attributes"] = static_cast<double>(d.numeric_attributes);
    JsonValue::Array names;
    for (const std::string& a : d.attributes) names.push_back(a);
    desc["attribute_names"] = std::move(names);
    desc["has_history"] = d.has_history;
    if (d.has_history) {
      desc["segments"] = static_cast<double>(d.segments);
      desc["sealed_rows"] = static_cast<double>(d.sealed_rows);
      desc["sealed_bytes"] = static_cast<double>(d.sealed_bytes);
      desc["active_rows"] = static_cast<double>(d.active_rows);
      desc["compression_ratio"] = Round4(d.compression_ratio);
      if (d.has_extent) {
        desc["min_ts"] = Round4(d.min_ts);
        desc["max_ts"] = Round4(d.max_ts);
      }
    }
    desc["models"] = static_cast<double>(d.models);
    desc["diagnoses"] = static_cast<double>(d.diagnoses);
    out["describe"] = std::move(desc);
  } else {
    out["rank_by"] =
        report.rank_key == RankKey::kConfidence ? "confidence" : "margin";
    out["top_k"] = static_cast<double>(report.top_k);
    JsonValue::Array conditions;
    for (const std::string& c : report.conditions) conditions.push_back(c);
    out["conditions"] = std::move(conditions);
    if (report.kind == QueryKind::kExplainWhere) {
      JsonValue::Object discovery;
      discovery["matched_rows"] = static_cast<double>(report.matched_rows);
      discovery["segments"] =
          static_cast<double>(report.discovery.segments_total);
      discovery["segments_skipped_time"] =
          static_cast<double>(report.discovery.segments_skipped_time);
      discovery["segments_skipped_zone"] =
          static_cast<double>(report.discovery.segments_skipped_zone);
      discovery["segments_decoded"] =
          static_cast<double>(report.discovery.segments_decoded);
      discovery["truncated"] = report.discovery.truncated;
      out["discovery"] = std::move(discovery);
    }
    if (report.percentiles_resolved > 0) {
      JsonValue::Object quantiles;
      quantiles["resolved"] =
          static_cast<double>(report.percentiles_resolved);
      quantiles["values_total"] =
          static_cast<double>(report.quantiles.values_total);
      quantiles["segments"] =
          static_cast<double>(report.quantiles.segments_total);
      quantiles["segments_decoded"] =
          static_cast<double>(report.quantiles.segments_decoded);
      out["quantiles"] = std::move(quantiles);
    }
    JsonValue::Array findings;
    for (const RegionFinding& finding : report.findings) {
      JsonValue::Object f;
      JsonValue::Object region;
      region["start"] = Round4(finding.region.start);
      region["end"] = Round4(finding.region.end);
      f["region"] = std::move(region);
      f["detector_confirmed"] = finding.detector_confirmed;
      f["window_rows"] = static_cast<double>(finding.window_rows);
      f["abnormal_rows"] = static_cast<double>(finding.abnormal_rows);
      JsonValue::Array causes;
      for (const RankedCauseEntry& cause : finding.causes) {
        JsonValue::Object c;
        c["cause"] = cause.cause;
        c["confidence"] = Round4(cause.confidence);
        c["margin"] = Round4(cause.margin);
        if (!cause.suggested_action.empty()) {
          c["suggested_action"] = cause.suggested_action;
        }
        causes.push_back(std::move(c));
      }
      f["causes"] = std::move(causes);
      JsonValue::Array predicates;
      for (const core::AttributeDiagnosis& p : finding.predicates) {
        JsonValue::Object pj;
        pj["predicate"] = p.predicate.ToString();
        pj["separation_power"] = Round4(p.separation_power);
        pj["partition_separation_power"] =
            Round4(p.partition_separation_power);
        predicates.push_back(std::move(pj));
      }
      f["predicates"] = std::move(predicates);
      JsonValue::Array warnings;
      for (const core::DataQualityWarning& w : finding.warnings) {
        JsonValue::Object wj;
        wj["attribute"] = w.attribute;
        wj["reason"] = w.reason;
        wj["skipped"] = w.skipped;
        warnings.push_back(std::move(wj));
      }
      f["warnings"] = std::move(warnings);
      JsonValue::Array context;
      for (const SparklineRow& row : finding.context) {
        JsonValue::Object rj;
        rj["attribute"] = row.attribute;
        rj["cells"] = row.cells;
        if (!row.marker.empty()) rj["marker"] = row.marker;
        rj["min"] = row.min;
        rj["max"] = row.max;
        context.push_back(std::move(rj));
      }
      f["context"] = std::move(context);
      findings.push_back(std::move(f));
    }
    out["findings"] = std::move(findings);
  }

  JsonValue::Array notes;
  for (const std::string& n : report.notes) notes.push_back(n);
  out["notes"] = std::move(notes);
  return common::JsonValue(std::move(out));
}

}  // namespace dbsherlock::query
