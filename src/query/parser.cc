#include "query/parser.h"

#include <cctype>
#include <cmath>

#include "query/lexer.h"

namespace dbsherlock::query {

namespace {

using common::Result;
using common::Status;

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  size_t i = 0;
  for (; a[i] != '\0' && b[i] != '\0'; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return a[i] == '\0' && b[i] == '\0';
}

bool IsKeyword(const std::string& text) {
  static const char* kKeywords[] = {"EXPLAIN", "DESCRIBE", "WHERE",
                                    "REGION",  "BETWEEN",  "AND",
                                    "RANK",    "BY",       "TOP"};
  for (const char* k : kKeywords) {
    if (EqualsIgnoreCase(text, k)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : tokens_(Lex(text)) {}

  Result<Query> Run() {
    Query q;
    if (Is("EXPLAIN")) {
      Advance();
      if (!ParseExplain(&q)) return Error();
    } else if (Is("DESCRIBE")) {
      Advance();
      q.kind = QueryKind::kDescribe;
      if (Peek().kind == TokenKind::kIdent && !IsKeyword(Peek().text)) {
        q.tenant = Peek().text;
        q.tenant_span = Peek().span;
        Advance();
      }
    } else {
      Fail("expected EXPLAIN or DESCRIBE", Peek().span);
      return Error();
    }
    if (Peek().kind != TokenKind::kEnd) {
      Fail("unexpected trailing input after a complete query", Peek().span);
      return Error();
    }
    return q;
  }

  const Diagnostic& diagnostic() const { return diag_; }

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool Is(const char* keyword) const {
    return Peek().kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek().text, keyword);
  }

  bool Fail(std::string message, Span span) {
    diag_.message = std::move(message);
    diag_.span = span;
    return false;
  }

  Status Error() const { return Status::ParseError(diag_.message); }

  bool Expect(const char* keyword, const char* context) {
    if (!Is(keyword)) {
      return Fail(std::string("expected ") + keyword + " " + context,
                  Peek().span);
    }
    Advance();
    return true;
  }

  bool ParseNumber(const char* what, double* out, Span* span) {
    if (Peek().kind != TokenKind::kNumber) {
      return Fail(std::string("expected ") + what, Peek().span);
    }
    *out = Peek().number;
    *span = Peek().span;
    Advance();
    return true;
  }

  bool ParseExplain(Query* q) {
    if (Is("WHERE")) {
      Advance();
      q->kind = QueryKind::kExplainWhere;
      if (!ParseCondition(q)) return false;
      while (Is("AND")) {
        Advance();
        if (!ParseCondition(q)) return false;
      }
      if (!Expect("BETWEEN", "after the WHERE conditions")) return false;
      if (!ParseRange(q)) return false;
    } else if (Is("REGION")) {
      Advance();
      q->kind = QueryKind::kExplainRegion;
      if (!ParseRange(q)) return false;
    } else {
      return Fail("expected WHERE or REGION after EXPLAIN", Peek().span);
    }
    return ParseSuffix(q);
  }

  bool ParseRange(Query* q) {
    if (!ParseNumber("a start timestamp", &q->t0, &q->t0_span)) return false;
    if (!ParseNumber("an end timestamp", &q->t1, &q->t1_span)) return false;
    if (!(q->t0 < q->t1)) {
      return Fail("empty time range: the start must be before the end",
                  Span::Join(q->t0_span, q->t1_span));
    }
    return true;
  }

  bool ParseCondition(Query* q) {
    Condition c;
    if (Peek().kind != TokenKind::kIdent) {
      return Fail("expected an attribute name", Peek().span);
    }
    if (IsKeyword(Peek().text)) {
      return Fail("'" + Peek().text +
                      "' is a keyword; expected an attribute name",
                  Peek().span);
    }
    c.attribute = Peek().text;
    c.attribute_span = Peek().span;
    Advance();
    if (Peek().kind != TokenKind::kOp) {
      return Fail("expected a comparison (> >= < <= =) after '" +
                      c.attribute + "'",
                  Peek().span);
    }
    c.op = Peek().op;
    c.op_span = Peek().span;
    Advance();
    if (Peek().kind == TokenKind::kNumber) {
      c.threshold.is_percentile = false;
      c.threshold.value = Peek().number;
      c.threshold.span = Peek().span;
      Advance();
    } else if (Peek().kind == TokenKind::kPercentile) {
      c.threshold.is_percentile = true;
      c.threshold.percentile = Peek().number;
      c.threshold.span = Peek().span;
      if (!(c.threshold.percentile >= 0.0 &&
            c.threshold.percentile <= 100.0)) {
        return Fail("percentile must be between p0 and p100", Peek().span);
      }
      Advance();
    } else {
      return Fail(std::string("expected a number or percentile after '") +
                      CompareOpText(c.op) + "'",
                  Peek().span);
    }
    q->conditions.push_back(std::move(c));
    return true;
  }

  bool ParseSuffix(Query* q) {
    while (true) {
      if (Is("RANK")) {
        Span rank_span = Peek().span;
        if (q->has_rank) {
          return Fail("duplicate RANK BY clause", rank_span);
        }
        Advance();
        if (!Expect("BY", "after RANK")) return false;
        if (Is("CONFIDENCE")) {
          q->rank_key = RankKey::kConfidence;
        } else if (Is("MARGIN")) {
          q->rank_key = RankKey::kMargin;
        } else {
          return Fail("expected 'confidence' or 'margin' after RANK BY",
                      Peek().span);
        }
        q->has_rank = true;
        Advance();
      } else if (Is("TOP")) {
        Span top_span = Peek().span;
        if (q->has_top) {
          return Fail("duplicate TOP clause", top_span);
        }
        Advance();
        if (Peek().kind != TokenKind::kNumber ||
            Peek().number != std::floor(Peek().number) ||
            !(Peek().number >= 1.0) || !(Peek().number <= 1e6)) {
          return Fail("expected a positive integer after TOP", Peek().span);
        }
        q->top_k = static_cast<uint64_t>(Peek().number);
        q->has_top = true;
        Advance();
      } else {
        return true;
      }
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Diagnostic diag_;
};

}  // namespace

Result<Query> Parse(const std::string& text, Diagnostic* diag) {
  Parser parser(text);
  auto result = parser.Run();
  if (!result.ok()) {
    Diagnostic d = parser.diagnostic();
    if (diag != nullptr) *diag = d;
    return Status::ParseError(FormatDiagnostic(text, d));
  }
  return result;
}

}  // namespace dbsherlock::query
