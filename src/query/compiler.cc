#include "query/compiler.h"

#include <cctype>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "query/diagnostic.h"

namespace dbsherlock::query {

namespace {

using common::Result;
using common::Status;

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

/// Shorthand names a DBA types without remembering the exact telemetry
/// schema. Applied only when the target attribute actually exists.
struct Alias {
  const char* name;
  const char* target;
};
constexpr Alias kAliases[] = {
    {"latency", "avg_latency_ms"},  {"cpu", "os_cpu_usage"},
    {"throughput", "throughput_tps"}, {"tps", "throughput_tps"},
    {"iowait", "os_cpu_iowait"},    {"locks", "lock_waits"},
};

Status Semantic(const std::string& text, const std::string& message,
                Span span, common::StatusCode code) {
  return Status(code, FormatDiagnostic(text, {message, span}));
}

}  // namespace

Result<std::string> ResolveAttribute(const tsdata::Schema& schema,
                                     const std::string& name) {
  if (schema.Contains(name)) return name;
  const std::string lower = Lower(name);
  // Case-insensitive exact match.
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (Lower(schema.attribute(i).name) == lower) {
      return schema.attribute(i).name;
    }
  }
  for (const Alias& alias : kAliases) {
    if (lower == alias.name && schema.Contains(alias.target)) {
      return std::string(alias.target);
    }
  }
  // Unique case-insensitive substring match ("deadlock" -> "deadlocks").
  std::vector<std::string> matches;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (Lower(schema.attribute(i).name).find(lower) != std::string::npos) {
      matches.push_back(schema.attribute(i).name);
    }
  }
  if (matches.size() == 1) return matches[0];
  if (matches.size() > 1) {
    std::string list = matches[0];
    for (size_t i = 1; i < matches.size() && i < 4; ++i) {
      list += ", " + matches[i];
    }
    return Status::NotFound("attribute '" + name + "' is ambiguous (" +
                            list + ")");
  }
  return Status::NotFound("unknown attribute '" + name + "'");
}

Result<CompiledQuery> Compile(const Query& ast, const std::string& text,
                              const CompileContext& context) {
  if (context.schema == nullptr) {
    return Status::Internal("Compile needs a schema");
  }
  CompiledQuery out;
  out.ast = ast;
  out.text = text;
  if (ast.kind == QueryKind::kDescribe) return out;

  for (const Condition& c : ast.conditions) {
    CompiledCondition cc;
    cc.source = c;
    auto resolved = ResolveAttribute(*context.schema, c.attribute);
    if (!resolved.ok()) {
      return Semantic(text, resolved.status().message(), c.attribute_span,
                      common::StatusCode::kNotFound);
    }
    cc.attribute = *resolved;
    auto idx = context.schema->IndexOf(cc.attribute);
    if (idx.ok() && context.schema->attribute(*idx).kind ==
                        tsdata::AttributeKind::kCategorical) {
      return Semantic(text,
                      "attribute '" + cc.attribute +
                          "' is categorical; conditions need a numeric "
                          "attribute",
                      c.attribute_span, common::StatusCode::kInvalidArgument);
    }

    if (c.threshold.is_percentile) {
      if (context.history == nullptr) {
        return Semantic(text,
                        "percentile thresholds need durable history "
                        "(daemon running without --store-dir?)",
                        c.threshold.span,
                        common::StatusCode::kFailedPrecondition);
      }
      store::QuantileStats qs;
      auto value = context.history->ResolveQuantile(
          cc.attribute, c.threshold.percentile / 100.0, &qs);
      if (!value.ok()) {
        return Semantic(text,
                        "cannot resolve p" +
                            FormatNumber(c.threshold.percentile) + " of '" +
                            cc.attribute + "': " + value.status().message(),
                        c.threshold.span, value.status().code());
      }
      cc.threshold = *value;
      out.quantile_stats.segments_total += qs.segments_total;
      out.quantile_stats.segments_decoded += qs.segments_decoded;
      out.quantile_stats.values_total += qs.values_total;
      out.quantile_stats.rank = qs.rank;
      ++out.percentiles_resolved;
    } else {
      cc.threshold = c.threshold.value;
    }
    if (std::isnan(cc.threshold)) {
      return Semantic(text, "threshold resolved to NaN", c.threshold.span,
                      common::StatusCode::kInvalidArgument);
    }

    // Lower onto the store's closed [lo, hi] bound; strict comparisons
    // step one ULP so pushdown pruning stays exact.
    cc.bound.attribute = cc.attribute;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    switch (c.op) {
      case CompareOp::kGt:
        cc.bound.lo = std::nextafter(cc.threshold, kInf);
        break;
      case CompareOp::kGe:
        cc.bound.lo = cc.threshold;
        break;
      case CompareOp::kLt:
        cc.bound.hi = std::nextafter(cc.threshold, -kInf);
        break;
      case CompareOp::kLe:
        cc.bound.hi = cc.threshold;
        break;
      case CompareOp::kEq:
        cc.bound.lo = cc.threshold;
        cc.bound.hi = cc.threshold;
        break;
    }
    out.conditions.push_back(std::move(cc));
  }
  return out;
}

}  // namespace dbsherlock::query
