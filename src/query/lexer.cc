#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

namespace dbsherlock::query {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  // Dots, dashes and colons keep tenant names like "eu-west:shop.prod"
  // lexing as one token.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '-' || c == ':';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// "p99" / "P99.5" — a percentile, not an attribute like "p99_latency_ms".
bool IsPercentile(const std::string& text) {
  if (text.size() < 2 || (text[0] != 'p' && text[0] != 'P')) return false;
  bool seen_dot = false;
  for (size_t i = 1; i < text.size(); ++i) {
    if (text[i] == '.' && !seen_dot && i + 1 < text.size()) {
      seen_dot = true;
      continue;
    }
    if (!IsDigit(text[i])) return false;
  }
  return true;
}

}  // namespace

std::vector<Token> Lex(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    Token tok;
    tok.span.begin = i;
    if (c == '>' || c == '<' || c == '=') {
      tok.kind = TokenKind::kOp;
      bool eq = i + 1 < n && text[i + 1] == '=';
      switch (c) {
        case '>':
          tok.op = eq ? CompareOp::kGe : CompareOp::kGt;
          break;
        case '<':
          tok.op = eq ? CompareOp::kLe : CompareOp::kLt;
          break;
        default:
          tok.op = CompareOp::kEq;  // both "=" and "=="
          break;
      }
      i += eq ? 2 : 1;
    } else if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(text[i + 1])) ||
               ((c == '-' || c == '+') && i + 1 < n &&
                (IsDigit(text[i + 1]) ||
                 (text[i + 1] == '.' && i + 2 < n && IsDigit(text[i + 2]))))) {
      const char* start = text.c_str() + i;
      char* end = nullptr;
      tok.number = std::strtod(start, &end);
      tok.kind = TokenKind::kNumber;
      i += static_cast<size_t>(end - start);
    } else if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      tok.text = text.substr(i, j - i);
      if (IsPercentile(tok.text)) {
        tok.kind = TokenKind::kPercentile;
        tok.number = std::strtod(tok.text.c_str() + 1, nullptr);
      } else {
        tok.kind = TokenKind::kIdent;
      }
      i = j;
    } else {
      // Swallow the whole unrecognizable run so one garbage blob yields
      // one error token with an accurate span.
      size_t j = i;
      while (j < n && !std::isspace(static_cast<unsigned char>(text[j])) &&
             !IsIdentStart(text[j]) && !IsDigit(text[j]) && text[j] != '>' &&
             text[j] != '<' && text[j] != '=') {
        ++j;
      }
      tok.kind = TokenKind::kError;
      i = j > i ? j : i + 1;
    }
    tok.span.end = i;
    if (tok.text.empty()) {
      tok.text = text.substr(tok.span.begin, tok.span.end - tok.span.begin);
    }
    out.push_back(std::move(tok));
  }
  Token end_tok;
  end_tok.kind = TokenKind::kEnd;
  end_tok.span = Span(n, n);
  out.push_back(end_tok);
  return out;
}

}  // namespace dbsherlock::query
