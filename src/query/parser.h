#ifndef DBSHERLOCK_QUERY_PARSER_H_
#define DBSHERLOCK_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"
#include "query/diagnostic.h"

namespace dbsherlock::query {

/// Parses one DQL statement (grammar in ast.h). On failure returns
/// ParseError whose message is the rendered caret diagnostic; when `diag`
/// is non-null it also receives the structured message + span (fuzz tests
/// assert the span lands inside the input). Never crashes on arbitrary
/// bytes.
common::Result<Query> Parse(const std::string& text,
                            Diagnostic* diag = nullptr);

}  // namespace dbsherlock::query

#endif  // DBSHERLOCK_QUERY_PARSER_H_
