#ifndef DBSHERLOCK_QUERY_DIAGNOSTIC_H_
#define DBSHERLOCK_QUERY_DIAGNOSTIC_H_

#include <string>

#include "query/ast.h"

namespace dbsherlock::query {

/// One parse/compile error, anchored to the offending bytes of the query.
struct Diagnostic {
  std::string message;  // "expected a number after BETWEEN"
  Span span;            // what the caret line underlines
};

/// Renders the classic compiler-style three-line diagnostic:
///
///   expected a threshold after '>'
///     EXPLAIN WHERE latency > BETWEEN 0 60
///                             ^~~~~~~
///
/// Handles multi-line query text (the caret line is emitted under the
/// line containing the span) and spans at end-of-input (caret one past
/// the last character). This string travels inside ERR responses, so the
/// wire protocol must round-trip embedded newlines (DESIGN.md §16).
std::string FormatDiagnostic(const std::string& text, const Diagnostic& diag);

}  // namespace dbsherlock::query

#endif  // DBSHERLOCK_QUERY_DIAGNOSTIC_H_
