#ifndef DBSHERLOCK_QUERY_REPORT_H_
#define DBSHERLOCK_QUERY_REPORT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/model_repository.h"
#include "core/predicate_generator.h"
#include "query/ast.h"
#include "store/tenant_store.h"
#include "tsdata/region.h"

namespace dbsherlock::query {

/// One ranked cause with its confidence margin: the lead (in confidence
/// points) over the next-ranked cause — for the last shown cause, over
/// the lambda bar it had to clear. A large margin means the diagnosis is
/// unambiguous; a sliver means two models fit almost equally well.
struct RankedCauseEntry {
  std::string cause;
  double confidence = 0.0;
  double margin = 0.0;
  std::string suggested_action;
};

/// Unicode sparkline context for one attribute over a finding's window:
/// `cells` downsamples the series into ▁▂▃▄▅▆▇█ buckets (· = no finite
/// sample) and `marker` carries '^' under the buckets inside the
/// abnormal region.
struct SparklineRow {
  std::string attribute;
  std::string cells;
  std::string marker;
  double min = 0.0;
  double max = 0.0;
};

/// One investigated region: where it is, whether the anomaly detector
/// confirmed it, and what the explainer concluded.
struct RegionFinding {
  tsdata::TimeRange region;
  bool detector_confirmed = false;
  size_t window_rows = 0;
  size_t abnormal_rows = 0;
  std::vector<RankedCauseEntry> causes;
  std::vector<core::AttributeDiagnosis> predicates;
  std::vector<core::DataQualityWarning> warnings;
  std::vector<SparklineRow> context;
};

/// DESCRIBE payload: what the service knows about one tenant.
struct DescribeInfo {
  bool has_history = false;
  size_t num_attributes = 0;
  size_t numeric_attributes = 0;
  std::vector<std::string> attributes;  // schema order
  size_t segments = 0;
  uint64_t sealed_rows = 0;
  uint64_t sealed_bytes = 0;
  size_t active_rows = 0;
  double compression_ratio = 0.0;
  bool has_extent = false;
  double min_ts = 0.0;
  double max_ts = 0.0;
  uint64_t models = 0;     // causal models available for ranking
  uint64_t diagnoses = 0;  // background diagnoses completed so far
};

/// Everything a DQL statement produced; rendered as markdown for humans
/// and JSON for bots. Deliberately free of wall-clock fields so golden
/// files stay stable (timing lives in STATS and BENCH_query.json).
struct IncidentReport {
  std::string tenant;
  std::string query;  // canonical Print() echo
  QueryKind kind = QueryKind::kExplainWhere;
  RankKey rank_key = RankKey::kConfidence;
  uint64_t top_k = 0;                   // 0 = unlimited
  std::vector<std::string> conditions;  // "avg_latency_ms > 41.3 (p99)"
  store::ScanStats discovery;           // WHERE region-discovery scan
  store::QuantileStats quantiles;       // pN resolution accounting
  size_t percentiles_resolved = 0;
  size_t matched_rows = 0;  // rows satisfying every WHERE condition
  std::vector<RegionFinding> findings;
  DescribeInfo describe;           // kDescribe only
  std::vector<std::string> notes;  // budget cuts, fallbacks, caveats
};

/// Downsamples `values` into a `width`-bucket sparkline; `timestamps`
/// (same length) drive the abnormal-region marker line.
SparklineRow RenderSparkline(const std::string& attribute,
                             std::span<const double> values,
                             std::span<const double> timestamps,
                             const tsdata::TimeRange& abnormal, size_t width);

/// Human rendering: a markdown incident report.
std::string RenderMarkdown(const IncidentReport& report);

/// Machine rendering. Floats are rounded to 1e-4 so serialized reports
/// are stable golden-file material.
common::JsonValue ReportToJson(const IncidentReport& report);

}  // namespace dbsherlock::query

#endif  // DBSHERLOCK_QUERY_REPORT_H_
