#ifndef DBSHERLOCK_VIZ_CHART_H_
#define DBSHERLOCK_VIZ_CHART_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::viz {

/// Rendering of performance plots — the visualization component (3) of the
/// paper's Figure 2. Two backends: an ASCII chart for terminals (the kind
/// of plot Figures 1 and 3 show, with the selected abnormal region
/// shaded), and a standalone SVG document for reports.

struct AsciiChartOptions {
  int width = 100;   // plot columns (time axis)
  int height = 18;   // plot rows (value axis)
  std::string title;
};

/// Renders one numeric attribute as an ASCII chart. Values are averaged
/// into `width` time buckets; columns whose bucket midpoint lies in
/// `abnormal` are drawn with '#' (normal columns use '*') and flagged in a
/// marker line underneath. Returns an error when the attribute is missing
/// or not numeric.
common::Result<std::string> RenderAsciiChart(
    const tsdata::Dataset& dataset, const std::string& attribute,
    const tsdata::RegionSpec& abnormal, const AsciiChartOptions& options = {});

/// One line series of an SVG chart.
struct SvgSeries {
  std::string attribute;
  std::string color = "#1f77b4";
};

struct SvgChartOptions {
  int width = 900;
  int height = 300;
  std::string title;
  /// Fill for the abnormal-region band(s).
  std::string region_color = "#fdd";
};

/// Renders one or more numeric attributes as a standalone SVG line chart,
/// normalizing each series into the plot (independent scales; the legend
/// carries each series' value range). Abnormal regions are shaded bands.
common::Result<std::string> RenderSvgChart(
    const tsdata::Dataset& dataset, const std::vector<SvgSeries>& series,
    const tsdata::RegionSpec& abnormal, const SvgChartOptions& options = {});

}  // namespace dbsherlock::viz

#endif  // DBSHERLOCK_VIZ_CHART_H_
