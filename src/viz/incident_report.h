#ifndef DBSHERLOCK_VIZ_INCIDENT_REPORT_H_
#define DBSHERLOCK_VIZ_INCIDENT_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/explainer.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::viz {

/// Assembles a self-contained HTML incident report from a diagnosis: the
/// performance plot with the abnormal region shaded (inline SVG), the
/// charts of the top explanatory attributes, the predicate list with
/// separation powers, and the ranked causes with any recorded remediation
/// — the artifact a DBA attaches to the incident ticket.
struct IncidentReportOptions {
  std::string title = "DBSherlock incident report";
  /// The headline metric plotted first (skipped if absent).
  std::string headline_attribute = "avg_latency_ms";
  /// How many explanatory attributes get their own chart.
  size_t max_attribute_charts = 4;
  /// How many predicates to list.
  size_t max_predicates = 20;
};

/// Renders the report. Fails only when the dataset is too small to plot.
common::Result<std::string> RenderIncidentReport(
    const tsdata::Dataset& dataset, const tsdata::DiagnosisRegions& regions,
    const core::Explanation& explanation,
    const IncidentReportOptions& options = {});

}  // namespace dbsherlock::viz

#endif  // DBSHERLOCK_VIZ_INCIDENT_REPORT_H_
