#include "viz/chart.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "common/strings.h"

namespace dbsherlock::viz {

namespace {

/// Checks the attribute exists and is numeric; returns its column.
common::Result<const tsdata::Column*> NumericColumn(
    const tsdata::Dataset& dataset, const std::string& attribute) {
  auto col = dataset.ColumnByName(attribute);
  if (!col.ok()) return col.status();
  if ((*col)->kind() != tsdata::AttributeKind::kNumeric) {
    return common::Status::InvalidArgument(
        "attribute is not numeric: " + attribute);
  }
  return *col;
}

/// Averages `values` into `buckets` time buckets; also reports each
/// bucket's midpoint timestamp.
struct Bucketed {
  std::vector<double> values;
  std::vector<double> mid_timestamps;
};

Bucketed BucketSeries(const tsdata::Dataset& dataset,
                      std::span<const double> values, int buckets) {
  Bucketed out;
  size_t n = dataset.num_rows();
  if (n == 0 || buckets <= 0) return out;
  out.values.resize(static_cast<size_t>(buckets), 0.0);
  out.mid_timestamps.resize(static_cast<size_t>(buckets), 0.0);
  double t0 = dataset.timestamp(0);
  double t1 = dataset.timestamp(n - 1);
  double span = std::max(t1 - t0, 1e-9);
  std::vector<size_t> counts(static_cast<size_t>(buckets), 0);
  for (size_t row = 0; row < n; ++row) {
    double frac = (dataset.timestamp(row) - t0) / span;
    size_t b = std::min(static_cast<size_t>(frac * buckets),
                        static_cast<size_t>(buckets) - 1);
    out.values[b] += values[row];
    ++counts[b];
  }
  for (size_t b = 0; b < out.values.size(); ++b) {
    if (counts[b] > 0) out.values[b] /= static_cast<double>(counts[b]);
    out.mid_timestamps[b] =
        t0 + span * ((static_cast<double>(b) + 0.5) / buckets);
  }
  // Empty buckets borrow their left neighbor (sparse data).
  for (size_t b = 1; b < out.values.size(); ++b) {
    if (counts[b] == 0) out.values[b] = out.values[b - 1];
  }
  return out;
}

}  // namespace

common::Result<std::string> RenderAsciiChart(
    const tsdata::Dataset& dataset, const std::string& attribute,
    const tsdata::RegionSpec& abnormal, const AsciiChartOptions& options) {
  auto col = NumericColumn(dataset, attribute);
  if (!col.ok()) return col.status();
  if (dataset.num_rows() == 0) {
    return common::Status::InvalidArgument("empty dataset");
  }
  int width = std::max(options.width, 10);
  int height = std::max(options.height, 4);

  Bucketed series =
      BucketSeries(dataset, (*col)->numeric_values(), width);
  double lo = common::Min(series.values);
  double hi = common::Max(series.values);
  if (hi <= lo) hi = lo + 1.0;

  // Grid of plot cells, top row first.
  std::vector<std::string> rows(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  std::vector<bool> is_abnormal(static_cast<size_t>(width), false);
  for (int x = 0; x < width; ++x) {
    double v = series.values[static_cast<size_t>(x)];
    bool ab = abnormal.Contains(series.mid_timestamps[static_cast<size_t>(x)]);
    is_abnormal[static_cast<size_t>(x)] = ab;
    double frac = (v - lo) / (hi - lo);
    int bar = std::clamp(static_cast<int>(std::lround(frac * (height - 1))),
                         0, height - 1);
    // Column bar from the bottom up to the value row.
    for (int y = 0; y <= bar; ++y) {
      rows[static_cast<size_t>(height - 1 - y)][static_cast<size_t>(x)] =
          ab ? '#' : '*';
    }
  }

  std::string out;
  if (!options.title.empty()) {
    out += options.title;
    out += '\n';
  }
  out += common::StrFormat("%12.4g +", hi);
  out += std::string(static_cast<size_t>(width), '-');
  out += "\n";
  for (int y = 0; y < height; ++y) {
    out += "             |";
    out += rows[static_cast<size_t>(y)];
    out += "\n";
  }
  out += common::StrFormat("%12.4g +", lo);
  out += std::string(static_cast<size_t>(width), '-');
  out += "\n";
  // Region marker line.
  out += "              ";
  for (int x = 0; x < width; ++x) {
    out += is_abnormal[static_cast<size_t>(x)] ? '^' : ' ';
  }
  out += "\n";
  out += common::StrFormat(
      "              t=[%.6g, %.6g]   caret-marked columns are the abnormal "
      "region\n",
      dataset.timestamp(0), dataset.timestamp(dataset.num_rows() - 1));
  return out;
}

common::Result<std::string> RenderSvgChart(
    const tsdata::Dataset& dataset, const std::vector<SvgSeries>& series,
    const tsdata::RegionSpec& abnormal, const SvgChartOptions& options) {
  if (series.empty()) {
    return common::Status::InvalidArgument("no series to plot");
  }
  if (dataset.num_rows() < 2) {
    return common::Status::InvalidArgument("need at least two rows to plot");
  }
  const int width = std::max(options.width, 100);
  const int height = std::max(options.height, 80);
  const double margin_left = 60.0, margin_right = 20.0;
  const double margin_top = options.title.empty() ? 20.0 : 40.0;
  const double margin_bottom = 40.0;
  const double plot_w = width - margin_left - margin_right;
  const double plot_h = height - margin_top - margin_bottom;

  double t0 = dataset.timestamp(0);
  double t1 = dataset.timestamp(dataset.num_rows() - 1);
  double tspan = std::max(t1 - t0, 1e-9);
  auto x_of = [&](double t) {
    return margin_left + plot_w * (t - t0) / tspan;
  };

  std::string svg = common::StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
      "height=\"%d\" viewBox=\"0 0 %d %d\">\n",
      width, height, width, height);
  svg += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty()) {
    svg += common::StrFormat(
        "<text x=\"%d\" y=\"24\" font-family=\"sans-serif\" "
        "font-size=\"16\" text-anchor=\"middle\">",
        width / 2);
    svg += options.title;
    svg += "</text>\n";
  }

  // Abnormal-region bands first (under the lines).
  for (const tsdata::TimeRange& range : abnormal.ranges()) {
    double x_start = x_of(std::max(range.start, t0));
    double x_end = x_of(std::min(range.end, t1));
    if (x_end <= x_start) continue;
    svg += common::StrFormat(
        "<rect class=\"abnormal-region\" x=\"%.2f\" y=\"%.2f\" "
        "width=\"%.2f\" height=\"%.2f\" fill=\"%s\"/>\n",
        x_start, margin_top, x_end - x_start, plot_h,
        options.region_color.c_str());
  }

  // Axes.
  svg += common::StrFormat(
      "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" "
      "stroke=\"black\"/>\n",
      margin_left, margin_top, margin_left, margin_top + plot_h);
  svg += common::StrFormat(
      "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" "
      "stroke=\"black\"/>\n",
      margin_left, margin_top + plot_h, margin_left + plot_w,
      margin_top + plot_h);

  // Series polylines (each min-max normalized to the plot box).
  double legend_y = margin_top + 4.0;
  for (const SvgSeries& s : series) {
    auto col = NumericColumn(dataset, s.attribute);
    if (!col.ok()) return col.status();
    auto values = (*col)->numeric_values();
    double lo = common::Min(values);
    double hi = common::Max(values);
    if (hi <= lo) hi = lo + 1.0;

    std::string points;
    for (size_t row = 0; row < dataset.num_rows(); ++row) {
      double x = x_of(dataset.timestamp(row));
      double frac = (values[row] - lo) / (hi - lo);
      double y = margin_top + plot_h * (1.0 - frac);
      points += common::StrFormat("%.2f,%.2f ", x, y);
    }
    svg += common::StrFormat(
        "<polyline class=\"series\" fill=\"none\" stroke=\"%s\" "
        "stroke-width=\"1.5\" points=\"%s\"/>\n",
        s.color.c_str(), points.c_str());
    svg += common::StrFormat(
        "<text x=\"%.2f\" y=\"%.2f\" font-family=\"sans-serif\" "
        "font-size=\"11\" fill=\"%s\">%s [%.4g, %.4g]</text>\n",
        margin_left + plot_w - 220.0, legend_y + 8.0, s.color.c_str(),
        s.attribute.c_str(), lo, hi);
    legend_y += 14.0;
  }

  // Time axis labels.
  svg += common::StrFormat(
      "<text x=\"%.2f\" y=\"%.2f\" font-family=\"sans-serif\" "
      "font-size=\"11\">%.6g</text>\n",
      margin_left, margin_top + plot_h + 16.0, t0);
  svg += common::StrFormat(
      "<text x=\"%.2f\" y=\"%.2f\" font-family=\"sans-serif\" "
      "font-size=\"11\" text-anchor=\"end\">%.6g</text>\n",
      margin_left + plot_w, margin_top + plot_h + 16.0, t1);

  svg += "</svg>\n";
  return svg;
}

}  // namespace dbsherlock::viz
