#include "baselines/perfaugur.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.h"

namespace dbsherlock::baselines {

common::Result<PerfAugurResult> PerfAugurDetect(
    const tsdata::Dataset& dataset, const PerfAugurOptions& options) {
  auto col = dataset.ColumnByName(options.indicator_attribute);
  if (!col.ok()) return col.status();
  if ((*col)->kind() != tsdata::AttributeKind::kNumeric) {
    return common::Status::InvalidArgument(
        "indicator attribute must be numeric: " + options.indicator_attribute);
  }
  const size_t n = dataset.num_rows();
  if (n < options.min_length || options.min_length == 0) {
    return common::Status::InvalidArgument(
        "dataset shorter than the minimum interval length");
  }
  std::span<const double> series = (*col)->numeric_values();
  size_t max_len = std::max(
      options.min_length,
      static_cast<size_t>(options.max_fraction * static_cast<double>(n)));

  PerfAugurResult best;
  best.score = -1.0;
  // O(n^2): every admissible [i, j]; medians are recomputed per interval
  // (n is a few hundred rows in this workload, so this stays instant).
  std::vector<double> inside;
  std::vector<double> outside;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + options.min_length - 1;
         j < n && j - i + 1 <= max_len; ++j) {
      inside.assign(series.begin() + static_cast<ptrdiff_t>(i),
                    series.begin() + static_cast<ptrdiff_t>(j + 1));
      outside.clear();
      outside.insert(outside.end(), series.begin(),
                     series.begin() + static_cast<ptrdiff_t>(i));
      outside.insert(outside.end(),
                     series.begin() + static_cast<ptrdiff_t>(j + 1),
                     series.end());
      if (outside.empty()) continue;
      // Impact: interval mean against the robust (median) baseline of the
      // rest. A mean keeps widening from being free — mixing normal rows
      // into the interval dilutes the score — while the median baseline
      // stays robust to outliers outside.
      double shift = std::fabs(common::Mean(inside) -
                               common::Median(outside));
      double score = shift * std::sqrt(static_cast<double>(inside.size()));
      if (score > best.score) {
        best.score = score;
        best.first_row = i;
        best.last_row = j;
      }
    }
  }
  if (best.score < 0.0) {
    return common::Status::Internal("no admissible interval found");
  }
  double interval = n >= 2 ? dataset.timestamp(1) - dataset.timestamp(0) : 1.0;
  if (interval <= 0.0) interval = 1.0;
  best.abnormal.Add(dataset.timestamp(best.first_row),
                    dataset.timestamp(best.last_row) + interval);
  return best;
}

}  // namespace dbsherlock::baselines
