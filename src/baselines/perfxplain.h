#ifndef DBSHERLOCK_BASELINES_PERFXPLAIN_H_
#define DBSHERLOCK_BASELINES_PERFXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::baselines {

/// Reimplementation of PerfXplain (Khoussainova et al., PVLDB 2012),
/// adapted from MapReduce job pairs to pairs of telemetry tuples exactly as
/// the paper's Section 8.4 describes:
///
///   EXPECTED  avg_latency_difference = insignificant
///   OBSERVED  avg_latency_difference = significant
///
/// where a pair's latency difference is *significant* when it is at least
/// 50% of the smaller value. Each pair is described by comparative
/// features per attribute (similar / higher / lower), and a greedy search
/// selects the conjunction of up to `num_predicates` feature tests that
/// best explains the observed significant pairs under a weighted
/// relevance/precision score (weight 0.8, 2,000 sampled pairs and 2
/// predicates — the configuration the paper reports as best).
///
/// To score single tuples (for the precision/recall comparison), a tuple
/// is flagged abnormal when the pair (normal-reference tuple, tuple)
/// satisfies the learned conjunction; the reference is the attribute-wise
/// median of the training normal region.
class PerfXplain {
 public:
  struct Options {
    std::string latency_attribute = "avg_latency_ms";
    /// Attributes that are alternative quantiles/aggregates of the query's
    /// performance variable itself; "latency is higher" is the observation,
    /// not an explanation, so these cannot be chosen as predicates.
    std::vector<std::string> indicator_family = {"p99_latency_ms"};
    size_t num_samples = 2000;
    double score_weight = 0.8;           // relevance vs precision
    int num_predicates = 2;
    double significant_fraction = 0.5;   // latency-difference cutoff
    double attr_diff_fraction = 0.25;    // similar vs higher/lower cutoff
    uint64_t seed = 7;
  };

  /// Comparative feature of the second tuple relative to the first.
  enum class Relation { kSimilar, kHigher, kLower };

  /// One learned pair-predicate: "attribute is <relation> in the slow
  /// tuple relative to the reference".
  struct PairPredicate {
    std::string attribute;
    Relation relation = Relation::kSimilar;

    std::string ToString() const;
  };

  /// One training input: a dataset plus its labeled regions.
  struct LabeledDataset {
    const tsdata::Dataset* data = nullptr;
    const tsdata::DiagnosisRegions* regions = nullptr;
  };

  explicit PerfXplain(Options options) : options_(std::move(options)) {}

  /// Learns the pair-predicates from a training dataset with labeled
  /// regions. Fails when the latency attribute is missing or a region is
  /// empty.
  common::Status Train(const tsdata::Dataset& dataset,
                       const tsdata::DiagnosisRegions& regions);

  /// Multi-dataset training, as the paper's Section 8.4 setup (10 training
  /// datasets): pairs are sampled across datasets — the first tuple from a
  /// random dataset's normal region, the second from any row of another
  /// random dataset — mirroring PerfXplain's across-job comparisons. All
  /// datasets must share the schema of the first.
  common::Status TrainOnMany(const std::vector<LabeledDataset>& datasets);

  const std::vector<PairPredicate>& predicates() const { return predicates_; }

  /// Flags each row of `test`: true = abnormal under the learned model.
  /// Rows are compared against the training normal reference.
  std::vector<bool> FlagRows(const tsdata::Dataset& test) const;

 private:
  Relation RelationOf(double reference, double value) const;

  Options options_;
  std::vector<PairPredicate> predicates_;
  /// Attribute-wise medians of the training normal region (numeric
  /// attributes only), keyed by attribute name.
  std::vector<std::pair<std::string, double>> normal_reference_;
};

}  // namespace dbsherlock::baselines

#endif  // DBSHERLOCK_BASELINES_PERFXPLAIN_H_
