#ifndef DBSHERLOCK_BASELINES_PERFAUGUR_H_
#define DBSHERLOCK_BASELINES_PERFAUGUR_H_

#include <string>

#include "common/status.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::baselines {

/// Reimplementation of PerfAugur's naive anomaly-interval search (Roy et
/// al., ICDE 2015) as the paper's Appendix E uses it: given a performance
/// indicator variable (overall average latency), find the time interval
/// whose robust (median-based) deviation from the rest of the series
/// maximizes the scoring function.
///
/// Score of interval I: |median(I) - median(rest)| * sqrt(|I|) — the
/// median-shift "impact" scaled by a sub-linear support term, which is the
/// shape of PerfAugur's robust scoring (effect size x coverage) for a
/// single predicate on the timestamp attribute.
struct PerfAugurOptions {
  std::string indicator_attribute = "avg_latency_ms";
  size_t min_length = 5;      // shortest admissible interval, rows
  double max_fraction = 0.5;  // longest admissible interval, share of rows
};

struct PerfAugurResult {
  tsdata::RegionSpec abnormal;
  size_t first_row = 0;
  size_t last_row = 0;  // inclusive
  double score = 0.0;
};

/// Runs the naive O(n^2) interval search. Fails when the indicator
/// attribute is missing or the dataset is shorter than min_length.
common::Result<PerfAugurResult> PerfAugurDetect(
    const tsdata::Dataset& dataset, const PerfAugurOptions& options);

}  // namespace dbsherlock::baselines

#endif  // DBSHERLOCK_BASELINES_PERFAUGUR_H_
