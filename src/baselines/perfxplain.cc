#include "baselines/perfxplain.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/stats.h"

namespace dbsherlock::baselines {

namespace {

/// A sampled pair of tuples, possibly from two different datasets.
struct SampledPair {
  size_t dataset_a;
  size_t row_a;
  size_t dataset_b;
  size_t row_b;
  bool significant;  // latency difference >= 50% of the smaller value
};

/// Index of every numeric attribute, with its name.
std::vector<std::pair<size_t, std::string>> NumericAttributes(
    const tsdata::Dataset& dataset) {
  std::vector<std::pair<size_t, std::string>> out;
  for (size_t i = 0; i < dataset.num_attributes(); ++i) {
    if (dataset.schema().attribute(i).kind ==
        tsdata::AttributeKind::kNumeric) {
      out.emplace_back(i, dataset.schema().attribute(i).name);
    }
  }
  return out;
}

}  // namespace

std::string PerfXplain::PairPredicate::ToString() const {
  const char* rel = relation == Relation::kSimilar  ? "similar"
                    : relation == Relation::kHigher ? "higher"
                                                    : "lower";
  return attribute + " = " + rel;
}

PerfXplain::Relation PerfXplain::RelationOf(double reference,
                                            double value) const {
  double base = std::max(std::fabs(reference), 1e-9);
  double rel_diff = (value - reference) / base;
  if (rel_diff > options_.attr_diff_fraction) return Relation::kHigher;
  if (rel_diff < -options_.attr_diff_fraction) return Relation::kLower;
  return Relation::kSimilar;
}

common::Status PerfXplain::Train(const tsdata::Dataset& dataset,
                                 const tsdata::DiagnosisRegions& regions) {
  return TrainOnMany({{&dataset, &regions}});
}

common::Status PerfXplain::TrainOnMany(
    const std::vector<LabeledDataset>& datasets) {
  if (datasets.empty()) {
    return common::Status::InvalidArgument("no training datasets");
  }

  // --- Validate and split every dataset -----------------------------------
  std::vector<tsdata::LabeledRows> rows_by_dataset;
  std::vector<size_t> latency_attr_by_dataset;
  for (const LabeledDataset& ld : datasets) {
    auto latency_idx =
        ld.data->schema().IndexOf(options_.latency_attribute);
    if (!latency_idx.ok()) return latency_idx.status();
    if (ld.data->column(*latency_idx).kind() !=
        tsdata::AttributeKind::kNumeric) {
      return common::Status::InvalidArgument(
          "latency attribute must be numeric: " + options_.latency_attribute);
    }
    latency_attr_by_dataset.push_back(*latency_idx);
    tsdata::LabeledRows rows = SplitRows(*ld.data, *ld.regions);
    if (rows.normal.empty() || rows.abnormal.empty()) {
      return common::Status::InvalidArgument(
          "both regions must be non-empty for training");
    }
    rows_by_dataset.push_back(std::move(rows));
  }

  // --- Normal reference tuple: attribute-wise medians over every -----------
  // training dataset's normal rows.
  std::vector<std::pair<size_t, std::string>> attrs =
      NumericAttributes(*datasets[0].data);
  normal_reference_.clear();
  std::vector<double> reference_by_attr(attrs.size());
  for (size_t a = 0; a < attrs.size(); ++a) {
    std::vector<double> vals;
    for (size_t d = 0; d < datasets.size(); ++d) {
      auto column = datasets[d].data->column(attrs[a].first).numeric_values();
      for (size_t row : rows_by_dataset[d].normal) vals.push_back(column[row]);
    }
    reference_by_attr[a] = common::Median(vals);
    normal_reference_.emplace_back(attrs[a].second, reference_by_attr[a]);
  }

  // --- Sample pairs (first tuple: a normal row; second: any row of a ------
  // possibly different dataset) and label by latency significance.
  common::Pcg32 rng(options_.seed, 0x9e1f);
  std::vector<SampledPair> pairs;
  pairs.reserve(options_.num_samples);
  for (size_t s = 0; s < options_.num_samples; ++s) {
    SampledPair p;
    p.dataset_a = rng.NextBounded(static_cast<uint32_t>(datasets.size()));
    const auto& normal_rows = rows_by_dataset[p.dataset_a].normal;
    p.row_a =
        normal_rows[rng.NextBounded(static_cast<uint32_t>(normal_rows.size()))];
    p.dataset_b = rng.NextBounded(static_cast<uint32_t>(datasets.size()));
    p.row_b = rng.NextBounded(
        static_cast<uint32_t>(datasets[p.dataset_b].data->num_rows()));
    double a = datasets[p.dataset_a]
                   .data->column(latency_attr_by_dataset[p.dataset_a])
                   .numeric(p.row_a);
    double b = datasets[p.dataset_b]
                   .data->column(latency_attr_by_dataset[p.dataset_b])
                   .numeric(p.row_b);
    double smaller = std::max(std::min(a, b), 1e-9);
    p.significant =
        std::fabs(a - b) >= options_.significant_fraction * smaller;
    pairs.push_back(p);
  }

  // --- Precompute each pair's comparative features -------------------------
  std::vector<std::vector<Relation>> features(
      pairs.size(), std::vector<Relation>(attrs.size()));
  for (size_t pi = 0; pi < pairs.size(); ++pi) {
    for (size_t a = 0; a < attrs.size(); ++a) {
      double va = datasets[pairs[pi].dataset_a]
                      .data->column(attrs[a].first)
                      .numeric(pairs[pi].row_a);
      double vb = datasets[pairs[pi].dataset_b]
                      .data->column(attrs[a].first)
                      .numeric(pairs[pi].row_b);
      features[pi][a] = RelationOf(va, vb);
    }
  }

  // --- Greedy conjunction search -------------------------------------------
  predicates_.clear();
  std::vector<size_t> active(pairs.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;
  std::vector<bool> attr_used(attrs.size(), false);

  for (int k = 0; k < options_.num_predicates; ++k) {
    size_t total_significant = 0;
    for (size_t pi : active) {
      if (pairs[pi].significant) ++total_significant;
    }
    if (total_significant == 0) break;

    double best_score = -1.0;
    size_t best_attr = 0;
    Relation best_rel = Relation::kSimilar;
    for (size_t a = 0; a < attrs.size(); ++a) {
      if (attr_used[a]) continue;
      if (attrs[a].second == options_.latency_attribute) continue;
      if (std::find(options_.indicator_family.begin(),
                    options_.indicator_family.end(),
                    attrs[a].second) != options_.indicator_family.end()) {
        continue;
      }
      for (Relation rel :
           {Relation::kSimilar, Relation::kHigher, Relation::kLower}) {
        size_t covered = 0;
        size_t covered_significant = 0;
        for (size_t pi : active) {
          if (features[pi][a] != rel) continue;
          ++covered;
          if (pairs[pi].significant) ++covered_significant;
        }
        if (covered == 0) continue;
        // PerfXplain's weighted scoring rule: relevance (how much of the
        // observed significant behaviour the predicate covers) traded
        // against precision (how pure the covered set is).
        double relevance = static_cast<double>(covered_significant) /
                           static_cast<double>(total_significant);
        double precision = static_cast<double>(covered_significant) /
                           static_cast<double>(covered);
        double score = options_.score_weight * relevance +
                       (1.0 - options_.score_weight) * precision;
        if (score > best_score) {
          best_score = score;
          best_attr = a;
          best_rel = rel;
        }
      }
    }
    if (best_score < 0.0) break;

    predicates_.push_back({attrs[best_attr].second, best_rel});
    attr_used[best_attr] = true;
    // Narrow the pair set to those satisfying the chosen predicate.
    std::vector<size_t> next;
    for (size_t pi : active) {
      if (features[pi][best_attr] == best_rel) next.push_back(pi);
    }
    active = std::move(next);
    if (active.empty()) break;
  }
  return common::Status::OK();
}

std::vector<bool> PerfXplain::FlagRows(const tsdata::Dataset& test) const {
  std::vector<bool> flags(test.num_rows(), false);
  if (predicates_.empty()) return flags;

  // Resolve predicate attributes + their references once.
  struct Resolved {
    const tsdata::Column* column;
    double reference;
    Relation relation;
  };
  std::vector<Resolved> resolved;
  for (const PairPredicate& pred : predicates_) {
    auto col = test.ColumnByName(pred.attribute);
    if (!col.ok() ||
        (*col)->kind() != tsdata::AttributeKind::kNumeric) {
      return flags;  // model not applicable to this dataset
    }
    double reference = 0.0;
    bool found = false;
    for (const auto& [name, value] : normal_reference_) {
      if (name == pred.attribute) {
        reference = value;
        found = true;
        break;
      }
    }
    if (!found) return flags;
    resolved.push_back({*col, reference, pred.relation});
  }

  for (size_t row = 0; row < test.num_rows(); ++row) {
    bool all = true;
    for (const Resolved& r : resolved) {
      if (RelationOf(r.reference, r.column->numeric(row)) != r.relation) {
        all = false;
        break;
      }
    }
    flags[row] = all;
  }
  return flags;
}

}  // namespace dbsherlock::baselines
