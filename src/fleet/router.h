#ifndef DBSHERLOCK_FLEET_ROUTER_H_
#define DBSHERLOCK_FLEET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/status.h"
#include "fleet/event_loop.h"
#include "fleet/hash_ring.h"
#include "service/client.h"

namespace dbsherlock::fleet {

/// The fleet front door (`dbsherlockd route`, DESIGN.md §15): a thin
/// stateless-ish proxy that speaks the dbsherlockd wire protocol on one
/// port and spreads tenants across N shard daemons by consistent hashing.
///
/// Routing rules:
///   - Tenant verbs (HELLO/APPEND/FLUSH/DIAGNOSES/QUERY/DIAGNOSE_RANGE)
///     go to the tenant's shard and the shard's response line is relayed
///     verbatim (CallRaw — no re-serialization).
///   - A tenant's shard is chosen at HELLO time: the ring owner, skipping
///     shards currently marked down. The assignment is sticky (the
///     tenant's history lives there) until the shard dies and a HELLO
///     re-arrives — failover is explicit, through the client's existing
///     re-HELLO + APPENDSEQ resume protocol, because transparently
///     redirecting mid-stream appends would silently drop the dead
///     shard's acked-but-unsealed tail.
///   - Idempotent requests (HELLO, APPENDSEQ, FLUSH, reads) are retried
///     on upstream failure with the client library's jittered backoff;
///     non-idempotent ones (plain APPEND, TEACH after partial send)
///     surface ERR immediately so the writer decides.
///   - STATS/HEALTH/MODELS fan out to every shard and come back merged;
///     PING/QUIT are answered by the router itself.
///   - TEACH routes by hash of the model's cause; MODELSYNC replication
///     between shards then spreads the model fleet-wide.
///
/// A shard that fails a request is marked down for `down_cooldown_ms`
/// (circuit breaker); HELLOs during the cooldown assign to the next ring
/// owner, and the first use after the cooldown probes the shard again.
class Router {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  // 0 binds an ephemeral port
    /// Shard addresses as "host:port", in ring order. Required non-empty.
    std::vector<std::string> shards;
    size_t vnodes_per_shard = 64;
    size_t max_connections = 256;
    size_t max_line_bytes = 1 << 20;
    int idle_timeout_ms = 0;
    int accept_retry_after_ms = 50;
    /// Handler-pool width; every request blocks on an upstream call.
    size_t handler_threads = 8;
    /// Upstream per-request deadline / connect timeout.
    int upstream_deadline_ms = 5000;
    int upstream_connect_timeout_ms = 1000;
    /// Attempts for an idempotent request before giving up (>= 1).
    int max_upstream_attempts = 3;
    /// Backoff between idempotent retries (jittered, capped).
    service::RetryPolicy retry;
    /// How long a failed shard stays out of HELLO placement.
    int down_cooldown_ms = 2000;
    /// Idle upstream connections kept pooled per shard.
    size_t pool_per_shard = 8;
  };

  /// Per-shard proxy accounting (also exported via common::metrics as
  /// router.shard.<addr>.{requests,retries,failures}).
  struct ShardStats {
    std::string address;
    uint64_t requests = 0;
    uint64_t retries = 0;
    uint64_t failures = 0;
    bool down = false;
  };

  static common::Result<std::unique_ptr<Router>> Start(Options options);

  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  int port() const { return loop_->port(); }
  const std::string& host() const { return options_.host; }

  void Stop();

  std::vector<ShardStats> shard_stats() const;
  /// The shard index a tenant is currently assigned to, or -1.
  int AssignedShard(const std::string& tenant) const;
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    std::string address;
    std::string host;
    int port = 0;
    /// Steady-clock microseconds until which the shard is considered
    /// down; 0 = up.
    std::atomic<int64_t> down_until_us{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> failures{0};
    /// Registry-owned counters (router.shard.<addr>.*), cached here so
    /// the proxy hot path never takes the registry lock.
    common::Counter* requests_metric = nullptr;
    common::Counter* retries_metric = nullptr;
    common::Counter* failures_metric = nullptr;
    std::mutex pool_mu;
    std::vector<std::unique_ptr<service::Client>> pool;
  };

  explicit Router(Options options);

  std::string HandleLine(const std::string& line, bool* quit);
  /// Tenant verb routing: sticky assignment, HELLO-time failover.
  size_t AssignShard(const std::string& tenant, bool is_hello);
  /// Proxies `line` to shard `idx`; retries (and, for HELLO, fails over
  /// across the ring) when `idempotent`.
  std::string Proxy(size_t idx, const std::string& line, bool idempotent,
                    const std::string& failover_tenant);
  common::Result<std::unique_ptr<service::Client>> Acquire(Shard& shard);
  void Release(Shard& shard, std::unique_ptr<service::Client> client);
  bool IsDown(const Shard& shard) const;
  void MarkDown(Shard& shard);
  void MarkUp(Shard& shard);
  std::vector<bool> DownVector() const;
  double NextUniform();

  std::string MergedStats();
  std::string MergedHealth();
  std::string MergedModels();

  Options options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<EventLoop> loop_;

  mutable std::mutex assign_mu_;
  std::unordered_map<std::string, size_t> tenant_shard_;

  std::mutex rng_mu_;
  common::Pcg32 rng_;
};

}  // namespace dbsherlock::fleet

#endif  // DBSHERLOCK_FLEET_ROUTER_H_
