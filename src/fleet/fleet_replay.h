#ifndef DBSHERLOCK_FLEET_FLEET_REPLAY_H_
#define DBSHERLOCK_FLEET_FLEET_REPLAY_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "service/client.h"

namespace dbsherlock::fleet {

/// Many-tenant wire replay against a router (or a single shard): the
/// fleet benchmark's load generator and the shard-kill e2e test's writer.
/// `client_threads` connections cycle over `tenants` tenants round-robin,
/// each sending HELLO then `rows_per_tenant` APPENDSEQ rows, honoring
/// RETRY_AFTER backpressure with jittered backoff and riding out dropped
/// connections / dead shards with the idempotent resume protocol:
/// reconnect, re-HELLO (the router re-places the tenant if its shard
/// died), and resend the same seq — the ack replays if the row already
/// landed, so no acked row is ever lost or double-ingested.
struct FleetReplayOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  size_t tenants = 1000;
  size_t rows_per_tenant = 10;
  size_t attributes = 4;
  size_t client_threads = 16;
  service::RetryPolicy retry;
  /// Per-request client deadline (detects half-dead shards).
  int deadline_ms = 10000;
  /// Give up on one row after this many reconnect+re-HELLO cycles.
  int max_recoveries_per_row = 50;
  /// Tenant name prefix ("t" -> t0, t1, ...).
  std::string tenant_prefix = "t";
};

struct FleetReplayResult {
  uint64_t rows_acked = 0;
  uint64_t rows_failed = 0;     // rows abandoned after max recoveries
  uint64_t retries = 0;         // RETRY_AFTER responses honored
  uint64_t reconnects = 0;      // connection re-establishments
  uint64_t rehellos = 0;        // failover re-HELLOs after an ERR
  double wall_seconds = 0.0;
  double rows_per_sec = 0.0;
  /// Per-row time-to-ack (includes backpressure sleeps), milliseconds.
  double p50_append_ms = 0.0;
  double p99_append_ms = 0.0;
  double max_append_ms = 0.0;
};

common::Result<FleetReplayResult> RunFleetReplay(
    const FleetReplayOptions& options);

}  // namespace dbsherlock::fleet

#endif  // DBSHERLOCK_FLEET_FLEET_REPLAY_H_
