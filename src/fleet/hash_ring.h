#ifndef DBSHERLOCK_FLEET_HASH_RING_H_
#define DBSHERLOCK_FLEET_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dbsherlock::fleet {

/// Deterministic consistent-hash ring mapping tenant names onto shards
/// (DESIGN.md §15). Each shard owns a fixed number of virtual nodes placed
/// at FNV-1a-64 hash points of "<shard>#<vnode>"; a tenant maps to the
/// shard owning the first point clockwise of the tenant's own hash. The
/// placement depends only on the shard address list and the vnode count,
/// so every router instance (and every restart) computes the same map,
/// and adding one shard to an N-shard ring remaps only the keys whose
/// covering arcs the new shard's points split — about 1/(N+1) of them,
/// never more than ~2/N with the default vnode count (hash_ring_test
/// asserts the bound).
class HashRing {
 public:
  /// `shards` are opaque labels (the router uses host:port strings). The
  /// ring is empty when `shards` is; ShardFor then returns 0 and callers
  /// must check num_shards() first. Duplicate labels keep their first
  /// index (their vnode points collide deterministically).
  explicit HashRing(std::vector<std::string> shards,
                    size_t vnodes_per_shard = 64);

  /// Index into shards() of the tenant's owner.
  size_t ShardFor(std::string_view tenant) const;

  /// The owner walking clockwise from the tenant's point, skipping shards
  /// marked true in `down` (size num_shards()). Falls back to ShardFor
  /// when every shard is down.
  size_t ShardFor(std::string_view tenant,
                  const std::vector<bool>& down) const;

  const std::vector<std::string>& shards() const { return shards_; }
  size_t num_shards() const { return shards_.size(); }
  size_t vnodes_per_shard() const { return vnodes_; }

  /// The stable 64-bit point hash (FNV-1a); exposed so tests can assert
  /// determinism against an independent implementation.
  static uint64_t Hash(std::string_view key);

 private:
  struct Point {
    uint64_t hash;
    uint32_t shard;
  };

  std::vector<std::string> shards_;
  size_t vnodes_;
  std::vector<Point> ring_;  // sorted by hash, ties by shard index
};

}  // namespace dbsherlock::fleet

#endif  // DBSHERLOCK_FLEET_HASH_RING_H_
