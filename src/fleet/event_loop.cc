#include "fleet/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/faultenv.h"
#include "common/metrics.h"

namespace dbsherlock::fleet {

namespace {

using common::Result;
using common::Status;

constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EventLoop::EventLoop(Options options) : options_(std::move(options)) {}

Result<std::unique_ptr<EventLoop>> EventLoop::Start(Options options) {
  if (!options.handler) {
    return Status::InvalidArgument("EventLoop needs a line handler");
  }
  auto loop = std::unique_ptr<EventLoop>(new EventLoop(std::move(options)));

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(loop->options_.port));
  if (::inet_pton(AF_INET, loop->options_.host.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " +
                                   loop->options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status(common::StatusCode::kIoError,
                  std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    Status status(common::StatusCode::kIoError,
                  std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status status(common::StatusCode::kIoError,
                  std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  loop->listen_fd_ = fd;
  loop->port_ = ntohs(addr.sin_port);

  loop->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (loop->epoll_fd_ < 0) {
    return Status::IoError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  loop->wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (loop->wake_fd_ < 0) {
    return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(loop->epoll_fd_, EPOLL_CTL_ADD, loop->listen_fd_, &ev) !=
      0) {
    return Status::IoError(std::string("epoll_ctl listen: ") +
                           std::strerror(errno));
  }
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(loop->epoll_fd_, EPOLL_CTL_ADD, loop->wake_fd_, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl wake: ") +
                           std::strerror(errno));
  }

  auto& metrics = common::MetricsRegistry::Global();
  metrics.GetCounter("server.connections");
  metrics.GetCounter("server.epoll_wakeups");
  metrics.GetGauge("server.connections_live");
  metrics.GetGauge("server.read_buffer_bytes");
  metrics.GetGauge("server.write_buffer_bytes");

  loop->workers_ = std::make_unique<common::ThreadPool>(
      std::max<size_t>(1, loop->options_.handler_threads));
  loop->loop_thread_ = std::thread([raw = loop.get()] { raw->Run(); });
  return loop;
}

EventLoop::~EventLoop() { Stop(); }

void EventLoop::Stop() {
  if (stopping_.exchange(true)) return;
  uint64_t one = 1;
  (void)::write(wake_fd_, &one, sizeof(one));
  if (loop_thread_.joinable()) loop_thread_.join();
  // The pool destructor drains in-flight offloaded handlers; their
  // completions Post into completions_ and are dropped with it — exactly
  // like thread-mode shutdown, where responses race the closing socket.
  workers_.reset();
  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  connections_.clear();
  live_connections_.store(0);
  common::MetricsRegistry::Global()
      .GetGauge("server.connections_live")
      ->Set(0.0);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void EventLoop::Run() {
  auto& metrics = common::MetricsRegistry::Global();
  common::Counter* wakeups = metrics.GetCounter("server.epoll_wakeups");
  epoll_event events[64];
  for (;;) {
    int timeout = -1;
    if (options_.idle_timeout_ms > 0) {
      timeout = std::min(options_.idle_timeout_ms, 250);
    }
    int n = ::epoll_wait(epoll_fd_, events, 64, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd torn down
    }
    wakeups->Increment();
    if (stopping_.load()) return;
    for (int i = 0; i < n; ++i) {
      uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        HandleAccepts();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        ApplyCompletions();
        continue;
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection* conn = it->second.get();
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(id);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
      // The read side may have closed the connection; re-check.
      if (connections_.find(id) == connections_.end()) continue;
      if ((events[i].events & EPOLLOUT) != 0) HandleWritable(conn);
    }
    // Completions can also arrive while we were busy with socket events.
    ApplyCompletions();
    if (options_.idle_timeout_ms > 0) SweepIdle();
  }
}

void EventLoop::HandleAccepts() {
  auto& metrics = common::MetricsRegistry::Global();
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    if (connections_.size() >= options_.max_connections) {
      // Shed with a retry hint instead of queueing unboundedly: the
      // socket was just accepted, so this short write virtually always
      // lands; a client that misses it sees a clean close and backs off.
      std::string line = options_.shed_response + "\n";
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      accepts_shed_.fetch_add(1, std::memory_order_relaxed);
      metrics.GetCounter("server.accepts_shed")->Increment();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->id = next_id_++;
    conn->fd = fd;
    conn->last_active_us = NowMicros();
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(conn->id, std::move(conn));
    connections_handled_.fetch_add(1, std::memory_order_relaxed);
    live_connections_.store(connections_.size());
    metrics.GetCounter("server.connections")->Increment();
    metrics.GetGauge("server.connections_live")
        ->Set(static_cast<double>(connections_.size()));
  }
}

void EventLoop::HandleReadable(Connection* conn) {
  auto& metrics = common::MetricsRegistry::Global();
  char chunk[4096];
  for (;;) {
    ssize_t r = common::faultenv::Recv("srv.recv", conn->fd, chunk,
                                       sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (r == 0) {
      // Half-close: the peer finished sending (pipelined requests then
      // shutdown(WR) is a legal client pattern, and the thread-per-
      // connection mode answers everything already buffered before it
      // notices EOF). Stop reading, but drain pending requests and the
      // write buffer before closing.
      conn->eof = true;
      break;
    }
    if (r < 0) {
      CloseConnection(conn->id);
      return;
    }
    conn->last_active_us = NowMicros();
    read_buffered_bytes_ += static_cast<size_t>(r);
    conn->inbuf.append(chunk, static_cast<size_t>(r));
    size_t newline;
    while (!conn->close_after_flush &&
           (newline = conn->inbuf.find('\n')) != std::string::npos) {
      std::string line = conn->inbuf.substr(0, newline);
      conn->inbuf.erase(0, newline + 1);
      read_buffered_bytes_ -= newline + 1;
      if (line.size() > options_.max_line_bytes) {
        metrics.GetCounter("server.oversized_lines")->Increment();
        conn->pending.clear();
        QueueResponse(conn, options_.oversized_response, /*quit=*/true);
        break;
      }
      conn->pending.push_back(std::move(line));
    }
    // A partial line past the cap can never complete into a valid
    // request; shed it before it eats the loop's memory.
    if (!conn->close_after_flush &&
        conn->inbuf.size() > options_.max_line_bytes) {
      metrics.GetCounter("server.oversized_lines")->Increment();
      read_buffered_bytes_ -= conn->inbuf.size();
      conn->inbuf.clear();
      conn->pending.clear();
      QueueResponse(conn, options_.oversized_response, /*quit=*/true);
    }
  }
  Pump(conn);
  UpdateBufferGauges();
}

void EventLoop::Pump(Connection* conn) {
  while (!conn->in_flight && !conn->close_after_flush &&
         !conn->pending.empty()) {
    std::string line = std::move(conn->pending.front());
    conn->pending.pop_front();
    bool offload = !options_.offload || options_.offload(line);
    if (offload) {
      conn->in_flight = true;
      workers_->Submit([this, id = conn->id, line = std::move(line)] {
        bool quit = false;
        std::string response = options_.handler(line, &quit);
        Post(Completion{id, std::move(response), quit});
      });
      break;
    }
    bool quit = false;
    std::string response = options_.handler(line, &quit);
    QueueResponse(conn, response, quit);
  }
  FlushOut(conn);
}

void EventLoop::QueueResponse(Connection* conn, const std::string& response,
                              bool quit) {
  conn->outbuf += response;
  conn->outbuf += '\n';
  write_buffered_bytes_ += response.size() + 1;
  if (quit) {
    conn->close_after_flush = true;
    conn->pending.clear();
  }
}

void EventLoop::FlushOut(Connection* conn) {
  while (!conn->outbuf.empty()) {
    ssize_t w = common::faultenv::Send("srv.send", conn->fd,
                                       conn->outbuf.data(),
                                       conn->outbuf.size(), MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (w <= 0) {
      CloseConnection(conn->id);
      return;
    }
    write_buffered_bytes_ -= static_cast<size_t>(w);
    conn->outbuf.erase(0, static_cast<size_t>(w));
  }
  if (!conn->in_flight &&
      (conn->close_after_flush || (conn->eof && conn->pending.empty()))) {
    CloseConnection(conn->id);
  }
}

void EventLoop::HandleWritable(Connection* conn) {
  FlushOut(conn);
  UpdateBufferGauges();
}

void EventLoop::CloseConnection(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  read_buffered_bytes_ -= conn->inbuf.size();
  write_buffered_bytes_ -= conn->outbuf.size();
  if (conn->in_flight) {
    // An offloaded handler still owns this id; keep a tombstone so its
    // completion finds nothing, but release the socket now.
    ::close(conn->fd);
    conn->fd = -1;
    conn->inbuf.clear();
    conn->outbuf.clear();
    conn->pending.clear();
    conn->close_after_flush = true;
    return;
  }
  ::close(conn->fd);
  connections_.erase(it);
  live_connections_.store(connections_.size());
  common::MetricsRegistry::Global()
      .GetGauge("server.connections_live")
      ->Set(static_cast<double>(connections_.size()));
  UpdateBufferGauges();
}

void EventLoop::SweepIdle() {
  int64_t now = NowMicros();
  int64_t budget_us = static_cast<int64_t>(options_.idle_timeout_ms) * 1000;
  std::vector<uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (conn->fd >= 0 && !conn->in_flight && conn->outbuf.empty() &&
        now - conn->last_active_us > budget_us) {
      idle.push_back(id);
    }
  }
  if (!idle.empty()) {
    common::Counter* timeouts =
        common::MetricsRegistry::Global().GetCounter("server.idle_timeouts");
    for (uint64_t id : idle) {
      timeouts->Increment();
      CloseConnection(id);
    }
  }
}

void EventLoop::Post(Completion completion) {
  {
    std::lock_guard lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  uint64_t one = 1;
  (void)::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::ApplyCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = connections_.find(c.id);
    if (it == connections_.end()) continue;
    Connection* conn = it->second.get();
    conn->in_flight = false;
    if (conn->fd < 0) {
      // Tombstone: the socket died while the handler ran.
      connections_.erase(it);
      live_connections_.store(connections_.size());
      common::MetricsRegistry::Global()
          .GetGauge("server.connections_live")
          ->Set(static_cast<double>(connections_.size()));
      continue;
    }
    QueueResponse(conn, c.response, c.quit);
    Pump(conn);
  }
  UpdateBufferGauges();
}

void EventLoop::UpdateBufferGauges() {
  auto& metrics = common::MetricsRegistry::Global();
  metrics.GetGauge("server.read_buffer_bytes")
      ->Set(static_cast<double>(read_buffered_bytes_));
  metrics.GetGauge("server.write_buffer_bytes")
      ->Set(static_cast<double>(write_buffered_bytes_));
}

}  // namespace dbsherlock::fleet
