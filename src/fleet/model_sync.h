#ifndef DBSHERLOCK_FLEET_MODEL_SYNC_H_
#define DBSHERLOCK_FLEET_MODEL_SYNC_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/client.h"
#include "service/service.h"

namespace dbsherlock::fleet {

/// Background replication puller (DESIGN.md §15): every shard runs one of
/// these next to its Service, periodically asking each peer shard
/// `MODELSYNC <since_seq>` and folding the returned causal-model corpus
/// into the local durable store, so every shard ranks anomalies against
/// the fleet-wide knowledge no matter which shard learned a model first.
///
/// Pull protocol per peer:
///   - `since_seq` is the peer's store sequence number at the last
///     successful pull; a peer whose store has not advanced answers with
///     an empty models list (cheap steady-state heartbeat).
///   - The response's CRC-32 is recomputed over the re-serialized models
///     array; a mismatch (torn or faulted transfer) discards the pull.
///   - Apply is idempotent: a model byte-identical to one already held is
///     skipped, and a model whose merge into the local corpus would be a
///     no-op is skipped too — so mutual pulls between peers converge
///     instead of echoing models (and WAL records) back and forth.
///   - Everything else goes through Service::Teach, i.e. the same
///     WAL-then-merge path as a client TEACH.
class ModelSyncPuller {
 public:
  struct Options {
    /// Peer shards as "host:port" (exclude this shard's own address).
    std::vector<std::string> peers;
    /// Delay between pull rounds.
    int interval_ms = 1000;
    /// Upstream timeouts for one pull.
    int connect_timeout_ms = 500;
    int deadline_ms = 5000;
    /// The local engine (apply path) — required, not owned.
    service::Service* service = nullptr;
  };

  /// Per-peer accounting, readable while the puller runs.
  struct PeerStats {
    std::string address;
    uint64_t last_seq = 0;      // peer store seq covered by pulls so far
    uint64_t pulls = 0;         // successful MODELSYNC exchanges
    uint64_t applied = 0;       // models taught into the local store
    uint64_t skipped = 0;       // duplicates / no-op merges
    uint64_t crc_failures = 0;  // pulls discarded on checksum mismatch
    uint64_t errors = 0;        // connect/call failures
  };

  static common::Result<std::unique_ptr<ModelSyncPuller>> Start(
      Options options);

  ~ModelSyncPuller();

  ModelSyncPuller(const ModelSyncPuller&) = delete;
  ModelSyncPuller& operator=(const ModelSyncPuller&) = delete;

  void Stop();

  /// One synchronous pull round over every peer (tests drive this
  /// directly; the background thread calls it on its interval).
  void RunOnce();

  std::vector<PeerStats> peer_stats() const;

 private:
  struct Peer {
    std::string host;
    int port = 0;
    PeerStats stats;
    std::unique_ptr<service::Client> client;
  };

  explicit ModelSyncPuller(Options options);

  void Run();
  void PullPeer(Peer& peer);

  Options options_;
  std::vector<Peer> peers_;
  mutable std::mutex mu_;  // guards peers_ (stats + clients) and stop_
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dbsherlock::fleet

#endif  // DBSHERLOCK_FLEET_MODEL_SYNC_H_
