#include "fleet/hash_ring.h"

#include <algorithm>

#include "common/strings.h"

namespace dbsherlock::fleet {

uint64_t HashRing::Hash(std::string_view key) {
  // FNV-1a 64: platform-independent, so routers on different hosts agree.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // Raw FNV-1a avalanches poorly on the keys this ring actually sees —
  // short "t<N>" tenant names and "host:port#vnode" points sharing a long
  // prefix cluster into narrow bands, which can starve whole shards (a
  // 4-shard ring measured 0/0/10/190 across 200 tenants). The murmur3
  // fmix64 finalizer spreads those bands over the full 64-bit ring.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

HashRing::HashRing(std::vector<std::string> shards, size_t vnodes_per_shard)
    : shards_(std::move(shards)),
      vnodes_(std::max<size_t>(1, vnodes_per_shard)) {
  ring_.reserve(shards_.size() * vnodes_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t v = 0; v < vnodes_; ++v) {
      std::string point = common::StrFormat("%s#%zu", shards_[s].c_str(), v);
      ring_.push_back(Point{Hash(point), static_cast<uint32_t>(s)});
    }
  }
  // Ties (identical hash points, e.g. duplicate shard labels) resolve to
  // the lowest shard index so the map stays deterministic.
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

size_t HashRing::ShardFor(std::string_view tenant) const {
  if (ring_.empty()) return 0;
  uint64_t h = Hash(tenant);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->shard;
}

size_t HashRing::ShardFor(std::string_view tenant,
                          const std::vector<bool>& down) const {
  if (ring_.empty()) return 0;
  uint64_t h = Hash(tenant);
  auto start = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  size_t begin = static_cast<size_t>(start - ring_.begin());
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& p = ring_[(begin + i) % ring_.size()];
    if (p.shard >= down.size() || !down[p.shard]) return p.shard;
  }
  return ShardFor(tenant);  // everything down: deterministic fallback
}

}  // namespace dbsherlock::fleet
