#ifndef DBSHERLOCK_FLEET_EVENT_LOOP_H_
#define DBSHERLOCK_FLEET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"

namespace dbsherlock::fleet {

/// Edge-triggered epoll event loop serving the dbsherlockd line protocol
/// (DESIGN.md §15): one loop thread multiplexes the listen socket and
/// every live connection through nonblocking I/O, so fan-in no longer
/// costs one blocked reader thread per connection. Request lines are
/// reassembled from partial reads per connection; responses are written
/// through a per-connection output buffer that survives short writes.
///
/// Two dispatch paths keep the loop responsive:
///
///   inline    `handler` runs on the loop thread — only for requests the
///             owner promises never block (APPEND's bounded-queue path,
///             PING). One stalled inline handler stalls every connection,
///             which is exactly why `offload` exists.
///   offload   requests for which `offload(line)` returns true run on a
///             fixed worker pool (`handler_threads`); the response is
///             posted back to the loop through an eventfd wakeup. While a
///             connection has an offloaded request in flight, its later
///             lines wait in its pending queue — one request at a time
///             per connection, so responses keep wire order.
///
/// Connections past `max_connections` are shed at accept with a
/// RETRY_AFTER line (clients back off and try again) instead of holding
/// an fd or a thread. Oversized request lines get ERR ParseError and the
/// connection is closed, complete or partial — identical to the
/// thread-per-connection server, which the wire-parity test asserts
/// byte-for-byte.
class EventLoop {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  // 0 binds an ephemeral port
    size_t max_connections = 64;
    size_t max_line_bytes = 1 << 20;
    /// Connections idle (no bytes read) this long are closed. 0 = never.
    int idle_timeout_ms = 0;
    /// Response line (no trailing newline) written before closing a
    /// connection shed at accept past max_connections. The owner renders
    /// it with wire.h (RetryAfterLine) — the loop itself stays protocol
    /// agnostic so dbsherlock_fleet_core never depends on the service lib.
    std::string shed_response = "RETRY_AFTER 50";
    /// Response line for an oversized (complete or partial) request line;
    /// the connection closes after it flushes.
    std::string oversized_response = "ERR ParseError request line too long";
    /// Workers for offloaded (blocking) request handlers.
    size_t handler_threads = 4;
    /// One request line -> one response line (no trailing newline); sets
    /// *quit to close the connection after the response flushes. Must be
    /// thread-safe: it runs on the loop thread or a pool worker.
    std::function<std::string(const std::string& line, bool* quit)> handler;
    /// True when `line` may block and must leave the loop thread.
    /// Default (unset): every line is offloaded.
    std::function<bool(const std::string& line)> offload;
  };

  /// Binds, listens, and starts the loop thread.
  static common::Result<std::unique_ptr<EventLoop>> Start(Options options);

  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  int port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Stops accepting, waits for in-flight offloaded handlers, closes every
  /// connection, and joins the loop thread. Idempotent.
  void Stop();

  size_t connections_handled() const { return connections_handled_.load(); }
  /// Connections currently registered with the loop.
  size_t live_connections() const { return live_connections_.load(); }
  uint64_t accepts_shed() const { return accepts_shed_.load(); }

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string inbuf;              // bytes read, not yet split into lines
    std::deque<std::string> pending;  // complete lines awaiting dispatch
    std::string outbuf;             // response bytes not yet written
    bool in_flight = false;         // an offloaded handler owns the next
                                    // response slot
    bool close_after_flush = false;
    bool eof = false;  // peer half-closed; drain pending, then close
    int64_t last_active_us = 0;
  };

  struct Completion {
    uint64_t id = 0;
    std::string response;
    bool quit = false;
  };

  explicit EventLoop(Options options);

  void Run();
  void HandleAccepts();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Dispatches pending lines until one goes in flight (offload) or the
  /// queue empties, then flushes the output buffer.
  void Pump(Connection* conn);
  void QueueResponse(Connection* conn, const std::string& response,
                     bool quit);
  void FlushOut(Connection* conn);
  void CloseConnection(uint64_t id);
  void SweepIdle();
  /// Thread-safe: posts an offload completion and wakes the loop.
  void Post(Completion completion);
  void ApplyCompletions();
  void UpdateBufferGauges();

  Options options_;
  int port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: offload completions and Stop
  std::atomic<bool> stopping_{false};
  std::thread loop_thread_;
  std::unique_ptr<common::ThreadPool> workers_;

  // Loop-thread state (no lock): connections keyed by id, never by fd, so
  // a recycled fd number can't alias a closed connection.
  uint64_t next_id_ = 2;  // 0 = listen sentinel, 1 = wakeup sentinel
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  size_t read_buffered_bytes_ = 0;
  size_t write_buffered_bytes_ = 0;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::atomic<size_t> connections_handled_{0};
  std::atomic<size_t> live_connections_{0};
  std::atomic<uint64_t> accepts_shed_{0};
};

}  // namespace dbsherlock::fleet

#endif  // DBSHERLOCK_FLEET_EVENT_LOOP_H_
