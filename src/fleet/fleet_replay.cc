#include "fleet/fleet_replay.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "tsdata/schema.h"

namespace dbsherlock::fleet {

namespace {

using common::Result;
using common::Status;
using service::Client;
using service::Response;

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic numeric row for (tenant, row, attribute) — reproducible
/// across runs and cheap to generate under load.
std::vector<tsdata::Cell> MakeRow(size_t tenant, size_t row,
                                  size_t attributes) {
  std::vector<tsdata::Cell> cells;
  cells.reserve(attributes);
  for (size_t a = 0; a < attributes; ++a) {
    cells.emplace_back(
        static_cast<double>((tenant * 131 + row * 31 + a * 7) % 97));
  }
  return cells;
}

struct SharedCounters {
  std::atomic<uint64_t> rows_acked{0};
  std::atomic<uint64_t> rows_failed{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> reconnects{0};
  std::atomic<uint64_t> rehellos{0};
  std::mutex latencies_mu;
  std::vector<double> latencies_ms;
};

class ReplayWorker {
 public:
  ReplayWorker(const FleetReplayOptions& options, size_t worker_index,
               SharedCounters* counters)
      : options_(options),
        worker_(worker_index),
        counters_(counters),
        rng_(options.retry.seed + worker_index, worker_index * 2 + 1) {
    std::vector<tsdata::AttributeSpec> attrs;
    for (size_t a = 0; a < options_.attributes; ++a) {
      tsdata::AttributeSpec spec;
      spec.name = common::StrFormat("m%zu", a);
      spec.kind = tsdata::AttributeKind::kNumeric;
      attrs.push_back(std::move(spec));
    }
    schema_ = tsdata::Schema(std::move(attrs));
  }

  void Run() {
    for (size_t t = worker_; t < options_.tenants;
         t += options_.client_threads) {
      ReplayTenant(t);
    }
    if (client_ != nullptr) (void)client_->Quit();
    std::lock_guard lock(counters_->latencies_mu);
    counters_->latencies_ms.insert(counters_->latencies_ms.end(),
                                   latencies_ms_.begin(),
                                   latencies_ms_.end());
  }

 private:
  /// Sleeps the retry policy's jittered backoff for attempt `attempt`.
  void Backoff(int attempt, int hint_ms) {
    counters_->retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(service::BackoffSleepMs(
            options_.retry, attempt, hint_ms, rng_.NextDouble())));
  }

  /// (Re)connects to the endpoint, backing off between attempts. False
  /// only when the recovery budget for the current row is exhausted.
  bool EnsureConnected(int* recoveries) {
    int attempt = 0;
    while (*recoveries < options_.max_recoveries_per_row) {
      if (client_ == nullptr) {
        Client::Options client_options;
        client_options.connect_timeout_ms = 2000;
        client_options.deadline_ms = options_.deadline_ms;
        auto client =
            Client::Connect(options_.host, options_.port, client_options);
        if (client.ok()) {
          client_ = std::move(*client);
          counters_->reconnects.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      } else {
        if (client_->Reconnect().ok()) {
          counters_->reconnects.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
      ++*recoveries;
      Backoff(attempt++, 0);
    }
    return false;
  }

  /// HELLO (with resume): returns the first row index (1-based) still
  /// missing from the tenant's durable history, or 0 on failure.
  size_t HelloResume(const std::string& tenant, int* recoveries) {
    int attempt = 0;
    while (*recoveries < options_.max_recoveries_per_row) {
      if (client_ == nullptr && !EnsureConnected(recoveries)) return 0;
      auto resume = client_->HelloResume(tenant, schema_);
      if (resume.ok()) {
        // Row timestamps are their 1-based indices, so the durable
        // high-water timestamp IS the last landed row index.
        if (!resume->has_value()) return 1;
        return static_cast<size_t>(**resume) + 1;
      }
      ++*recoveries;
      // ERR (e.g. every shard down mid-failover) and dropped connections
      // both back off; a dead connection additionally reconnects.
      if (!EnsureConnected(recoveries)) return 0;
      Backoff(attempt++, 0);
    }
    return 0;
  }

  void ReplayTenant(size_t tenant_index) {
    std::string tenant =
        common::StrFormat("%s%zu", options_.tenant_prefix.c_str(),
                          tenant_index);
    int recoveries = 0;
    size_t next = HelloResume(tenant, &recoveries);
    if (next == 0) {
      counters_->rows_failed.fetch_add(options_.rows_per_tenant,
                                       std::memory_order_relaxed);
      return;
    }
    while (next <= options_.rows_per_tenant) {
      std::vector<tsdata::Cell> cells =
          MakeRow(tenant_index, next, options_.attributes);
      double started = NowSeconds();
      bool acked = false;
      while (!acked) {
        auto response = client_ == nullptr
                            ? Result<Response>(Status::IoError("no conn"))
                            : client_->AppendSeq(
                                  tenant, next,
                                  static_cast<double>(next), cells);
        if (response.ok() && response->kind == Response::Kind::kOk) {
          acked = true;
          break;
        }
        if (response.ok() &&
            response->kind == Response::Kind::kRetryAfter) {
          // Poll at the server's hint (jittered, NOT grown): the wait for
          // a drain slot shrinks as shards are added, and geometric
          // growth would overshoot it — a fixed cadence keeps the row's
          // latency proportional to the real queue wait.
          Backoff(/*attempt=*/0, response->retry_after_ms);
          continue;
        }
        // ERR from the router (shard died, retries exhausted) or a
        // dropped connection: recover via the idempotent resume
        // protocol — reconnect if needed, re-HELLO (the router re-places
        // the tenant on a survivor), and rewind to the first row the new
        // shard is missing. Replayed seqs ack without re-ingesting.
        ++recoveries;
        if (recoveries >= options_.max_recoveries_per_row) break;
        bool was_err =
            response.ok() && response->kind == Response::Kind::kErr;
        if (!was_err && !EnsureConnected(&recoveries)) break;
        counters_->rehellos.fetch_add(1, std::memory_order_relaxed);
        size_t resume = HelloResume(tenant, &recoveries);
        if (resume == 0) break;
        if (resume < next) {
          // The survivor is missing earlier rows (they died with the old
          // shard's window): rewind and resend them all — idempotent.
          next = resume;
          break;
        }
        if (resume > next) {
          // Already durable on the (same) shard; the lost ack is
          // replayed by moving on.
          acked = true;
          next = resume - 1;  // incremented below
          break;
        }
      }
      if (acked) {
        counters_->rows_acked.fetch_add(1, std::memory_order_relaxed);
        latencies_ms_.push_back((NowSeconds() - started) * 1000.0);
        ++next;
      } else if (recoveries >= options_.max_recoveries_per_row) {
        counters_->rows_failed.fetch_add(
            options_.rows_per_tenant - next + 1,
            std::memory_order_relaxed);
        return;
      }
      // else: rewound to an earlier row; loop continues from `next`.
    }
    (void)client_->Flush(tenant);
  }

  const FleetReplayOptions& options_;
  size_t worker_;
  SharedCounters* counters_;
  common::Pcg32 rng_;
  tsdata::Schema schema_;
  std::unique_ptr<Client> client_;
  std::vector<double> latencies_ms_;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

Result<FleetReplayResult> RunFleetReplay(const FleetReplayOptions& options) {
  if (options.tenants == 0 || options.rows_per_tenant == 0) {
    return Status::InvalidArgument("fleet replay needs tenants and rows");
  }
  FleetReplayOptions effective = options;
  effective.client_threads =
      std::max<size_t>(1, std::min(options.client_threads, options.tenants));

  SharedCounters counters;
  double started = NowSeconds();
  {
    std::vector<std::thread> threads;
    threads.reserve(effective.client_threads);
    std::vector<std::unique_ptr<ReplayWorker>> workers;
    for (size_t w = 0; w < effective.client_threads; ++w) {
      workers.push_back(
          std::make_unique<ReplayWorker>(effective, w, &counters));
      threads.emplace_back([worker = workers.back().get()] {
        worker->Run();
      });
    }
    for (std::thread& t : threads) t.join();
  }

  FleetReplayResult result;
  result.rows_acked = counters.rows_acked.load();
  result.rows_failed = counters.rows_failed.load();
  result.retries = counters.retries.load();
  result.reconnects = counters.reconnects.load();
  result.rehellos = counters.rehellos.load();
  result.wall_seconds = NowSeconds() - started;
  if (result.wall_seconds > 0) {
    result.rows_per_sec =
        static_cast<double>(result.rows_acked) / result.wall_seconds;
  }
  std::vector<double>& latencies = counters.latencies_ms;
  std::sort(latencies.begin(), latencies.end());
  result.p50_append_ms = Percentile(latencies, 0.50);
  result.p99_append_ms = Percentile(latencies, 0.99);
  if (!latencies.empty()) result.max_append_ms = latencies.back();
  return result;
}

}  // namespace dbsherlock::fleet
