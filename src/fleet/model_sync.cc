#include "fleet/model_sync.h"

#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "common/json.h"
#include "core/causal_model.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/model_io.h"
#include "service/model_store.h"

namespace dbsherlock::fleet {

namespace {

using common::Result;
using common::Status;

}  // namespace

ModelSyncPuller::ModelSyncPuller(Options options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<ModelSyncPuller>> ModelSyncPuller::Start(
    Options options) {
  if (options.service == nullptr) {
    return Status::InvalidArgument("ModelSyncPuller needs a Service");
  }
  auto puller =
      std::unique_ptr<ModelSyncPuller>(new ModelSyncPuller(std::move(options)));
  for (const std::string& address : puller->options_.peers) {
    size_t colon = address.rfind(':');
    auto port = colon == std::string::npos
                    ? Result<int64_t>(Status::InvalidArgument("no port"))
                    : common::ParseInt64(address.substr(colon + 1));
    if (!port.ok() || *port <= 0 || *port > 65535) {
      return Status::InvalidArgument("bad peer address '" + address +
                                     "' (want host:port)");
    }
    Peer peer;
    peer.host = address.substr(0, colon);
    peer.port = static_cast<int>(*port);
    peer.stats.address = address;
    puller->peers_.push_back(std::move(peer));
  }
  if (!puller->peers_.empty() && puller->options_.interval_ms > 0) {
    puller->thread_ = std::thread([raw = puller.get()] { raw->Run(); });
  }
  return puller;
}

ModelSyncPuller::~ModelSyncPuller() { Stop(); }

void ModelSyncPuller::Stop() {
  {
    std::lock_guard lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ModelSyncPuller::Run() {
  for (;;) {
    {
      std::unique_lock lock(mu_);
      stop_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.interval_ms),
                        [this] { return stop_; });
      if (stop_) return;
    }
    RunOnce();
  }
}

void ModelSyncPuller::RunOnce() {
  // Peers are pulled under the lock (RunOnce may be driven by a test
  // thread while stats readers poll); the network calls dominate, and a
  // pull round is infrequent, so the coarse lock is fine.
  std::lock_guard lock(mu_);
  for (Peer& peer : peers_) PullPeer(peer);
}

void ModelSyncPuller::PullPeer(Peer& peer) {
  auto& metrics = common::MetricsRegistry::Global();
  if (peer.client == nullptr) {
    service::Client::Options client_options;
    client_options.connect_timeout_ms = options_.connect_timeout_ms;
    client_options.deadline_ms = options_.deadline_ms;
    auto client =
        service::Client::Connect(peer.host, peer.port, client_options);
    if (!client.ok()) {
      ++peer.stats.errors;
      metrics.GetCounter("modelsync.errors")->Increment();
      return;
    }
    peer.client = std::move(*client);
  }

  auto response = peer.client->ModelSync(peer.stats.last_seq);
  if (!response.ok()) {
    ++peer.stats.errors;
    metrics.GetCounter("modelsync.errors")->Increment();
    peer.client.reset();  // reconnect next round
    return;
  }

  auto last_seq = response->GetNumber("last_seq");
  auto crc = response->GetNumber("crc");
  const common::JsonValue* models = response->Find("models");
  if (!last_seq.ok() || !crc.ok() || models == nullptr ||
      !models->is_array()) {
    ++peer.stats.errors;
    metrics.GetCounter("modelsync.errors")->Increment();
    return;
  }

  // Verify the transfer before touching the store: Dump() is canonical
  // (ordered keys, round-trip numbers), so re-serializing the parsed
  // array reproduces the sender's exact bytes.
  std::string text = models->Dump();
  if (static_cast<uint32_t>(*crc) !=
      service::Crc32(text.data(), text.size())) {
    ++peer.stats.crc_failures;
    metrics.GetCounter("modelsync.crc_failures")->Increment();
    return;
  }

  if (!models->as_array().empty()) {
    // Fingerprint the local corpus once: byte-identical models are
    // skipped, and same-cause models whose merge changes nothing are
    // skipped too — otherwise mutual pulls would append a WAL record per
    // round forever and the fleet's seqs would never settle.
    std::unordered_set<std::string> fingerprints;
    std::unordered_map<std::string, const core::CausalModel*> by_cause;
    core::ModelRepository local;
    if (options_.service->options().store != nullptr) {
      local = options_.service->options().store->SnapshotRepository();
    }
    for (const core::CausalModel& model : local.models()) {
      fingerprints.insert(core::CausalModelToJson(model).Dump());
      by_cause[model.cause] = &model;
    }
    for (const common::JsonValue& json : models->as_array()) {
      std::string fingerprint = json.Dump();
      if (fingerprints.count(fingerprint) > 0) {
        ++peer.stats.skipped;
        metrics.GetCounter("modelsync.skipped")->Increment();
        continue;
      }
      auto model = core::CausalModelFromJson(json);
      if (!model.ok()) {
        ++peer.stats.errors;
        metrics.GetCounter("modelsync.errors")->Increment();
        continue;
      }
      auto it = by_cause.find(model->cause);
      if (it != by_cause.end()) {
        auto merged = core::MergeCausalModels(*it->second, *model);
        if (merged.ok() && !merged->predicates.empty() &&
            core::CausalModelToJson(*merged).Dump() ==
                core::CausalModelToJson(*it->second).Dump()) {
          ++peer.stats.skipped;  // merge is a no-op; don't grow the WAL
          metrics.GetCounter("modelsync.skipped")->Increment();
          continue;
        }
      }
      Status status = options_.service->Teach(*model);
      if (!status.ok()) {
        ++peer.stats.errors;
        metrics.GetCounter("modelsync.errors")->Increment();
        continue;
      }
      ++peer.stats.applied;
      metrics.GetCounter("modelsync.applied")->Increment();
    }
  }

  peer.stats.last_seq = static_cast<uint64_t>(*last_seq);
  ++peer.stats.pulls;
  metrics.GetCounter("modelsync.pulls")->Increment();
}

std::vector<ModelSyncPuller::PeerStats> ModelSyncPuller::peer_stats() const {
  std::lock_guard lock(mu_);
  std::vector<PeerStats> out;
  out.reserve(peers_.size());
  for (const Peer& peer : peers_) out.push_back(peer.stats);
  return out;
}

}  // namespace dbsherlock::fleet
