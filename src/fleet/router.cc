#include "fleet/router.h"

#include <chrono>
#include <thread>

#include "common/json.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "service/wire.h"

namespace dbsherlock::fleet {

namespace {

using common::Result;
using common::Status;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Ranks HEALTH states for the merged worst-of verdict.
int HealthRank(const std::string& state) {
  if (state == "ok") return 0;
  if (state == "degraded") return 1;
  return 2;  // draining / unreachable / unknown
}

}  // namespace

Router::Router(Options options)
    : options_(std::move(options)),
      ring_(options_.shards, options_.vnodes_per_shard),
      rng_(options_.retry.seed, 77) {}

Result<std::unique_ptr<Router>> Router::Start(Options options) {
  if (options.shards.empty()) {
    return Status::InvalidArgument("route needs at least one shard");
  }
  auto router = std::unique_ptr<Router>(new Router(std::move(options)));
  auto& metrics = common::MetricsRegistry::Global();
  for (const std::string& address : router->options_.shards) {
    size_t colon = address.rfind(':');
    auto port = colon == std::string::npos
                    ? Result<int64_t>(Status::InvalidArgument("no port"))
                    : common::ParseInt64(address.substr(colon + 1));
    if (!port.ok() || *port <= 0 || *port > 65535) {
      return Status::InvalidArgument("bad shard address '" + address +
                                     "' (want host:port)");
    }
    auto shard = std::make_unique<Shard>();
    shard->address = address;
    shard->host = address.substr(0, colon);
    shard->port = static_cast<int>(*port);
    shard->requests_metric =
        metrics.GetCounter("router.shard." + address + ".requests");
    shard->retries_metric =
        metrics.GetCounter("router.shard." + address + ".retries");
    shard->failures_metric =
        metrics.GetCounter("router.shard." + address + ".failures");
    router->shards_.push_back(std::move(shard));
  }

  EventLoop::Options loop_options;
  loop_options.host = router->options_.host;
  loop_options.port = router->options_.port;
  loop_options.max_connections = router->options_.max_connections;
  loop_options.max_line_bytes = router->options_.max_line_bytes;
  loop_options.idle_timeout_ms = router->options_.idle_timeout_ms;
  loop_options.handler_threads = router->options_.handler_threads;
  loop_options.shed_response =
      service::RetryAfterLine(router->options_.accept_retry_after_ms);
  loop_options.oversized_response =
      service::ErrLine(Status::ParseError("request line too long"));
  loop_options.handler = [raw = router.get()](const std::string& line,
                                              bool* quit) {
    return raw->HandleLine(line, quit);
  };
  // Everything except PING/QUIT blocks on an upstream shard call.
  loop_options.offload = [](const std::string& line) {
    size_t end = line.find_first_of(" \t\r");
    std::string_view verb(line.data(),
                          end == std::string::npos ? line.size() : end);
    return !(verb == "PING" || verb == "QUIT");
  };
  auto loop = EventLoop::Start(std::move(loop_options));
  if (!loop.ok()) return loop.status();
  router->loop_ = std::move(*loop);
  return router;
}

Router::~Router() { Stop(); }

void Router::Stop() {
  if (loop_ != nullptr) loop_->Stop();
}

std::vector<Router::ShardStats> Router::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats stats;
    stats.address = shard->address;
    stats.requests = shard->requests.load();
    stats.retries = shard->retries.load();
    stats.failures = shard->failures.load();
    stats.down = IsDown(*shard);
    out.push_back(std::move(stats));
  }
  return out;
}

int Router::AssignedShard(const std::string& tenant) const {
  std::lock_guard lock(assign_mu_);
  auto it = tenant_shard_.find(tenant);
  return it == tenant_shard_.end() ? -1 : static_cast<int>(it->second);
}

bool Router::IsDown(const Shard& shard) const {
  return shard.down_until_us.load(std::memory_order_relaxed) > NowMicros();
}

void Router::MarkDown(Shard& shard) {
  shard.down_until_us.store(
      NowMicros() + int64_t{options_.down_cooldown_ms} * 1000,
      std::memory_order_relaxed);
}

void Router::MarkUp(Shard& shard) {
  shard.down_until_us.store(0, std::memory_order_relaxed);
}

std::vector<bool> Router::DownVector() const {
  std::vector<bool> down(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) down[i] = IsDown(*shards_[i]);
  return down;
}

double Router::NextUniform() {
  std::lock_guard lock(rng_mu_);
  return rng_.NextDouble();
}

Result<std::unique_ptr<service::Client>> Router::Acquire(Shard& shard) {
  {
    std::lock_guard lock(shard.pool_mu);
    if (!shard.pool.empty()) {
      auto client = std::move(shard.pool.back());
      shard.pool.pop_back();
      return client;
    }
  }
  service::Client::Options client_options;
  client_options.connect_timeout_ms = options_.upstream_connect_timeout_ms;
  client_options.deadline_ms = options_.upstream_deadline_ms;
  return service::Client::Connect(shard.host, shard.port, client_options);
}

void Router::Release(Shard& shard, std::unique_ptr<service::Client> client) {
  std::lock_guard lock(shard.pool_mu);
  if (shard.pool.size() < options_.pool_per_shard) {
    shard.pool.push_back(std::move(client));
  }
  // else: drop; the destructor closes the socket.
}

size_t Router::AssignShard(const std::string& tenant, bool is_hello) {
  std::lock_guard lock(assign_mu_);
  auto it = tenant_shard_.find(tenant);
  if (it != tenant_shard_.end()) {
    // Sticky while the shard lives (its history store has the tenant's
    // rows); a HELLO re-places only when the current owner is down.
    if (!is_hello || !IsDown(*shards_[it->second])) return it->second;
  }
  size_t idx = ring_.ShardFor(tenant, DownVector());
  tenant_shard_[tenant] = idx;
  return idx;
}

std::string Router::Proxy(size_t idx, const std::string& line,
                          bool idempotent,
                          const std::string& failover_tenant) {
  int attempts = std::max(1, options_.max_upstream_attempts);
  Status last = Status::IoError("no upstream attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Shard& shard = *shards_[idx];
    if (attempt > 0) {
      shard.retries.fetch_add(1, std::memory_order_relaxed);
      shard.retries_metric->Increment();
      std::this_thread::sleep_for(std::chrono::milliseconds(
          service::BackoffSleepMs(options_.retry, attempt - 1, 0,
                                  NextUniform())));
    }
    shard.requests.fetch_add(1, std::memory_order_relaxed);
    shard.requests_metric->Increment();
    if (IsDown(shard)) {
      // Circuit breaker open: fail fast instead of eating a connect
      // timeout per request while the shard is known-dead.
      last = Status::IoError("shard " + shard.address + " is down");
    } else {
      auto client = Acquire(shard);
      if (client.ok()) {
        auto raw = (*client)->CallRaw(line);
        if (raw.ok()) {
          MarkUp(shard);
          Release(shard, std::move(*client));
          return *raw;
        }
        last = raw.status();  // broken connection: let the client drop
      } else {
        last = client.status();
      }
      shard.failures.fetch_add(1, std::memory_order_relaxed);
      shard.failures_metric->Increment();
      MarkDown(shard);
    }
    if (!idempotent) break;
    if (!failover_tenant.empty()) {
      // HELLO: re-place on the ring with the dead shard excluded, so the
      // retry (and the tenant's future traffic) lands on a survivor.
      size_t next = ring_.ShardFor(failover_tenant, DownVector());
      std::lock_guard lock(assign_mu_);
      tenant_shard_[failover_tenant] = next;
      idx = next;
    }
  }
  return service::ErrLine(last);
}

std::string Router::HandleLine(const std::string& line, bool* quit) {
  auto parsed = service::ParseRequestLine(line);
  if (!parsed.ok()) return service::ErrLine(parsed.status());
  service::Request& request = *parsed;

  using service::RequestOp;
  switch (request.op) {
    case RequestOp::kPing:
      return service::OkLine("pong");
    case RequestOp::kQuit:
      *quit = true;
      return service::OkLine("bye");
    case RequestOp::kStats:
      return service::OkLine(MergedStats());
    case RequestOp::kHealth:
      return service::OkLine(MergedHealth());
    case RequestOp::kModels:
      return service::OkLine(MergedModels());
    case RequestOp::kModelSync:
      // Replication is shard-to-shard; the router holds no model store.
      return service::ErrLine(Status::FailedPrecondition(
          "MODELSYNC is answered by shards, not the router"));
    case RequestOp::kTeach: {
      // Deterministic placement by cause; MODELSYNC replication spreads
      // the model to the rest of the fleet. Teaching the same model
      // twice merges to the same corpus, so retries are safe.
      size_t idx = ring_.ShardFor(request.model.cause, DownVector());
      return Proxy(idx, line, /*idempotent=*/true, /*failover_tenant=*/"");
    }
    case RequestOp::kHello: {
      size_t idx = AssignShard(request.tenant, /*is_hello=*/true);
      return Proxy(idx, line, /*idempotent=*/true, request.tenant);
    }
    case RequestOp::kAppend: {
      size_t idx = AssignShard(request.tenant, /*is_hello=*/false);
      // APPENDSEQ (and JSON append with "seq") is idempotent by
      // construction; a plain APPEND that failed mid-call may or may not
      // have landed, so it is not retried — the writer decides.
      return Proxy(idx, line, request.has_client_seq,
                   /*failover_tenant=*/"");
    }
    case RequestOp::kFlush:
    case RequestOp::kDiagnoses:
    case RequestOp::kQuery:
    case RequestOp::kDiagnoseRange:
    case RequestOp::kExplainQuery: {
      size_t idx = AssignShard(request.tenant, /*is_hello=*/false);
      return Proxy(idx, line, /*idempotent=*/true, /*failover_tenant=*/"");
    }
  }
  return service::ErrLine(Status::Internal("unhandled request op"));
}

std::string Router::MergedStats() {
  common::JsonValue::Object router;
  router["shards"] = static_cast<double>(shards_.size());
  {
    std::lock_guard lock(assign_mu_);
    router["tenants"] = static_cast<double>(tenant_shard_.size());
  }
  common::JsonValue::Object per_shard;
  common::JsonValue::Object upstream;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    common::JsonValue::Object entry;
    entry["requests"] = static_cast<double>(shard.requests.load());
    entry["retries"] = static_cast<double>(shard.retries.load());
    entry["failures"] = static_cast<double>(shard.failures.load());
    entry["down"] = IsDown(shard);
    per_shard[shard.address] = common::JsonValue(std::move(entry));

    std::string raw = Proxy(i, "STATS", /*idempotent=*/true, "");
    auto response = service::ParseResponseLine(raw);
    if (response.ok() && response->kind == service::Response::Kind::kOk) {
      auto json = common::ParseJson(response->detail);
      if (json.ok()) {
        upstream[shard.address] = std::move(*json);
        continue;
      }
    }
    common::JsonValue::Object error;
    error["error"] = raw;
    upstream[shard.address] = common::JsonValue(std::move(error));
  }
  router["per_shard"] = common::JsonValue(std::move(per_shard));
  common::JsonValue::Object out;
  out["router"] = common::JsonValue(std::move(router));
  out["shards"] = common::JsonValue(std::move(upstream));
  return common::JsonValue(std::move(out)).Dump();
}

std::string Router::MergedHealth() {
  common::JsonValue::Object upstream;
  int worst = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::string raw = Proxy(i, "HEALTH", /*idempotent=*/true, "");
    auto response = service::ParseResponseLine(raw);
    if (response.ok() && response->kind == service::Response::Kind::kOk) {
      auto json = common::ParseJson(response->detail);
      if (json.ok()) {
        auto state = json->GetString("state");
        worst =
            std::max(worst, HealthRank(state.ok() ? *state : "unknown"));
        upstream[shard.address] = std::move(*json);
        continue;
      }
    }
    worst = std::max(worst, HealthRank("unreachable"));
    common::JsonValue::Object entry;
    entry["state"] = "unreachable";
    entry["reason"] = raw;
    upstream[shard.address] = common::JsonValue(std::move(entry));
  }
  common::JsonValue::Object out;
  out["state"] = worst == 0 ? "ok" : (worst == 1 ? "degraded" : "draining");
  out["shards"] = common::JsonValue(std::move(upstream));
  return common::JsonValue(std::move(out)).Dump();
}

std::string Router::MergedModels() {
  // Union of every reachable shard's corpus, deduplicated by exact
  // serialized form (MODELSYNC replication makes shards converge, so the
  // union usually collapses to one shard's list).
  common::JsonValue::Array models;
  std::vector<std::string> seen;
  size_t reporting = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::string raw = Proxy(i, "MODELS", /*idempotent=*/true, "");
    auto response = service::ParseResponseLine(raw);
    if (!response.ok() ||
        response->kind != service::Response::Kind::kOk) {
      continue;
    }
    auto json = common::ParseJson(response->detail);
    if (!json.ok()) continue;
    ++reporting;
    const common::JsonValue* list = json->Find("models");
    if (list == nullptr || !list->is_array()) continue;
    for (const common::JsonValue& model : list->as_array()) {
      std::string fingerprint = model.Dump();
      bool duplicate = false;
      for (const std::string& s : seen) {
        if (s == fingerprint) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      seen.push_back(std::move(fingerprint));
      models.push_back(model);
    }
  }
  common::JsonValue::Object out;
  out["version"] = 1;
  out["shards_reporting"] = static_cast<double>(reporting);
  out["models"] = common::JsonValue(std::move(models));
  return common::JsonValue(std::move(out)).Dump();
}

}  // namespace dbsherlock::fleet
