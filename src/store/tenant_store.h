#ifndef DBSHERLOCK_STORE_TENANT_STORE_H_
#define DBSHERLOCK_STORE_TENANT_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/segment.h"
#include "tsdata/dataset.h"

namespace dbsherlock::store {

/// Manifest entry for one sealed, immutable on-disk segment.
struct SegmentInfo {
  uint64_t seq = 0;       // monotonic file sequence number
  std::string path;
  uint64_t rows = 0;
  double min_ts = 0.0;
  double max_ts = 0.0;
  uint64_t bytes = 0;     // compressed file size
};

/// What Open() found on disk. Corrupt files are torn tails from a crash
/// mid-seal: they are deleted during recovery (so the tail is truncated
/// exactly once) and every intact segment is kept.
struct RecoveryReport {
  size_t segments_recovered = 0;
  uint64_t rows_recovered = 0;
  size_t segments_dropped = 0;
  uint64_t bytes_dropped = 0;
};

/// Embedded per-tenant time-series store (DESIGN.md §11). Appends land in
/// an in-memory active segment that seals to a compressed immutable file
/// every `seal_rows` rows; `Scan` stitches sealed segments and the active
/// tail back into a `tsdata::Dataset` so the diagnosis pipeline runs over
/// history unchanged. Thread-safe: appends/seals take an exclusive lock,
/// scans a shared one.
class TenantStore {
 public:
  struct Options {
    std::string dir;         // per-tenant segment directory (required)
    tsdata::Schema schema;   // empty = adopt the schema found on disk
    size_t seal_rows = 512;  // active segment seals at this many rows
    uint64_t retain_bytes = 0;   // 0 = unlimited byte budget
    double retain_age_sec = 0.0; // 0 = unlimited age
    bool fsync_on_seal = true;   // tests may disable for speed
  };

  /// Creates the directory if needed and recovers every intact segment,
  /// deleting corrupt ones (see RecoveryReport). Fails with
  /// FailedPrecondition when the on-disk schema does not match
  /// `options.schema` — a tenant cannot change schema mid-history.
  static common::Result<std::unique_ptr<TenantStore>> Open(Options options);

  ~TenantStore();

  TenantStore(const TenantStore&) = delete;
  TenantStore& operator=(const TenantStore&) = delete;

  /// Appends one row to the active segment (timestamps must be strictly
  /// increasing — the store mirrors monitor-accepted telemetry). Seals
  /// automatically at `seal_rows`.
  common::Status Append(double timestamp,
                        const std::vector<tsdata::Cell>& cells);

  /// Force-seals the active segment to disk (no-op when empty).
  common::Status Seal();

  /// Rows with timestamp in [t0, t1), stitched across sealed segments and
  /// the active tail, in timestamp order.
  common::Result<tsdata::Dataset> Scan(double t0, double t1) const;

  /// The newest `max_rows` rows (or fewer), in timestamp order — the
  /// restart-rehydration path for StreamingMonitor.
  common::Result<tsdata::Dataset> ScanTail(size_t max_rows) const;

  /// Re-arms the retention policy (HELLO RETAIN); enforcement happens on
  /// the next seal.
  void SetRetention(uint64_t retain_bytes, double retain_age_sec);

  const tsdata::Schema& schema() const { return options_.schema; }
  const std::string& dir() const { return options_.dir; }
  const RecoveryReport& recovery() const { return recovery_; }

  // --- Stats (STATS verb / store-inspect) -----------------------------
  size_t num_segments() const;
  uint64_t sealed_rows() const;
  uint64_t sealed_bytes() const;
  size_t active_rows() const;
  uint64_t retention_deletes() const;
  /// Compressed bytes / raw CSV bytes across everything sealed so far
  /// (0 when nothing sealed yet).
  double compression_ratio() const;
  /// Copy of the manifest, oldest first.
  std::vector<SegmentInfo> Manifest() const;

  /// Timestamp of the newest row that is durably sealed on disk, or nullopt
  /// when nothing has sealed yet. Rows after this live only in the active
  /// in-memory segment and do not survive a crash — clients implementing
  /// idempotent replay resend everything strictly after this point.
  std::optional<double> durable_last_ts() const;

 private:
  explicit TenantStore(Options options);

  common::Status RecoverLocked();
  common::Status SealLocked();
  void EnforceRetentionLocked();
  common::Status AppendRange(const tsdata::Dataset& src, double t0, double t1,
                             tsdata::Dataset* dst) const;
  double last_ts_locked() const;

  Options options_;
  RecoveryReport recovery_;

  mutable std::shared_mutex mu_;
  std::vector<SegmentInfo> segments_;  // manifest, oldest first
  tsdata::Dataset active_;
  uint64_t next_seq_ = 1;
  bool have_last_ts_ = false;
  double last_ts_ = 0.0;
  // Cumulative seal accounting for the compression-ratio gauge; never
  // decremented by retention (the ratio describes the codec, not the
  // current directory).
  uint64_t compressed_total_ = 0;
  uint64_t raw_total_ = 0;
  uint64_t retention_deletes_ = 0;
};

}  // namespace dbsherlock::store

#endif  // DBSHERLOCK_STORE_TENANT_STORE_H_
