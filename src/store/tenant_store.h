#ifndef DBSHERLOCK_STORE_TENANT_STORE_H_
#define DBSHERLOCK_STORE_TENANT_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/segment.h"
#include "tsdata/dataset.h"

namespace dbsherlock::store {

/// Manifest entry for one sealed, immutable on-disk segment.
struct SegmentInfo {
  uint64_t seq = 0;       // monotonic file sequence number
  std::string path;
  uint64_t rows = 0;
  double min_ts = 0.0;
  double max_ts = 0.0;
  uint64_t bytes = 0;     // compressed file size
  ZoneMap zones;          // per-attribute min/max/counts (DESIGN.md §14)
};

/// What Open() found on disk. Corrupt files are torn tails from a crash
/// mid-seal: they are deleted during recovery (so the tail is truncated
/// exactly once) and every intact segment is kept.
struct RecoveryReport {
  size_t segments_recovered = 0;
  uint64_t rows_recovered = 0;
  size_t segments_dropped = 0;
  uint64_t bytes_dropped = 0;
  /// Intact but zero-row segments deleted at recovery: they carry no data
  /// and their meaningless 0.0 time bounds would poison manifest pruning
  /// and pin age-based retention.
  size_t empty_segments_dropped = 0;
  /// v1 (footer-less) segments re-encoded in place with a zone-map footer
  /// — the one-time backward-compatible format upgrade.
  size_t segments_upgraded = 0;
};

/// A closed numeric-attribute filter pushed into Scan: rows must satisfy
/// `lo <= value <= hi` (NaN never matches); segments whose zone map
/// proves no row can match are skipped without being read or decoded.
struct AttributeBound {
  std::string attribute;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

struct ScanOptions {
  double t0 = -std::numeric_limits<double>::infinity();
  double t1 = std::numeric_limits<double>::infinity();  // half-open [t0, t1)
  /// Conjunction of per-attribute bounds (numeric attributes only).
  std::vector<AttributeBound> bounds;
  /// Decode parallelism (0 = hardware lanes, 1 = serial). Results are
  /// bit-identical across settings — stitching is deterministic.
  size_t parallelism = 0;
  /// When false, every sealed segment is read and decoded (rows are still
  /// filtered) — the full-decode baseline the parity tests compare against.
  bool prune = true;
  /// Stop after this many matching rows (0 = unlimited). The output holds
  /// at most `max_rows` rows; ScanStats::truncated reports whether more
  /// rows matched.
  size_t max_rows = 0;
};

/// What one scan did — the pushdown observability surface (STATS verb).
struct ScanStats {
  size_t segments_total = 0;         // sealed segments in the snapshot
  size_t segments_skipped_time = 0;  // pruned on [min_ts, max_ts] alone
  size_t segments_skipped_zone = 0;  // pruned on an attribute zone
  size_t segments_decoded = 0;       // actually read + inflated
  uint64_t rows_out = 0;             // rows delivered after filtering
  size_t retries = 0;                // restarts after a retention race
  bool truncated = false;            // max_rows cut the scan short
};

/// What one ResolveQuantile call did — how much the zone-map bracketing
/// saved versus decoding every sealed segment.
struct QuantileStats {
  size_t segments_total = 0;    // sealed segments in the snapshot
  size_t segments_decoded = 0;  // straddled the bracket and were inflated
  uint64_t values_total = 0;    // non-NaN values ranked (sealed + active)
  uint64_t rank = 0;            // 1-based order statistic returned
};

/// Receives scan output incrementally, in timestamp order. Rare restarts
/// (a retention race deleted a snapshotted segment mid-scan) invoke
/// `on_reset` and the chunk sequence starts over from the beginning.
struct ScanVisitor {
  std::function<common::Status(const tsdata::Dataset& chunk)> on_chunk;
  std::function<void()> on_reset;  // optional
};

/// Embedded per-tenant time-series store (DESIGN.md §11, §14). Appends
/// land in an in-memory active segment that seals to a compressed
/// immutable file every `seal_rows` rows; `Scan` stitches sealed segments
/// and the active tail back into a `tsdata::Dataset` so the diagnosis
/// pipeline runs over history unchanged. Thread-safe; scans snapshot the
/// manifest under a shared lock and do all file I/O and decompression
/// outside it, so a week-long retro-scan never stalls Append/Seal.
class TenantStore {
 public:
  struct Options {
    std::string dir;         // per-tenant segment directory (required)
    tsdata::Schema schema;   // empty = adopt the schema found on disk
    size_t seal_rows = 512;  // active segment seals at this many rows
    uint64_t retain_bytes = 0;   // 0 = unlimited byte budget
    double retain_age_sec = 0.0; // 0 = unlimited age
    bool fsync_on_seal = true;   // tests may disable for speed
  };

  /// Creates the directory if needed and recovers every intact segment,
  /// deleting corrupt ones (see RecoveryReport). Fails with
  /// FailedPrecondition when the on-disk schema does not match
  /// `options.schema` — a tenant cannot change schema mid-history.
  static common::Result<std::unique_ptr<TenantStore>> Open(Options options);

  ~TenantStore();

  TenantStore(const TenantStore&) = delete;
  TenantStore& operator=(const TenantStore&) = delete;

  /// Appends one row to the active segment (timestamps must be strictly
  /// increasing — the store mirrors monitor-accepted telemetry). Seals
  /// automatically at `seal_rows`.
  common::Status Append(double timestamp,
                        const std::vector<tsdata::Cell>& cells);

  /// Force-seals the active segment to disk (no-op when empty).
  common::Status Seal();

  /// Rows with timestamp in [t0, t1), stitched across sealed segments and
  /// the active tail, in timestamp order.
  common::Result<tsdata::Dataset> Scan(double t0, double t1) const;

  /// Scan with pushdown: time bounds and attribute bounds prune whole
  /// segments via the manifest zone maps before any file is read.
  common::Result<tsdata::Dataset> ScanWithOptions(const ScanOptions& options,
                                                  ScanStats* stats) const;

  /// Streaming form of ScanWithOptions: filtered chunks are delivered in
  /// timestamp order as segments decode, so the caller can build its
  /// result (or stop at a row cap) without the store buffering the whole
  /// range. A non-OK status from `visitor.on_chunk` aborts the scan and
  /// is returned verbatim.
  common::Status ScanVisit(const ScanOptions& options,
                           const ScanVisitor& visitor,
                           ScanStats* stats) const;

  /// The newest `max_rows` rows (or fewer), in timestamp order — the
  /// restart-rehydration path for StreamingMonitor.
  common::Result<tsdata::Dataset> ScanTail(size_t max_rows) const;

  /// Exact q-quantile (0 <= q <= 1) of every stored value of a numeric
  /// attribute — sealed segments plus the active tail, NaNs excluded —
  /// computed as the ceil(q*N)-th order statistic. The manifest zone maps
  /// bracket where that order statistic can live, so segments provably
  /// below the bracket contribute only their counts and segments provably
  /// above it are never read; only straddling segments are decoded
  /// (DESIGN.md §16). FailedPrecondition when no non-NaN value is stored.
  common::Result<double> ResolveQuantile(const std::string& attribute,
                                         double q,
                                         QuantileStats* stats) const;

  /// Re-arms the retention policy (HELLO RETAIN); enforcement happens on
  /// the next seal.
  void SetRetention(uint64_t retain_bytes, double retain_age_sec);

  const tsdata::Schema& schema() const { return options_.schema; }
  const std::string& dir() const { return options_.dir; }
  const RecoveryReport& recovery() const { return recovery_; }

  // --- Stats (STATS verb / store-inspect) -----------------------------
  size_t num_segments() const;
  uint64_t sealed_rows() const;
  uint64_t sealed_bytes() const;
  size_t active_rows() const;
  uint64_t retention_deletes() const;
  /// Compressed bytes / raw CSV bytes across everything sealed so far
  /// (0 when nothing sealed yet).
  double compression_ratio() const;
  /// Copy of the manifest, oldest first.
  std::vector<SegmentInfo> Manifest() const;

  // Cumulative pushdown counters across every scan since open.
  uint64_t scans_total() const { return scans_total_.load(); }
  uint64_t scan_segments_skipped() const {
    return scan_segments_skipped_.load();
  }
  uint64_t scan_segments_decoded() const {
    return scan_segments_decoded_.load();
  }
  uint64_t scan_retries() const { return scan_retries_.load(); }

  /// Timestamp of the newest row that is durably sealed on disk, or nullopt
  /// when nothing has sealed yet. Rows after this live only in the active
  /// in-memory segment and do not survive a crash — clients implementing
  /// idempotent replay resend everything strictly after this point.
  std::optional<double> durable_last_ts() const;

 private:
  explicit TenantStore(Options options);

  common::Status RecoverLocked();
  common::Status SealLocked();
  void EnforceRetentionLocked();
  common::Status AppendRange(const tsdata::Dataset& src, double t0, double t1,
                             tsdata::Dataset* dst) const;
  common::Status ScanVisitOnce(const ScanOptions& options,
                               const ScanVisitor& visitor, ScanStats* stats,
                               bool* retention_raced) const;
  double last_ts_locked() const;

  Options options_;
  RecoveryReport recovery_;

  mutable std::shared_mutex mu_;
  std::vector<SegmentInfo> segments_;  // manifest, oldest first
  tsdata::Dataset active_;
  uint64_t next_seq_ = 1;
  bool have_last_ts_ = false;
  double last_ts_ = 0.0;
  /// Bumped once per retention unlink; a scan that hits a missing file
  /// re-checks this to tell a benign race from real data loss.
  uint64_t retention_generation_ = 0;
  // Cumulative seal accounting for the compression-ratio gauge; never
  // decremented by retention (the ratio describes the codec, not the
  // current directory).
  uint64_t compressed_total_ = 0;
  uint64_t raw_total_ = 0;
  uint64_t retention_deletes_ = 0;
  // Scan-side counters mutate under the shared lock, hence atomics.
  mutable std::atomic<uint64_t> scans_total_{0};
  mutable std::atomic<uint64_t> scan_segments_skipped_{0};
  mutable std::atomic<uint64_t> scan_segments_decoded_{0};
  mutable std::atomic<uint64_t> scan_retries_{0};
};

}  // namespace dbsherlock::store

#endif  // DBSHERLOCK_STORE_TENANT_STORE_H_
