#ifndef DBSHERLOCK_STORE_SEGMENT_H_
#define DBSHERLOCK_STORE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "tsdata/dataset.h"

namespace dbsherlock::store {

/// Cheap per-segment summary decoded from the meta block alone, used to
/// build the manifest without inflating row data.
struct SegmentMeta {
  tsdata::Schema schema;
  uint64_t rows = 0;
  double min_ts = 0.0;  // timestamp of the first row (segments are sorted)
  double max_ts = 0.0;  // timestamp of the last row
};

/// Serialises a dataset into an immutable segment blob (DESIGN.md §11):
/// a "DBSG" magic + version header followed by CRC-32-framed blocks —
/// schema/meta, delta-of-delta timestamps, then one block per column
/// (Gorilla-style XOR compression for numeric columns, dictionary +
/// varint codes for categorical ones). The encoding is pure bit
/// manipulation, so every double — including NaN payloads — round-trips
/// bit-identically.
std::string EncodeSegment(const tsdata::Dataset& data);

/// Inflates a segment blob back into a dataset. Every length, count, and
/// checksum is validated; corrupt or truncated input yields a clean
/// error Status, never UB.
common::Result<tsdata::Dataset> DecodeSegment(std::string_view bytes);

/// Decodes only the meta block (schema, row count, time range). Cheap:
/// does not touch the timestamp or column blocks beyond their framing.
common::Result<SegmentMeta> ReadSegmentMeta(std::string_view bytes);

}  // namespace dbsherlock::store

#endif  // DBSHERLOCK_STORE_SEGMENT_H_
