#ifndef DBSHERLOCK_STORE_SEGMENT_H_
#define DBSHERLOCK_STORE_SEGMENT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "tsdata/dataset.h"

namespace dbsherlock::store {

/// Cheap per-segment summary decoded from the meta block alone, used to
/// build the manifest without inflating row data.
struct SegmentMeta {
  tsdata::Schema schema;
  uint64_t rows = 0;
  double min_ts = 0.0;  // timestamp of the first row (segments are sorted)
  double max_ts = 0.0;  // timestamp of the last row
  uint32_t version = 0;  // segment format version (1 = no zone footer)
};

/// Per-attribute value summary inside a segment's zone-map footer
/// (DESIGN.md §14). `min`/`max` span the non-NaN values *including* ±Inf
/// — an all-Inf column must not be pruned under a `v >= lo` bound — so
/// `min > max` (the +inf/-inf init) means "no non-NaN values at all" and
/// the segment can never satisfy a numeric bound on this attribute.
/// Categorical attributes carry no numeric range (min > max) but count
/// every cell as present and finite.
struct AttrZone {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t non_nan_count = 0;  // cells with a comparable value (incl. ±Inf)
  uint64_t finite_count = 0;   // cells that are finite

  /// True when no row in the zone can satisfy `lo <= v <= hi` (NaN never
  /// matches). Conservative: false only proves the segment *may* match.
  bool CannotMatch(double lo, double hi) const {
    if (non_nan_count == 0) return true;
    return max < lo || min > hi;
  }
};

/// Segment-level zone map: row/time bounds plus one AttrZone per schema
/// attribute, in schema order.
struct ZoneMap {
  uint64_t rows = 0;
  double min_ts = 0.0;
  double max_ts = 0.0;
  std::vector<AttrZone> attrs;
};

/// Computes the zone map for a dataset by one pass over its columns.
/// This is the exact function the encoder uses at seal time, so a map
/// synthesized for an old footer-less segment is bit-identical to the
/// one a re-encode would embed.
ZoneMap ComputeZoneMap(const tsdata::Dataset& data);

/// Serialises a dataset into an immutable segment blob (DESIGN.md §11):
/// a "DBSG" magic + version header followed by CRC-32-framed blocks —
/// schema/meta, delta-of-delta timestamps, then one block per column
/// (Gorilla-style XOR compression for numeric columns, dictionary +
/// varint codes for categorical ones), then (v2, DESIGN.md §14) a
/// zone-map footer block and an 8-byte "DBSZ" trailer that makes the
/// footer locatable from the end of the file. The encoding is pure bit
/// manipulation, so every double — including NaN payloads — round-trips
/// bit-identically.
std::string EncodeSegment(const tsdata::Dataset& data);

/// Inflates a segment blob back into a dataset. Accepts both format
/// versions: v1 (no footer) and v2 (footer required and validated).
/// Every length, count, and checksum is validated; corrupt or truncated
/// input yields a clean error Status, never UB.
common::Result<tsdata::Dataset> DecodeSegment(std::string_view bytes);

/// Decodes only the meta block (schema, row count, time range). Cheap:
/// does not touch the timestamp or column blocks beyond their framing.
common::Result<SegmentMeta> ReadSegmentMeta(std::string_view bytes);

/// Decodes only the zone-map footer of a v2 segment by seeking to the
/// trailing "DBSZ" trailer — no timestamp or column block is touched.
/// Returns NotFound for a v1 (footer-less) segment so the caller can
/// synthesize the map via a full decode instead.
common::Result<ZoneMap> ReadSegmentZoneMap(std::string_view bytes);

}  // namespace dbsherlock::store

#endif  // DBSHERLOCK_STORE_SEGMENT_H_
