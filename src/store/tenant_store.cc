#include "store/tenant_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>

#include "common/faultenv.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/trace.h"
#include "tsdata/dataset_io.h"

namespace dbsherlock::store {

namespace {

using common::Result;
using common::Status;

constexpr char kSegmentPrefix[] = "seg-";
constexpr char kSegmentSuffix[] = ".dbs";

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = common::faultenv::Write("seg.write", fd, data + done,
                                        n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Slurps a segment file through the faultenv "seg.read" site. A file
/// that is gone entirely maps to NotFound so scans can tell a retention
/// race from real corruption.
Status ReadFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("segment file gone: " + path);
    }
    return Errno("open", path);
  }
  out->clear();
  char buf[64 << 10];
  Status status;
  for (;;) {
    ssize_t n = common::faultenv::Read("seg.read", fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Errno("read", path);
      break;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return status;
}

/// Parses the sequence number out of "seg-%08llu.dbs"; nullopt for
/// foreign files, which recovery leaves untouched.
std::optional<uint64_t> ParseSegmentSeq(const std::string& name) {
  size_t prefix = sizeof(kSegmentPrefix) - 1;
  size_t suffix = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix + suffix) return std::nullopt;
  if (name.compare(0, prefix, kSegmentPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return std::nullopt;
  }
  uint64_t seq = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

std::string SegmentPath(const std::string& dir, uint64_t seq) {
  return dir + "/" + common::StrFormat("%s%08llu%s", kSegmentPrefix,
                                       static_cast<unsigned long long>(seq),
                                       kSegmentSuffix);
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", dir);
  Status status;
  if (common::faultenv::Fsync("seg.dirsync", fd) != 0) {
    status = Errno("fsync dir", dir);
  }
  ::close(fd);
  return status;
}

/// Atomically replaces `path` with `blob` via tmp-file + rename — the
/// one-time v1 → v2 footer upgrade during recovery. Any failure leaves
/// the original (still valid) file in place.
Status ReplaceSegmentFile(const std::string& path, const std::string& blob,
                          bool fsync) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", tmp);
  Status status = WriteAll(fd, blob.data(), blob.size(), tmp);
  if (status.ok() && fsync &&
      common::faultenv::Fsync("seg.fsync", fd) != 0) {
    status = Errno("fsync", tmp);
  }
  ::close(fd);
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Errno("rename", tmp);
  }
  if (!status.ok()) (void)::unlink(tmp.c_str());
  return status;
}

}  // namespace

TenantStore::TenantStore(Options options) : options_(std::move(options)) {}

TenantStore::~TenantStore() = default;

Result<std::unique_ptr<TenantStore>> TenantStore::Open(Options options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("TenantStore needs a directory");
  }
  if (options.seal_rows == 0) {
    return Status::InvalidArgument("seal_rows must be positive");
  }
  auto store = std::unique_ptr<TenantStore>(new TenantStore(options));
  if (::mkdir(store->options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir", store->options_.dir);
  }
  {
    std::unique_lock lock(store->mu_);
    DBSHERLOCK_RETURN_NOT_OK(store->RecoverLocked());
  }
  return store;
}

Status TenantStore::RecoverLocked() {
  TRACE_SPAN("store.recover");
  auto& metrics = common::MetricsRegistry::Global();

  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) return Errno("opendir", options_.dir);
  std::vector<std::pair<uint64_t, std::string>> found;
  for (dirent* entry = ::readdir(dir); entry != nullptr;
       entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (auto seq = ParseSegmentSeq(name)) found.emplace_back(*seq, name);
  }
  ::closedir(dir);
  std::sort(found.begin(), found.end());

  bool schema_adopted = options_.schema.num_attributes() > 0;
  for (const auto& [seq, name] : found) {
    std::string path = options_.dir + "/" + name;
    std::string blob;
    DBSHERLOCK_RETURN_NOT_OK(ReadFile(path, &blob));
    // A full decode (not just the meta block) so a bit flip anywhere in
    // the file is caught now, not mid-Scan.
    auto decoded = DecodeSegment(blob);
    if (!decoded.ok()) {
      // A corrupt segment is the torn tail of a crash mid-seal: drop it
      // here so every later open sees a clean directory (the tail is
      // truncated exactly once).
      if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
      ++recovery_.segments_dropped;
      recovery_.bytes_dropped += blob.size();
      metrics.GetCounter("store.recovery_dropped_segments")->Increment();
      continue;
    }
    if (!schema_adopted) {
      options_.schema = decoded->schema();
      schema_adopted = true;
    } else if (!(decoded->schema() == options_.schema)) {
      return Status::FailedPrecondition(common::StrFormat(
          "segment %s schema does not match the tenant schema (a tenant "
          "cannot change schema mid-history)",
          path.c_str()));
    }
    next_seq_ = std::max(next_seq_, seq + 1);
    if (decoded->num_rows() == 0) {
      // A zero-row segment carries no data, and its meaningless 0.0 time
      // bounds would poison manifest pruning and pin age-based retention
      // forever — drop the file, never stamp it into the manifest.
      if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
      ++recovery_.empty_segments_dropped;
      metrics.GetCounter("store.recovery_empty_dropped")->Increment();
      continue;
    }
    // v1 (footer-less) segments get their zone map synthesized from the
    // decode we just did, re-encoded with the v2 footer, and atomically
    // swapped into place — the upgrade happens exactly once per file.
    auto zones = ReadSegmentZoneMap(blob);
    if (!zones.ok() &&
        zones.status().code() == common::StatusCode::kNotFound) {
      std::string upgraded = EncodeSegment(*decoded);
      Status replace =
          ReplaceSegmentFile(path, upgraded, options_.fsync_on_seal);
      if (replace.ok()) {
        blob = std::move(upgraded);
        ++recovery_.segments_upgraded;
        metrics.GetCounter("store.recovery_upgraded_segments")->Increment();
        zones = ReadSegmentZoneMap(blob);
      }
    }
    SegmentInfo info;
    info.seq = seq;
    info.path = path;
    info.rows = decoded->num_rows();
    info.min_ts = decoded->timestamp(0);
    info.max_ts = decoded->timestamp(decoded->num_rows() - 1);
    info.bytes = blob.size();
    // A failed in-place upgrade (e.g. read-only media) is not fatal: the
    // manifest zone map is synthesized from the decoded rows either way.
    info.zones = zones.ok() ? std::move(*zones) : ComputeZoneMap(*decoded);
    have_last_ts_ = true;
    last_ts_ = std::max(last_ts_, info.max_ts);
    segments_.push_back(std::move(info));
    ++recovery_.segments_recovered;
    recovery_.rows_recovered += decoded->num_rows();
  }
  if (recovery_.segments_upgraded > 0 && options_.fsync_on_seal) {
    DBSHERLOCK_RETURN_NOT_OK(FsyncDir(options_.dir));
  }
  active_ = tsdata::Dataset(options_.schema);
  return Status::OK();
}

double TenantStore::last_ts_locked() const {
  if (active_.num_rows() > 0) {
    return active_.timestamp(active_.num_rows() - 1);
  }
  return last_ts_;
}

Status TenantStore::Append(double timestamp,
                           const std::vector<tsdata::Cell>& cells) {
  std::unique_lock lock(mu_);
  if (have_last_ts_ && !(timestamp > last_ts_locked())) {
    return Status::InvalidArgument(common::StrFormat(
        "store: timestamp %.3f not after %.3f", timestamp,
        last_ts_locked()));
  }
  DBSHERLOCK_RETURN_NOT_OK(active_.AppendRow(timestamp, cells));
  have_last_ts_ = true;
  if (active_.num_rows() >= options_.seal_rows) {
    DBSHERLOCK_RETURN_NOT_OK(SealLocked());
  }
  return Status::OK();
}

Status TenantStore::Seal() {
  std::unique_lock lock(mu_);
  return SealLocked();
}

Status TenantStore::SealLocked() {
  if (active_.num_rows() == 0) return Status::OK();
  TRACE_SPAN("store.seal");
  auto& metrics = common::MetricsRegistry::Global();
  common::ScopedLatency timer(metrics.GetHistogram("store.seal_us"));

  std::string blob = EncodeSegment(active_);
  // The honest baseline for the compression gauge: what these rows cost
  // as the CSV the rest of the repo exchanges telemetry in.
  size_t raw_bytes = tsdata::DatasetToCsv(active_).size();

  uint64_t seq = next_seq_++;
  std::string path = SegmentPath(options_.dir, seq);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", path);
  Status status = WriteAll(fd, blob.data(), blob.size(), path);
  if (status.ok() && options_.fsync_on_seal &&
      common::faultenv::Fsync("seg.fsync", fd) != 0) {
    status = Errno("fsync", path);
  }
  ::close(fd);
  if (!status.ok()) {
    // The rows stay in active_ and the next Append retries the seal under
    // a fresh seq; drop the partial file now so a restart that happens
    // before that retry doesn't have to (best-effort — recovery also
    // discards undecodable segments).
    (void)::unlink(path.c_str());
    metrics.GetCounter("store.seal_errors")->Increment();
    return status;
  }
  if (options_.fsync_on_seal) {
    DBSHERLOCK_RETURN_NOT_OK(FsyncDir(options_.dir));
  }

  SegmentInfo info;
  info.seq = seq;
  info.path = std::move(path);
  info.rows = active_.num_rows();
  info.min_ts = active_.timestamp(0);
  info.max_ts = active_.timestamp(active_.num_rows() - 1);
  info.bytes = blob.size();
  // The same map EncodeSegment just embedded in the footer.
  info.zones = ComputeZoneMap(active_);
  last_ts_ = info.max_ts;
  segments_.push_back(std::move(info));
  active_ = tsdata::Dataset(options_.schema);

  compressed_total_ += blob.size();
  raw_total_ += raw_bytes;
  metrics.GetCounter("store.segments_sealed")->Increment();
  if (raw_total_ > 0) {
    metrics.GetGauge("store.compression_ratio")
        ->Set(static_cast<double>(compressed_total_) /
              static_cast<double>(raw_total_));
  }
  EnforceRetentionLocked();
  return Status::OK();
}

void TenantStore::EnforceRetentionLocked() {
  auto& metrics = common::MetricsRegistry::Global();
  auto over_budget = [&] {
    if (segments_.size() <= 1) return false;  // always keep the newest
    if (options_.retain_bytes > 0) {
      uint64_t total = 0;
      for (const SegmentInfo& seg : segments_) total += seg.bytes;
      if (total > options_.retain_bytes) return true;
    }
    if (options_.retain_age_sec > 0.0) {
      if (segments_.front().max_ts < last_ts_ - options_.retain_age_sec) {
        return true;
      }
    }
    return false;
  };
  while (over_budget()) {
    const SegmentInfo& victim = segments_.front();
    // Best-effort: a failed unlink leaves the file for the next pass.
    if (::unlink(victim.path.c_str()) != 0 && errno != ENOENT) break;
    segments_.erase(segments_.begin());
    ++retention_deletes_;
    ++retention_generation_;
    metrics.GetCounter("store.retention_deletes")->Increment();
  }
}

void TenantStore::SetRetention(uint64_t retain_bytes, double retain_age_sec) {
  std::unique_lock lock(mu_);
  options_.retain_bytes = retain_bytes;
  options_.retain_age_sec = retain_age_sec;
}

Status TenantStore::AppendRange(const tsdata::Dataset& src, double t0,
                                double t1, tsdata::Dataset* dst) const {
  std::vector<tsdata::Cell> cells(src.num_attributes());
  for (size_t row : src.RowsInTimeRange(t0, t1)) {
    for (size_t i = 0; i < src.num_attributes(); ++i) {
      const tsdata::Column& column = src.column(i);
      if (column.kind() == tsdata::AttributeKind::kNumeric) {
        cells[i] = column.numeric(row);
      } else {
        cells[i] = column.CategoryName(column.code(row));
      }
    }
    DBSHERLOCK_RETURN_NOT_OK(
        dst->AppendRowUnchecked(src.timestamp(row), cells));
  }
  return Status::OK();
}

namespace {

/// An AttributeBound resolved to a schema index.
struct ResolvedBound {
  size_t attr = 0;
  double lo = 0.0;
  double hi = 0.0;
};

Status ResolveBounds(const tsdata::Schema& schema,
                     const std::vector<AttributeBound>& bounds,
                     std::vector<ResolvedBound>* out) {
  out->clear();
  out->reserve(bounds.size());
  for (const AttributeBound& b : bounds) {
    auto idx = schema.IndexOf(b.attribute);
    if (!idx.ok()) {
      return Status::InvalidArgument("scan bound on unknown attribute '" +
                                     b.attribute + "'");
    }
    if (schema.attribute(*idx).kind == tsdata::AttributeKind::kCategorical) {
      return Status::InvalidArgument(
          "scan bound on categorical attribute '" + b.attribute + "'");
    }
    if (std::isnan(b.lo) || std::isnan(b.hi)) {
      return Status::InvalidArgument("scan bound on '" + b.attribute +
                                     "' has NaN limit");
    }
    out->push_back({*idx, b.lo, b.hi});
  }
  return Status::OK();
}

/// Copies the rows of `src` inside [t0, t1) that satisfy every bound
/// (NaN never matches) into a fresh dataset.
Result<tsdata::Dataset> FilterChunk(const tsdata::Dataset& src, double t0,
                                    double t1,
                                    const std::vector<ResolvedBound>& bounds) {
  tsdata::Dataset dst(src.schema());
  std::vector<tsdata::Cell> cells(src.num_attributes());
  for (size_t row : src.RowsInTimeRange(t0, t1)) {
    bool pass = true;
    for (const ResolvedBound& b : bounds) {
      double v = src.column(b.attr).numeric(row);
      if (!(v >= b.lo && v <= b.hi)) {  // NaN fails both comparisons
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    for (size_t i = 0; i < src.num_attributes(); ++i) {
      const tsdata::Column& column = src.column(i);
      if (column.kind() == tsdata::AttributeKind::kNumeric) {
        cells[i] = column.numeric(row);
      } else {
        cells[i] = column.CategoryName(column.code(row));
      }
    }
    DBSHERLOCK_RETURN_NOT_OK(
        dst.AppendRowUnchecked(src.timestamp(row), cells));
  }
  return dst;
}

/// Per-segment result of the parallel decode stage.
struct SegmentChunk {
  Status status;
  tsdata::Dataset chunk;
  bool not_found = false;
};

SegmentChunk DecodeAndFilter(const SegmentInfo& seg, double t0, double t1,
                             const std::vector<ResolvedBound>& bounds) {
  SegmentChunk out;
  std::string blob;
  out.status = ReadFile(seg.path, &blob);
  if (!out.status.ok()) {
    out.not_found = out.status.code() == common::StatusCode::kNotFound;
    return out;
  }
  auto decoded = DecodeSegment(blob);
  if (!decoded.ok()) {
    out.status = Status::IoError("corrupt sealed segment " + seg.path +
                                 ": " + decoded.status().message());
    return out;
  }
  auto filtered = FilterChunk(*decoded, t0, t1, bounds);
  if (!filtered.ok()) {
    out.status = filtered.status();
    return out;
  }
  out.chunk = std::move(*filtered);
  return out;
}

}  // namespace

Result<tsdata::Dataset> TenantStore::Scan(double t0, double t1) const {
  ScanOptions options;
  options.t0 = t0;
  options.t1 = t1;
  ScanStats stats;
  return ScanWithOptions(options, &stats);
}

Result<tsdata::Dataset> TenantStore::ScanWithOptions(
    const ScanOptions& options, ScanStats* stats) const {
  tsdata::Dataset out(options_.schema);
  ScanVisitor visitor;
  visitor.on_chunk = [&](const tsdata::Dataset& chunk) {
    // Chunks arrive already filtered; stitch them verbatim.
    return AppendRange(chunk, -std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity(), &out);
  };
  visitor.on_reset = [&] { out = tsdata::Dataset(options_.schema); };
  DBSHERLOCK_RETURN_NOT_OK(ScanVisit(options, visitor, stats));
  return out;
}

Status TenantStore::ScanVisit(const ScanOptions& options,
                              const ScanVisitor& visitor,
                              ScanStats* stats) const {
  TRACE_SPAN("store.scan");
  auto& metrics = common::MetricsRegistry::Global();
  common::ScopedLatency timer(metrics.GetHistogram("store.scan_us"));
  if (!(options.t0 < options.t1)) {
    return Status::InvalidArgument("scan range must satisfy t0 < t1");
  }
  // A scan that raced retention restarts from a fresh snapshot; the
  // attempt cap turns a pathological churn loop into an honest error.
  constexpr int kMaxAttempts = 3;
  ScanStats local;
  Status status;
  for (int attempt = 0;; ++attempt) {
    local = ScanStats{};
    local.retries = static_cast<size_t>(attempt);
    bool raced = false;
    status = ScanVisitOnce(options, visitor, &local, &raced);
    if (status.ok() || !raced) break;
    scan_retries_.fetch_add(1, std::memory_order_relaxed);
    metrics.GetCounter("store.scan_retention_retries")->Increment();
    if (attempt + 1 >= kMaxAttempts) {
      status = Status::IoError(
          "scan raced retention " + std::to_string(kMaxAttempts) +
          " times; giving up: " + status.message());
      break;
    }
    if (visitor.on_reset) visitor.on_reset();
  }
  scans_total_.fetch_add(1, std::memory_order_relaxed);
  scan_segments_skipped_.fetch_add(
      local.segments_skipped_time + local.segments_skipped_zone,
      std::memory_order_relaxed);
  scan_segments_decoded_.fetch_add(local.segments_decoded,
                                   std::memory_order_relaxed);
  metrics.GetCounter("store.scan_segments_skipped")
      ->Increment(local.segments_skipped_time +
                    local.segments_skipped_zone);
  metrics.GetCounter("store.scan_segments_decoded")
      ->Increment(local.segments_decoded);
  if (stats != nullptr) *stats = local;
  return status;
}

Status TenantStore::ScanVisitOnce(const ScanOptions& options,
                                  const ScanVisitor& visitor,
                                  ScanStats* stats,
                                  bool* retention_raced) const {
  *retention_raced = false;
  std::vector<ResolvedBound> bounds;
  DBSHERLOCK_RETURN_NOT_OK(
      ResolveBounds(options_.schema, options.bounds, &bounds));

  // Snapshot under the shared lock: manifest copy, active-tail copy,
  // retention generation. No file I/O or decompression happens while the
  // lock is held, so a long retro-scan never stalls Append/Seal.
  std::vector<SegmentInfo> snapshot;
  tsdata::Dataset active_copy;
  uint64_t generation = 0;
  {
    std::shared_lock lock(mu_);
    snapshot = segments_;
    active_copy = active_;
    generation = retention_generation_;
  }
  stats->segments_total = snapshot.size();

  // Plan: prune segments that provably cannot contribute. The time test
  // compares [min_ts, max_ts] against the half-open [t0, t1); the zone
  // test consults the per-attribute min/max written at seal time.
  std::vector<size_t> plan;
  plan.reserve(snapshot.size());
  for (size_t s = 0; s < snapshot.size(); ++s) {
    const SegmentInfo& seg = snapshot[s];
    if (options.prune) {
      if (seg.max_ts < options.t0 || seg.min_ts >= options.t1) {
        ++stats->segments_skipped_time;
        continue;
      }
      bool zone_skip = false;
      if (!bounds.empty() &&
          seg.zones.attrs.size() == options_.schema.num_attributes()) {
        for (const ResolvedBound& b : bounds) {
          if (seg.zones.attrs[b.attr].CannotMatch(b.lo, b.hi)) {
            zone_skip = true;
            break;
          }
        }
      }
      if (zone_skip) {
        ++stats->segments_skipped_zone;
        continue;
      }
    }
    plan.push_back(s);
  }

  // Deliver a filtered chunk, honouring the row cap. After the cap is
  // reached the scan keeps decoding only until one more matching row
  // proves truncation — so `truncated` is exact, never a guess.
  uint64_t emitted = 0;
  bool done = false;
  auto deliver = [&](const tsdata::Dataset& chunk) -> Status {
    if (chunk.num_rows() == 0) return Status::OK();
    if (options.max_rows > 0) {
      if (emitted >= options.max_rows) {
        stats->truncated = true;
        done = true;
        return Status::OK();
      }
      if (emitted + chunk.num_rows() > options.max_rows) {
        size_t take = static_cast<size_t>(options.max_rows - emitted);
        tsdata::Dataset head = chunk.Slice(0, take);
        emitted += take;
        stats->truncated = true;
        done = true;
        stats->rows_out = emitted;
        return visitor.on_chunk(head);
      }
    }
    emitted += chunk.num_rows();
    stats->rows_out = emitted;
    return visitor.on_chunk(chunk);
  };

  // Decode planned segments in ordered batches outside the lock. Batches
  // bound peak memory (a handful of inflated segments per lane) and let
  // the row cap stop the scan early; ordered stitching keeps the output
  // bit-identical across parallelism settings.
  size_t lanes = options.parallelism > 0
                     ? options.parallelism
                     : std::max<size_t>(1, std::thread::hardware_concurrency());
  size_t batch = std::max<size_t>(1, 4 * lanes);
  for (size_t base = 0; base < plan.size() && !done; base += batch) {
    size_t count = std::min(batch, plan.size() - base);
    std::vector<SegmentChunk> results = common::ParallelMap(
        count,
        [&](size_t i) {
          return DecodeAndFilter(snapshot[plan[base + i]], options.t0,
                                 options.t1, bounds);
        },
        options.parallelism);
    stats->segments_decoded += count;
    for (SegmentChunk& r : results) {
      if (r.not_found) {
        std::shared_lock lock(mu_);
        if (generation != retention_generation_) {
          *retention_raced = true;
          return r.status;
        }
        return Status::IoError("sealed segment vanished outside retention: " +
                               r.status.message());
      }
      if (!r.status.ok()) return r.status;
      DBSHERLOCK_RETURN_NOT_OK(deliver(r.chunk));
      if (done) break;
    }
  }
  if (!done) {
    auto tail = FilterChunk(active_copy, options.t0, options.t1, bounds);
    if (!tail.ok()) return tail.status();
    DBSHERLOCK_RETURN_NOT_OK(deliver(*tail));
  }
  return Status::OK();
}

Result<tsdata::Dataset> TenantStore::ScanTail(size_t max_rows) const {
  TRACE_SPAN("store.scan");
  tsdata::Dataset out;
  constexpr int kMaxAttempts = 3;
  for (int attempt = 0;; ++attempt) {
    out = tsdata::Dataset(options_.schema);
    // Snapshot which pieces contribute under the shared lock; read and
    // decode them afterwards, same discipline as ScanVisitOnce.
    std::vector<std::pair<SegmentInfo, size_t>> pieces;  // (seg, take)
    tsdata::Dataset active_copy;
    size_t active_take = 0;
    uint64_t generation = 0;
    {
      std::shared_lock lock(mu_);
      generation = retention_generation_;
      if (max_rows == 0) return out;
      size_t needed = max_rows;
      active_take = std::min(active_.num_rows(), needed);
      needed -= active_take;
      if (active_take > 0) {
        active_copy = active_.Slice(active_.num_rows() - active_take,
                                    active_.num_rows());
      }
      for (auto it = segments_.rbegin();
           it != segments_.rend() && needed > 0; ++it) {
        size_t take = std::min<size_t>(it->rows, needed);
        pieces.emplace_back(*it, take);
        needed -= take;
      }
      std::reverse(pieces.begin(), pieces.end());
    }

    std::vector<SegmentChunk> results = common::ParallelMap(
        pieces.size(), [&](size_t i) {
          SegmentChunk out_chunk;
          std::string blob;
          out_chunk.status = ReadFile(pieces[i].first.path, &blob);
          if (!out_chunk.status.ok()) {
            out_chunk.not_found =
                out_chunk.status.code() == common::StatusCode::kNotFound;
            return out_chunk;
          }
          auto decoded = DecodeSegment(blob);
          if (!decoded.ok()) {
            out_chunk.status =
                Status::IoError("corrupt sealed segment " +
                                pieces[i].first.path + ": " +
                                decoded.status().message());
            return out_chunk;
          }
          size_t take = pieces[i].second;
          out_chunk.chunk =
              decoded->Slice(decoded->num_rows() - take, decoded->num_rows());
          return out_chunk;
        });

    bool raced = false;
    Status status;
    for (SegmentChunk& r : results) {
      if (r.not_found) {
        std::shared_lock lock(mu_);
        if (generation != retention_generation_ &&
            attempt + 1 < kMaxAttempts) {
          raced = true;
          scan_retries_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        status = Status::IoError("sealed segment vanished mid-scan: " +
                                 r.status.message());
        break;
      }
      if (!r.status.ok()) {
        status = r.status;
        break;
      }
      status = AppendRange(r.chunk, -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::infinity(), &out);
      if (!status.ok()) break;
    }
    if (raced) continue;
    DBSHERLOCK_RETURN_NOT_OK(status);
    DBSHERLOCK_RETURN_NOT_OK(AppendRange(
        active_copy, -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity(), &out));
    return out;
  }
}

Result<double> TenantStore::ResolveQuantile(const std::string& attribute,
                                            double q,
                                            QuantileStats* stats) const {
  TRACE_SPAN("store.quantile");
  auto& metrics = common::MetricsRegistry::Global();
  common::ScopedLatency timer(metrics.GetHistogram("store.quantile_us"));
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("quantile fraction must be in [0, 1]");
  }
  auto idx = options_.schema.IndexOf(attribute);
  if (!idx.ok()) {
    return Status::NotFound("quantile on unknown attribute '" + attribute +
                            "'");
  }
  if (options_.schema.attribute(*idx).kind ==
      tsdata::AttributeKind::kCategorical) {
    return Status::InvalidArgument("quantile on categorical attribute '" +
                                   attribute + "'");
  }
  const size_t attr = *idx;

  constexpr int kMaxAttempts = 3;
  for (int attempt = 0;; ++attempt) {
    // Snapshot under the shared lock; all file I/O happens outside it,
    // same discipline as ScanVisitOnce.
    std::vector<SegmentInfo> snapshot;
    tsdata::Dataset active_copy;
    uint64_t generation = 0;
    {
      std::shared_lock lock(mu_);
      snapshot = segments_;
      active_copy = active_;
      generation = retention_generation_;
    }

    QuantileStats local;
    local.segments_total = snapshot.size();

    // The active tail is already in memory: its values are exact.
    std::vector<double> active_vals;
    if (active_copy.num_rows() > 0) {
      for (double v : active_copy.column(attr).numeric_values()) {
        if (!std::isnan(v)) active_vals.push_back(v);
      }
    }

    // Zone-map census. A segment without a usable zone map (should not
    // happen after the v2 upgrade, but stay safe) is treated as spanning
    // everything, which only forces it into the decode set.
    struct SegCensus {
      size_t idx = 0;
      double min = -std::numeric_limits<double>::infinity();
      double max = std::numeric_limits<double>::infinity();
      uint64_t count = 0;
    };
    std::vector<SegCensus> census;
    census.reserve(snapshot.size());
    uint64_t total = active_vals.size();
    bool counts_known = true;
    for (size_t s = 0; s < snapshot.size(); ++s) {
      SegCensus c;
      c.idx = s;
      if (snapshot[s].zones.attrs.size() ==
          options_.schema.num_attributes()) {
        const AttrZone& zone = snapshot[s].zones.attrs[attr];
        c.min = zone.min;
        c.max = zone.max;
        c.count = zone.non_nan_count;
      } else {
        counts_known = false;
      }
      census.push_back(c);
    }

    // Without trustworthy counts the bracket cannot be derived; fall back
    // to decoding everything (the census entries already span everything).
    if (counts_known) {
      for (const SegCensus& c : census) total += c.count;
    }
    if (counts_known && total == 0) {
      return Status::FailedPrecondition("no non-NaN values stored for '" +
                                        attribute + "'");
    }

    // Bracket the k-th order statistic. LB(t) counts values certainly
    // <= t (segments whose zone max <= t, plus exact active values);
    // UB(t) counts values possibly <= t (zone min <= t). The k-th value
    // lies in (lo, hi] where lo is the largest candidate with UB < k and
    // hi the smallest with LB >= k.
    uint64_t k = 0;
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    if (counts_known) {
      k = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
      if (k < 1) k = 1;
      if (k > total) k = total;
      std::vector<double> candidates;
      candidates.reserve(2 * census.size() + active_vals.size());
      for (const SegCensus& c : census) {
        if (c.count == 0) continue;
        if (!std::isnan(c.min)) candidates.push_back(c.min);
        if (!std::isnan(c.max)) candidates.push_back(c.max);
      }
      candidates.insert(candidates.end(), active_vals.begin(),
                        active_vals.end());
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      for (double t : candidates) {
        uint64_t lb = 0;
        uint64_t ub = 0;
        for (const SegCensus& c : census) {
          if (c.max <= t) lb += c.count;
          if (c.min <= t) ub += c.count;
        }
        for (double a : active_vals) {
          if (a <= t) {
            ++lb;
            ++ub;
          }
        }
        if (ub < k) lo = t;
        if (lb >= k && t < hi) hi = t;
      }
    }

    // Decode only segments straddling (lo, hi]; fully-below segments
    // contribute their counts, fully-above ones nothing at all.
    std::vector<size_t> decode_plan;
    uint64_t known_below = 0;
    for (const SegCensus& c : census) {
      if (counts_known && c.count == 0) continue;
      if (c.max <= lo) {
        known_below += c.count;
      } else if (c.min <= hi) {
        decode_plan.push_back(c.idx);
      }
    }

    std::vector<SegmentChunk> results = common::ParallelMap(
        decode_plan.size(), [&](size_t i) {
          SegmentChunk out;
          std::string blob;
          out.status = ReadFile(snapshot[decode_plan[i]].path, &blob);
          if (!out.status.ok()) {
            out.not_found =
                out.status.code() == common::StatusCode::kNotFound;
            return out;
          }
          auto decoded = DecodeSegment(blob);
          if (!decoded.ok()) {
            out.status = Status::IoError(
                "corrupt sealed segment " + snapshot[decode_plan[i]].path +
                ": " + decoded.status().message());
            return out;
          }
          out.chunk = std::move(*decoded);
          return out;
        });
    local.segments_decoded = decode_plan.size();

    bool raced = false;
    Status status;
    std::vector<double> pool;
    for (SegmentChunk& r : results) {
      if (r.not_found) {
        std::shared_lock lock(mu_);
        if (generation != retention_generation_ &&
            attempt + 1 < kMaxAttempts) {
          raced = true;
          scan_retries_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        status = Status::IoError("sealed segment vanished mid-quantile: " +
                                 r.status.message());
        break;
      }
      if (!r.status.ok()) {
        status = r.status;
        break;
      }
      for (double v : r.chunk.column(attr).numeric_values()) {
        if (std::isnan(v)) continue;
        if (counts_known && v <= lo) {
          ++known_below;
        } else {
          pool.push_back(v);
        }
      }
    }
    if (raced) continue;
    DBSHERLOCK_RETURN_NOT_OK(status);
    for (double a : active_vals) {
      if (counts_known && a <= lo) {
        ++known_below;
      } else {
        pool.push_back(a);
      }
    }
    if (!counts_known) {
      // Legacy path: everything was decoded; rank over the pool directly.
      total = pool.size();
      if (total == 0) {
        return Status::FailedPrecondition("no non-NaN values stored for '" +
                                          attribute + "'");
      }
      k = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
      if (k < 1) k = 1;
      if (k > total) k = total;
      known_below = 0;
    }
    local.values_total = total;
    local.rank = k;
    if (k <= known_below || pool.size() < k - known_below) {
      return Status::Internal("quantile bracket lost the order statistic ('" +
                              attribute + "', rank " + std::to_string(k) +
                              ")");
    }
    size_t target = static_cast<size_t>(k - known_below) - 1;
    std::nth_element(pool.begin(), pool.begin() + target, pool.end());
    metrics.GetCounter("store.quantile_segments_decoded")
        ->Increment(local.segments_decoded);
    if (stats != nullptr) *stats = local;
    return pool[target];
  }
}

size_t TenantStore::num_segments() const {
  std::shared_lock lock(mu_);
  return segments_.size();
}

uint64_t TenantStore::sealed_rows() const {
  std::shared_lock lock(mu_);
  uint64_t rows = 0;
  for (const SegmentInfo& seg : segments_) rows += seg.rows;
  return rows;
}

uint64_t TenantStore::sealed_bytes() const {
  std::shared_lock lock(mu_);
  uint64_t bytes = 0;
  for (const SegmentInfo& seg : segments_) bytes += seg.bytes;
  return bytes;
}

size_t TenantStore::active_rows() const {
  std::shared_lock lock(mu_);
  return active_.num_rows();
}

uint64_t TenantStore::retention_deletes() const {
  std::shared_lock lock(mu_);
  return retention_deletes_;
}

double TenantStore::compression_ratio() const {
  std::shared_lock lock(mu_);
  if (raw_total_ == 0) return 0.0;
  return static_cast<double>(compressed_total_) /
         static_cast<double>(raw_total_);
}

std::vector<SegmentInfo> TenantStore::Manifest() const {
  std::shared_lock lock(mu_);
  return segments_;
}

std::optional<double> TenantStore::durable_last_ts() const {
  std::shared_lock lock(mu_);
  if (segments_.empty()) return std::nullopt;
  return segments_.back().max_ts;
}

}  // namespace dbsherlock::store
