#include "store/tenant_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "common/faultenv.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "tsdata/dataset_io.h"

namespace dbsherlock::store {

namespace {

using common::Result;
using common::Status;

constexpr char kSegmentPrefix[] = "seg-";
constexpr char kSegmentSuffix[] = ".dbs";

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = common::faultenv::Write("seg.write", fd, data + done,
                                        n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Errno("open", path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Errno("read", path);
  *out = buffer.str();
  return Status::OK();
}

/// Parses the sequence number out of "seg-%08llu.dbs"; nullopt for
/// foreign files, which recovery leaves untouched.
std::optional<uint64_t> ParseSegmentSeq(const std::string& name) {
  size_t prefix = sizeof(kSegmentPrefix) - 1;
  size_t suffix = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix + suffix) return std::nullopt;
  if (name.compare(0, prefix, kSegmentPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return std::nullopt;
  }
  uint64_t seq = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

std::string SegmentPath(const std::string& dir, uint64_t seq) {
  return dir + "/" + common::StrFormat("%s%08llu%s", kSegmentPrefix,
                                       static_cast<unsigned long long>(seq),
                                       kSegmentSuffix);
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", dir);
  Status status;
  if (common::faultenv::Fsync("seg.dirsync", fd) != 0) {
    status = Errno("fsync dir", dir);
  }
  ::close(fd);
  return status;
}

}  // namespace

TenantStore::TenantStore(Options options) : options_(std::move(options)) {}

TenantStore::~TenantStore() = default;

Result<std::unique_ptr<TenantStore>> TenantStore::Open(Options options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("TenantStore needs a directory");
  }
  if (options.seal_rows == 0) {
    return Status::InvalidArgument("seal_rows must be positive");
  }
  auto store = std::unique_ptr<TenantStore>(new TenantStore(options));
  if (::mkdir(store->options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir", store->options_.dir);
  }
  {
    std::unique_lock lock(store->mu_);
    DBSHERLOCK_RETURN_NOT_OK(store->RecoverLocked());
  }
  return store;
}

Status TenantStore::RecoverLocked() {
  TRACE_SPAN("store.recover");
  auto& metrics = common::MetricsRegistry::Global();

  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) return Errno("opendir", options_.dir);
  std::vector<std::pair<uint64_t, std::string>> found;
  for (dirent* entry = ::readdir(dir); entry != nullptr;
       entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (auto seq = ParseSegmentSeq(name)) found.emplace_back(*seq, name);
  }
  ::closedir(dir);
  std::sort(found.begin(), found.end());

  bool schema_adopted = options_.schema.num_attributes() > 0;
  for (const auto& [seq, name] : found) {
    std::string path = options_.dir + "/" + name;
    std::string blob;
    DBSHERLOCK_RETURN_NOT_OK(ReadFile(path, &blob));
    // A full decode (not just the meta block) so a bit flip anywhere in
    // the file is caught now, not mid-Scan.
    auto decoded = DecodeSegment(blob);
    if (!decoded.ok()) {
      // A corrupt segment is the torn tail of a crash mid-seal: drop it
      // here so every later open sees a clean directory (the tail is
      // truncated exactly once).
      if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
      ++recovery_.segments_dropped;
      recovery_.bytes_dropped += blob.size();
      metrics.GetCounter("store.recovery_dropped_segments")->Increment();
      continue;
    }
    if (!schema_adopted) {
      options_.schema = decoded->schema();
      schema_adopted = true;
    } else if (!(decoded->schema() == options_.schema)) {
      return Status::FailedPrecondition(common::StrFormat(
          "segment %s schema does not match the tenant schema (a tenant "
          "cannot change schema mid-history)",
          path.c_str()));
    }
    SegmentInfo info;
    info.seq = seq;
    info.path = path;
    info.rows = decoded->num_rows();
    info.min_ts = decoded->num_rows() > 0 ? decoded->timestamp(0) : 0.0;
    info.max_ts = decoded->num_rows() > 0
                      ? decoded->timestamp(decoded->num_rows() - 1)
                      : 0.0;
    info.bytes = blob.size();
    next_seq_ = std::max(next_seq_, seq + 1);
    if (info.rows > 0) {
      have_last_ts_ = true;
      last_ts_ = std::max(last_ts_, info.max_ts);
      segments_.push_back(std::move(info));
      ++recovery_.segments_recovered;
      recovery_.rows_recovered += decoded->num_rows();
    } else {
      // An empty segment carries no data; drop the file too.
      if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    }
  }
  active_ = tsdata::Dataset(options_.schema);
  return Status::OK();
}

double TenantStore::last_ts_locked() const {
  if (active_.num_rows() > 0) {
    return active_.timestamp(active_.num_rows() - 1);
  }
  return last_ts_;
}

Status TenantStore::Append(double timestamp,
                           const std::vector<tsdata::Cell>& cells) {
  std::unique_lock lock(mu_);
  if (have_last_ts_ && !(timestamp > last_ts_locked())) {
    return Status::InvalidArgument(common::StrFormat(
        "store: timestamp %.3f not after %.3f", timestamp,
        last_ts_locked()));
  }
  DBSHERLOCK_RETURN_NOT_OK(active_.AppendRow(timestamp, cells));
  have_last_ts_ = true;
  if (active_.num_rows() >= options_.seal_rows) {
    DBSHERLOCK_RETURN_NOT_OK(SealLocked());
  }
  return Status::OK();
}

Status TenantStore::Seal() {
  std::unique_lock lock(mu_);
  return SealLocked();
}

Status TenantStore::SealLocked() {
  if (active_.num_rows() == 0) return Status::OK();
  TRACE_SPAN("store.seal");
  auto& metrics = common::MetricsRegistry::Global();
  common::ScopedLatency timer(metrics.GetHistogram("store.seal_us"));

  std::string blob = EncodeSegment(active_);
  // The honest baseline for the compression gauge: what these rows cost
  // as the CSV the rest of the repo exchanges telemetry in.
  size_t raw_bytes = tsdata::DatasetToCsv(active_).size();

  uint64_t seq = next_seq_++;
  std::string path = SegmentPath(options_.dir, seq);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", path);
  Status status = WriteAll(fd, blob.data(), blob.size(), path);
  if (status.ok() && options_.fsync_on_seal &&
      common::faultenv::Fsync("seg.fsync", fd) != 0) {
    status = Errno("fsync", path);
  }
  ::close(fd);
  if (!status.ok()) {
    // The rows stay in active_ and the next Append retries the seal under
    // a fresh seq; drop the partial file now so a restart that happens
    // before that retry doesn't have to (best-effort — recovery also
    // discards undecodable segments).
    (void)::unlink(path.c_str());
    metrics.GetCounter("store.seal_errors")->Increment();
    return status;
  }
  if (options_.fsync_on_seal) {
    DBSHERLOCK_RETURN_NOT_OK(FsyncDir(options_.dir));
  }

  SegmentInfo info;
  info.seq = seq;
  info.path = std::move(path);
  info.rows = active_.num_rows();
  info.min_ts = active_.timestamp(0);
  info.max_ts = active_.timestamp(active_.num_rows() - 1);
  info.bytes = blob.size();
  last_ts_ = info.max_ts;
  segments_.push_back(std::move(info));
  active_ = tsdata::Dataset(options_.schema);

  compressed_total_ += blob.size();
  raw_total_ += raw_bytes;
  metrics.GetCounter("store.segments_sealed")->Increment();
  if (raw_total_ > 0) {
    metrics.GetGauge("store.compression_ratio")
        ->Set(static_cast<double>(compressed_total_) /
              static_cast<double>(raw_total_));
  }
  EnforceRetentionLocked();
  return Status::OK();
}

void TenantStore::EnforceRetentionLocked() {
  auto& metrics = common::MetricsRegistry::Global();
  auto over_budget = [&] {
    if (segments_.size() <= 1) return false;  // always keep the newest
    if (options_.retain_bytes > 0) {
      uint64_t total = 0;
      for (const SegmentInfo& seg : segments_) total += seg.bytes;
      if (total > options_.retain_bytes) return true;
    }
    if (options_.retain_age_sec > 0.0) {
      if (segments_.front().max_ts < last_ts_ - options_.retain_age_sec) {
        return true;
      }
    }
    return false;
  };
  while (over_budget()) {
    const SegmentInfo& victim = segments_.front();
    // Best-effort: a failed unlink leaves the file for the next pass.
    if (::unlink(victim.path.c_str()) != 0 && errno != ENOENT) break;
    segments_.erase(segments_.begin());
    ++retention_deletes_;
    metrics.GetCounter("store.retention_deletes")->Increment();
  }
}

void TenantStore::SetRetention(uint64_t retain_bytes, double retain_age_sec) {
  std::unique_lock lock(mu_);
  options_.retain_bytes = retain_bytes;
  options_.retain_age_sec = retain_age_sec;
}

Status TenantStore::AppendRange(const tsdata::Dataset& src, double t0,
                                double t1, tsdata::Dataset* dst) const {
  std::vector<tsdata::Cell> cells(src.num_attributes());
  for (size_t row : src.RowsInTimeRange(t0, t1)) {
    for (size_t i = 0; i < src.num_attributes(); ++i) {
      const tsdata::Column& column = src.column(i);
      if (column.kind() == tsdata::AttributeKind::kNumeric) {
        cells[i] = column.numeric(row);
      } else {
        cells[i] = column.CategoryName(column.code(row));
      }
    }
    DBSHERLOCK_RETURN_NOT_OK(
        dst->AppendRowUnchecked(src.timestamp(row), cells));
  }
  return Status::OK();
}

Result<tsdata::Dataset> TenantStore::Scan(double t0, double t1) const {
  TRACE_SPAN("store.scan");
  auto& metrics = common::MetricsRegistry::Global();
  common::ScopedLatency timer(metrics.GetHistogram("store.scan_us"));
  if (!(t0 < t1)) {
    return Status::InvalidArgument("scan range must satisfy t0 < t1");
  }
  std::shared_lock lock(mu_);
  tsdata::Dataset out(options_.schema);
  for (const SegmentInfo& seg : segments_) {
    // Manifest pruning: [min_ts, max_ts] vs the half-open [t0, t1).
    if (seg.max_ts < t0 || seg.min_ts >= t1) continue;
    std::string blob;
    DBSHERLOCK_RETURN_NOT_OK(ReadFile(seg.path, &blob));
    auto decoded = DecodeSegment(blob);
    if (!decoded.ok()) {
      return Status::IoError("corrupt sealed segment " + seg.path + ": " +
                             decoded.status().message());
    }
    DBSHERLOCK_RETURN_NOT_OK(AppendRange(*decoded, t0, t1, &out));
  }
  DBSHERLOCK_RETURN_NOT_OK(AppendRange(active_, t0, t1, &out));
  return out;
}

Result<tsdata::Dataset> TenantStore::ScanTail(size_t max_rows) const {
  TRACE_SPAN("store.scan");
  std::shared_lock lock(mu_);
  tsdata::Dataset out(options_.schema);
  if (max_rows == 0) return out;

  // Walk backwards to find which pieces contribute, then stitch forward.
  size_t needed = max_rows;
  size_t active_take = std::min(active_.num_rows(), needed);
  needed -= active_take;
  std::vector<std::pair<const SegmentInfo*, size_t>> pieces;  // (seg, take)
  for (auto it = segments_.rbegin(); it != segments_.rend() && needed > 0;
       ++it) {
    size_t take = std::min<size_t>(it->rows, needed);
    pieces.emplace_back(&*it, take);
    needed -= take;
  }
  std::reverse(pieces.begin(), pieces.end());
  for (const auto& [seg, take] : pieces) {
    std::string blob;
    DBSHERLOCK_RETURN_NOT_OK(ReadFile(seg->path, &blob));
    auto decoded = DecodeSegment(blob);
    if (!decoded.ok()) {
      return Status::IoError("corrupt sealed segment " + seg->path + ": " +
                             decoded.status().message());
    }
    tsdata::Dataset slice =
        decoded->Slice(decoded->num_rows() - take, decoded->num_rows());
    DBSHERLOCK_RETURN_NOT_OK(AppendRange(
        slice, -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity(), &out));
  }
  if (active_take > 0) {
    tsdata::Dataset slice =
        active_.Slice(active_.num_rows() - active_take, active_.num_rows());
    DBSHERLOCK_RETURN_NOT_OK(AppendRange(
        slice, -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity(), &out));
  }
  return out;
}

size_t TenantStore::num_segments() const {
  std::shared_lock lock(mu_);
  return segments_.size();
}

uint64_t TenantStore::sealed_rows() const {
  std::shared_lock lock(mu_);
  uint64_t rows = 0;
  for (const SegmentInfo& seg : segments_) rows += seg.rows;
  return rows;
}

uint64_t TenantStore::sealed_bytes() const {
  std::shared_lock lock(mu_);
  uint64_t bytes = 0;
  for (const SegmentInfo& seg : segments_) bytes += seg.bytes;
  return bytes;
}

size_t TenantStore::active_rows() const {
  std::shared_lock lock(mu_);
  return active_.num_rows();
}

uint64_t TenantStore::retention_deletes() const {
  std::shared_lock lock(mu_);
  return retention_deletes_;
}

double TenantStore::compression_ratio() const {
  std::shared_lock lock(mu_);
  if (raw_total_ == 0) return 0.0;
  return static_cast<double>(compressed_total_) /
         static_cast<double>(raw_total_);
}

std::vector<SegmentInfo> TenantStore::Manifest() const {
  std::shared_lock lock(mu_);
  return segments_;
}

std::optional<double> TenantStore::durable_last_ts() const {
  std::shared_lock lock(mu_);
  if (segments_.empty()) return std::nullopt;
  return segments_.back().max_ts;
}

}  // namespace dbsherlock::store
