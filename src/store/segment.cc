#include "store/segment.h"

#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/strings.h"

namespace dbsherlock::store {

namespace {

using common::Result;
using common::Status;

// --- Segment framing (DESIGN.md §11, §14) -------------------------------
//
//   "DBSG" | u32 version | block* | [zone block | u32 zone_len | "DBSZ"]
//   block := u32 payload_len | u32 crc32(payload) | payload
//
// Block order is fixed: meta, timestamps, then one block per column.
// Version 2 appends a CRC-framed zone-map block after the last column,
// followed by an 8-byte trailer (u32 framed zone-block length + "DBSZ"
// magic) so the footer is locatable from the end of the file without
// walking the column blocks. Version 1 blobs end at the last column.

constexpr char kMagic[4] = {'D', 'B', 'S', 'G'};
constexpr char kZoneMagic[4] = {'D', 'B', 'S', 'Z'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
constexpr size_t kHeaderSize = 8;      // magic + version
constexpr size_t kBlockHeaderSize = 8; // len + crc
constexpr size_t kTrailerSize = 8;     // u32 zone_len + "DBSZ"
/// One block holds one column of one segment (segments seal at a few
/// thousand rows); anything larger is a torn or hostile header.
constexpr uint32_t kMaxBlock = 64u << 20;
constexpr uint32_t kMaxAttributes = 4096;
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint64_t kMaxRows = 1u << 28;

/// Reflected CRC-32 (poly 0xEDB88320), matching the service WAL framing.
uint32_t Crc32(const uint8_t* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = ~0u;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

/// LEB128 unsigned varint, used for categorical dictionary codes.
void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Bounds-checked little-endian reader over one block payload.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  Status ReadF64(double* out) {
    uint64_t bits = 0;
    DBSHERLOCK_RETURN_NOT_OK(ReadU64(&bits));
    *out = std::bit_cast<double>(bits);
    return Status::OK();
  }

  Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return Truncated("u8");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadBytes(size_t n, std::string_view* out) {
    if (remaining() < n) return Truncated("bytes");
    *out = data_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadVarint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (remaining() < 1) return Truncated("varint");
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *out = v;
        return Status::OK();
      }
    }
    return Status::ParseError("segment: varint overruns 64 bits");
  }

 private:
  static Status Truncated(const char* what) {
    return Status::ParseError(std::string("segment: truncated ") + what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// --- Bit-level I/O -----------------------------------------------------

/// MSB-first bit appender backing the Gorilla streams.
class BitWriter {
 public:
  void WriteBit(bool bit) {
    if (used_ == 0) buffer_.push_back('\0');
    if (bit) {
      buffer_.back() = static_cast<char>(
          static_cast<uint8_t>(buffer_.back()) | (0x80u >> used_));
    }
    used_ = (used_ + 1) % 8;
  }

  /// Writes the low `n` bits of `v`, most significant first.
  void WriteBits(uint64_t v, int n) {
    for (int i = n - 1; i >= 0; --i) WriteBit((v >> i) & 1u);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
  int used_ = 0;  // bits used in the last byte (0 = byte boundary)
};

/// MSB-first bounds-checked bit reader.
class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  Status ReadBit(bool* out) {
    if (byte_ >= data_.size()) {
      return Status::ParseError("segment: bit stream exhausted");
    }
    *out = (static_cast<uint8_t>(data_[byte_]) >> (7 - bit_)) & 1u;
    if (++bit_ == 8) {
      bit_ = 0;
      ++byte_;
    }
    return Status::OK();
  }

  Status ReadBits(int n, uint64_t* out) {
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      bool bit = false;
      DBSHERLOCK_RETURN_NOT_OK(ReadBit(&bit));
      v = (v << 1) | (bit ? 1u : 0u);
    }
    *out = v;
    return Status::OK();
  }

 private:
  std::string_view data_;
  size_t byte_ = 0;
  int bit_ = 0;
};

// --- Gorilla XOR value stream ------------------------------------------
//
// First value: 64 raw bits. Each subsequent value is XORed (on its bit
// pattern) against the previous one:
//   '0'                          -> identical value
//   '1' '0' + meaningful bits    -> reuse the previous leading/trailing
//                                   zero window
//   '1' '1' + 5b leading + 6b (len-1) + meaningful bits
// Pure bit manipulation, so NaN payloads survive unchanged.

class XorEncoder {
 public:
  explicit XorEncoder(BitWriter* out) : out_(out) {}

  void Add(uint64_t bits) {
    if (first_) {
      first_ = false;
      out_->WriteBits(bits, 64);
      prev_ = bits;
      return;
    }
    uint64_t x = bits ^ prev_;
    prev_ = bits;
    if (x == 0) {
      out_->WriteBit(false);
      return;
    }
    out_->WriteBit(true);
    int leading = std::countl_zero(x);
    int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;  // 5-bit field
    if (window_valid_ && leading >= lead_ && trailing >= trail_) {
      out_->WriteBit(false);
      out_->WriteBits(x >> trail_, 64 - lead_ - trail_);
      return;
    }
    out_->WriteBit(true);
    int len = 64 - leading - trailing;
    out_->WriteBits(static_cast<uint64_t>(leading), 5);
    out_->WriteBits(static_cast<uint64_t>(len - 1), 6);
    out_->WriteBits(x >> trailing, len);
    lead_ = leading;
    trail_ = trailing;
    window_valid_ = true;
  }

 private:
  BitWriter* out_;
  bool first_ = true;
  uint64_t prev_ = 0;
  bool window_valid_ = false;
  int lead_ = 0;
  int trail_ = 0;
};

class XorDecoder {
 public:
  explicit XorDecoder(BitReader* in) : in_(in) {}

  Status Next(uint64_t* out) {
    if (first_) {
      first_ = false;
      DBSHERLOCK_RETURN_NOT_OK(in_->ReadBits(64, &prev_));
      *out = prev_;
      return Status::OK();
    }
    bool changed = false;
    DBSHERLOCK_RETURN_NOT_OK(in_->ReadBit(&changed));
    if (!changed) {
      *out = prev_;
      return Status::OK();
    }
    bool new_window = false;
    DBSHERLOCK_RETURN_NOT_OK(in_->ReadBit(&new_window));
    if (new_window) {
      uint64_t leading = 0, len_minus_1 = 0;
      DBSHERLOCK_RETURN_NOT_OK(in_->ReadBits(5, &leading));
      DBSHERLOCK_RETURN_NOT_OK(in_->ReadBits(6, &len_minus_1));
      int len = static_cast<int>(len_minus_1) + 1;
      if (static_cast<int>(leading) + len > 64) {
        return Status::ParseError("segment: xor window exceeds 64 bits");
      }
      lead_ = static_cast<int>(leading);
      trail_ = 64 - lead_ - len;
      window_valid_ = true;
    } else if (!window_valid_) {
      return Status::ParseError("segment: xor window reused before set");
    }
    uint64_t meaningful = 0;
    DBSHERLOCK_RETURN_NOT_OK(in_->ReadBits(64 - lead_ - trail_, &meaningful));
    prev_ ^= meaningful << trail_;
    *out = prev_;
    return Status::OK();
  }

 private:
  BitReader* in_;
  bool first_ = true;
  uint64_t prev_ = 0;
  bool window_valid_ = false;
  int lead_ = 0;
  int trail_ = 0;
};

// --- Timestamp stream ---------------------------------------------------
//
// Delta-of-delta over the timestamps' 64-bit patterns, all integer
// arithmetic so the decode reproduces every bit exactly. Row 0 is 64 raw
// bits; each later row encodes dd = delta_i - delta_{i-1} (two's
// complement) zigzagged into Gorilla's bucket scheme:
//   '0'               dd == 0 (constant collection interval)
//   '10'  +  7 bits   |zz| <  2^7
//   '110' + 12 bits   |zz| < 2^12
//   '1110'+ 20 bits   |zz| < 2^20
//   '11110'+32 bits   |zz| < 2^32
//   '11111'+64 bits   everything else

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

class TimestampEncoder {
 public:
  explicit TimestampEncoder(BitWriter* out) : out_(out) {}

  void Add(double ts) {
    uint64_t bits = std::bit_cast<uint64_t>(ts);
    if (row_ == 0) {
      out_->WriteBits(bits, 64);
    } else {
      int64_t delta = static_cast<int64_t>(bits - prev_bits_);
      int64_t dd = delta - prev_delta_;
      uint64_t zz = ZigZag(dd);
      if (dd == 0) {
        out_->WriteBit(false);
      } else if (zz < (1u << 7)) {
        out_->WriteBits(0b10, 2);
        out_->WriteBits(zz, 7);
      } else if (zz < (1u << 12)) {
        out_->WriteBits(0b110, 3);
        out_->WriteBits(zz, 12);
      } else if (zz < (1u << 20)) {
        out_->WriteBits(0b1110, 4);
        out_->WriteBits(zz, 20);
      } else if (zz < (1ull << 32)) {
        out_->WriteBits(0b11110, 5);
        out_->WriteBits(zz, 32);
      } else {
        out_->WriteBits(0b11111, 5);
        out_->WriteBits(zz, 64);
      }
      prev_delta_ = delta;
    }
    prev_bits_ = bits;
    ++row_;
  }

 private:
  BitWriter* out_;
  uint64_t row_ = 0;
  uint64_t prev_bits_ = 0;
  int64_t prev_delta_ = 0;
};

class TimestampDecoder {
 public:
  explicit TimestampDecoder(BitReader* in) : in_(in) {}

  Status Next(double* out) {
    if (row_ == 0) {
      DBSHERLOCK_RETURN_NOT_OK(in_->ReadBits(64, &prev_bits_));
    } else {
      int prefix = 0;
      while (prefix < 5) {
        bool bit = false;
        DBSHERLOCK_RETURN_NOT_OK(in_->ReadBit(&bit));
        if (!bit) break;
        ++prefix;
      }
      static constexpr int kWidth[] = {0, 7, 12, 20, 32, 64};
      int64_t dd = 0;
      if (prefix > 0) {
        uint64_t zz = 0;
        DBSHERLOCK_RETURN_NOT_OK(in_->ReadBits(kWidth[prefix], &zz));
        dd = UnZigZag(zz);
      }
      prev_delta_ += dd;
      prev_bits_ += static_cast<uint64_t>(prev_delta_);
    }
    ++row_;
    *out = std::bit_cast<double>(prev_bits_);
    return Status::OK();
  }

 private:
  BitReader* in_;
  uint64_t row_ = 0;
  uint64_t prev_bits_ = 0;
  int64_t prev_delta_ = 0;
};

// --- Block assembly -----------------------------------------------------

void AppendBlock(std::string* out, const std::string& payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, Crc32(reinterpret_cast<const uint8_t*>(payload.data()),
                       payload.size()));
  out->append(payload);
}

std::string EncodeMetaBlock(const tsdata::Dataset& data) {
  std::string payload;
  const tsdata::Schema& schema = data.schema();
  AppendU32(&payload, static_cast<uint32_t>(schema.num_attributes()));
  for (const tsdata::AttributeSpec& spec : schema.attributes()) {
    AppendU32(&payload, static_cast<uint32_t>(spec.name.size()));
    payload.append(spec.name);
    payload.push_back(spec.kind == tsdata::AttributeKind::kCategorical ? 1
                                                                       : 0);
  }
  AppendU64(&payload, data.num_rows());
  double min_ts = data.num_rows() > 0 ? data.timestamp(0) : 0.0;
  double max_ts =
      data.num_rows() > 0 ? data.timestamp(data.num_rows() - 1) : 0.0;
  AppendF64(&payload, min_ts);
  AppendF64(&payload, max_ts);
  return payload;
}

std::string EncodeTimestampBlock(const tsdata::Dataset& data) {
  BitWriter bits;
  TimestampEncoder encoder(&bits);
  for (double ts : data.timestamps()) encoder.Add(ts);
  return bits.buffer();
}

std::string EncodeColumnBlock(const tsdata::Column& column) {
  std::string payload;
  if (column.kind() == tsdata::AttributeKind::kNumeric) {
    BitWriter bits;
    XorEncoder encoder(&bits);
    for (double v : column.numeric_values()) {
      encoder.Add(std::bit_cast<uint64_t>(v));
    }
    payload = bits.buffer();
  } else {
    AppendU32(&payload, static_cast<uint32_t>(column.num_categories()));
    for (size_t c = 0; c < column.num_categories(); ++c) {
      const std::string& name = column.CategoryName(static_cast<int32_t>(c));
      AppendU32(&payload, static_cast<uint32_t>(name.size()));
      payload.append(name);
    }
    for (int32_t code : column.codes()) {
      AppendVarint(&payload, static_cast<uint64_t>(code));
    }
  }
  return payload;
}

Status DecodeMetaBlock(std::string_view payload, SegmentMeta* meta) {
  ByteReader reader(payload);
  uint32_t nattrs = 0;
  DBSHERLOCK_RETURN_NOT_OK(reader.ReadU32(&nattrs));
  if (nattrs > kMaxAttributes) {
    return Status::ParseError(
        common::StrFormat("segment: %u attributes exceeds cap", nattrs));
  }
  for (uint32_t i = 0; i < nattrs; ++i) {
    uint32_t name_len = 0;
    DBSHERLOCK_RETURN_NOT_OK(reader.ReadU32(&name_len));
    if (name_len > kMaxNameLen) {
      return Status::ParseError("segment: attribute name exceeds cap");
    }
    std::string_view name;
    DBSHERLOCK_RETURN_NOT_OK(reader.ReadBytes(name_len, &name));
    uint8_t kind = 0;
    DBSHERLOCK_RETURN_NOT_OK(reader.ReadU8(&kind));
    if (kind > 1) return Status::ParseError("segment: bad attribute kind");
    DBSHERLOCK_RETURN_NOT_OK(meta->schema.AddAttribute(
        {std::string(name), kind == 1 ? tsdata::AttributeKind::kCategorical
                                      : tsdata::AttributeKind::kNumeric}));
  }
  DBSHERLOCK_RETURN_NOT_OK(reader.ReadU64(&meta->rows));
  if (meta->rows > kMaxRows) {
    return Status::ParseError("segment: row count exceeds cap");
  }
  DBSHERLOCK_RETURN_NOT_OK(reader.ReadF64(&meta->min_ts));
  DBSHERLOCK_RETURN_NOT_OK(reader.ReadF64(&meta->max_ts));
  if (reader.remaining() != 0) {
    return Status::ParseError("segment: meta block has trailing bytes");
  }
  return Status::OK();
}

/// Pops the next CRC-framed block payload off `*bytes`.
Status NextBlock(std::string_view* bytes, std::string_view* payload) {
  ByteReader header(*bytes);
  uint32_t len = 0, crc = 0;
  DBSHERLOCK_RETURN_NOT_OK(header.ReadU32(&len));
  DBSHERLOCK_RETURN_NOT_OK(header.ReadU32(&crc));
  if (len > kMaxBlock) {
    return Status::ParseError("segment: block length exceeds cap");
  }
  if (bytes->size() < kBlockHeaderSize + len) {
    return Status::ParseError("segment: truncated block");
  }
  *payload = bytes->substr(kBlockHeaderSize, len);
  uint32_t actual = Crc32(reinterpret_cast<const uint8_t*>(payload->data()),
                          payload->size());
  if (actual != crc) {
    return Status::ParseError("segment: block checksum mismatch");
  }
  bytes->remove_prefix(kBlockHeaderSize + len);
  return Status::OK();
}

Status CheckHeader(std::string_view* bytes, uint32_t* version_out) {
  if (bytes->size() < kHeaderSize) {
    return Status::ParseError("segment: shorter than header");
  }
  if (std::memcmp(bytes->data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("segment: bad magic");
  }
  ByteReader reader(bytes->substr(4));
  uint32_t version = 0;
  DBSHERLOCK_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version != kVersionV1 && version != kVersionV2) {
    return Status::ParseError(
        common::StrFormat("segment: unsupported version %u", version));
  }
  bytes->remove_prefix(kHeaderSize);
  *version_out = version;
  return Status::OK();
}

// --- Zone-map footer (DESIGN.md §14) -----------------------------------
//
// Payload layout (little-endian, fixed width — no varints, so the size
// is a pure function of the attribute count):
//   u64 rows | f64 min_ts | f64 max_ts | u32 nattrs
//   per attr: f64 min | f64 max | u64 non_nan_count | u64 finite_count

std::string EncodeZoneBlock(const ZoneMap& zones) {
  std::string payload;
  AppendU64(&payload, zones.rows);
  AppendF64(&payload, zones.min_ts);
  AppendF64(&payload, zones.max_ts);
  AppendU32(&payload, static_cast<uint32_t>(zones.attrs.size()));
  for (const AttrZone& z : zones.attrs) {
    AppendF64(&payload, z.min);
    AppendF64(&payload, z.max);
    AppendU64(&payload, z.non_nan_count);
    AppendU64(&payload, z.finite_count);
  }
  return payload;
}

Status DecodeZoneBlock(std::string_view payload, ZoneMap* zones) {
  ByteReader reader(payload);
  DBSHERLOCK_RETURN_NOT_OK(reader.ReadU64(&zones->rows));
  if (zones->rows > kMaxRows) {
    return Status::ParseError("segment: zone row count exceeds cap");
  }
  DBSHERLOCK_RETURN_NOT_OK(reader.ReadF64(&zones->min_ts));
  DBSHERLOCK_RETURN_NOT_OK(reader.ReadF64(&zones->max_ts));
  uint32_t nattrs = 0;
  DBSHERLOCK_RETURN_NOT_OK(reader.ReadU32(&nattrs));
  if (nattrs > kMaxAttributes) {
    return Status::ParseError("segment: zone attribute count exceeds cap");
  }
  zones->attrs.clear();
  zones->attrs.reserve(nattrs);
  for (uint32_t i = 0; i < nattrs; ++i) {
    AttrZone z;
    DBSHERLOCK_RETURN_NOT_OK(reader.ReadF64(&z.min));
    DBSHERLOCK_RETURN_NOT_OK(reader.ReadF64(&z.max));
    DBSHERLOCK_RETURN_NOT_OK(reader.ReadU64(&z.non_nan_count));
    DBSHERLOCK_RETURN_NOT_OK(reader.ReadU64(&z.finite_count));
    if (z.finite_count > z.non_nan_count || z.non_nan_count > zones->rows) {
      return Status::ParseError("segment: inconsistent zone counts");
    }
    zones->attrs.push_back(z);
  }
  if (reader.remaining() != 0) {
    return Status::ParseError("segment: zone block has trailing bytes");
  }
  return Status::OK();
}

/// Splits a v2 tail into the framed zone block and validates the 8-byte
/// trailer. `tail` must be exactly `zone block | trailer`.
Status ConsumeZoneFooter(std::string_view tail, ZoneMap* zones) {
  if (tail.size() < kBlockHeaderSize + kTrailerSize) {
    return Status::ParseError("segment: truncated zone footer");
  }
  std::string_view trailer = tail.substr(tail.size() - kTrailerSize);
  if (std::memcmp(trailer.data() + 4, kZoneMagic, sizeof(kZoneMagic)) != 0) {
    return Status::ParseError("segment: bad zone trailer magic");
  }
  ByteReader reader(trailer);
  uint32_t zone_len = 0;
  DBSHERLOCK_RETURN_NOT_OK(reader.ReadU32(&zone_len));
  if (zone_len != tail.size() - kTrailerSize) {
    return Status::ParseError("segment: zone trailer length mismatch");
  }
  std::string_view block = tail.substr(0, zone_len);
  std::string_view payload;
  DBSHERLOCK_RETURN_NOT_OK(NextBlock(&block, &payload));
  if (!block.empty()) {
    return Status::ParseError("segment: trailing bytes inside zone footer");
  }
  return DecodeZoneBlock(payload, zones);
}

}  // namespace

ZoneMap ComputeZoneMap(const tsdata::Dataset& data) {
  ZoneMap zones;
  zones.rows = data.num_rows();
  zones.min_ts = data.num_rows() > 0 ? data.timestamp(0) : 0.0;
  zones.max_ts =
      data.num_rows() > 0 ? data.timestamp(data.num_rows() - 1) : 0.0;
  zones.attrs.resize(data.num_attributes());
  for (size_t i = 0; i < data.num_attributes(); ++i) {
    AttrZone& z = zones.attrs[i];
    const tsdata::Column& column = data.column(i);
    if (column.kind() == tsdata::AttributeKind::kCategorical) {
      // Categorical cells are always present; bounds never apply to them.
      z.non_nan_count = zones.rows;
      z.finite_count = zones.rows;
      continue;
    }
    for (double v : column.numeric_values()) {
      if (std::isnan(v)) continue;
      ++z.non_nan_count;
      if (std::isfinite(v)) ++z.finite_count;
      if (v < z.min) z.min = v;
      if (v > z.max) z.max = v;
    }
  }
  return zones;
}

std::string EncodeSegment(const tsdata::Dataset& data) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kVersionV2);
  AppendBlock(&out, EncodeMetaBlock(data));
  AppendBlock(&out, EncodeTimestampBlock(data));
  for (size_t i = 0; i < data.num_attributes(); ++i) {
    AppendBlock(&out, EncodeColumnBlock(data.column(i)));
  }
  size_t zone_start = out.size();
  AppendBlock(&out, EncodeZoneBlock(ComputeZoneMap(data)));
  AppendU32(&out, static_cast<uint32_t>(out.size() - zone_start));
  out.append(kZoneMagic, sizeof(kZoneMagic));
  return out;
}

Result<SegmentMeta> ReadSegmentMeta(std::string_view bytes) {
  SegmentMeta meta;
  DBSHERLOCK_RETURN_NOT_OK(CheckHeader(&bytes, &meta.version));
  std::string_view payload;
  DBSHERLOCK_RETURN_NOT_OK(NextBlock(&bytes, &payload));
  DBSHERLOCK_RETURN_NOT_OK(DecodeMetaBlock(payload, &meta));
  return meta;
}

Result<ZoneMap> ReadSegmentZoneMap(std::string_view bytes) {
  std::string_view body = bytes;
  uint32_t version = 0;
  DBSHERLOCK_RETURN_NOT_OK(CheckHeader(&body, &version));
  if (version == kVersionV1) {
    return Status::NotFound("segment: v1 blob has no zone-map footer");
  }
  // The trailer's length field tells us where the framed zone block
  // starts; ConsumeZoneFooter re-validates the whole tail.
  if (body.size() < kBlockHeaderSize + kTrailerSize) {
    return Status::ParseError("segment: truncated zone footer");
  }
  ByteReader trailer(body.substr(body.size() - kTrailerSize));
  uint32_t zone_len = 0;
  DBSHERLOCK_RETURN_NOT_OK(trailer.ReadU32(&zone_len));
  if (zone_len > kMaxBlock ||
      zone_len + kTrailerSize > body.size()) {
    return Status::ParseError("segment: zone trailer length mismatch");
  }
  ZoneMap zones;
  DBSHERLOCK_RETURN_NOT_OK(ConsumeZoneFooter(
      body.substr(body.size() - kTrailerSize - zone_len), &zones));
  return zones;
}

Result<tsdata::Dataset> DecodeSegment(std::string_view bytes) {
  uint32_t version = 0;
  DBSHERLOCK_RETURN_NOT_OK(CheckHeader(&bytes, &version));
  std::string_view payload;
  DBSHERLOCK_RETURN_NOT_OK(NextBlock(&bytes, &payload));
  SegmentMeta meta;
  DBSHERLOCK_RETURN_NOT_OK(DecodeMetaBlock(payload, &meta));

  // Timestamps.
  DBSHERLOCK_RETURN_NOT_OK(NextBlock(&bytes, &payload));
  std::vector<double> timestamps;
  timestamps.reserve(meta.rows);
  {
    BitReader bits(payload);
    TimestampDecoder decoder(&bits);
    for (uint64_t i = 0; i < meta.rows; ++i) {
      double ts = 0.0;
      DBSHERLOCK_RETURN_NOT_OK(decoder.Next(&ts));
      timestamps.push_back(ts);
    }
  }

  tsdata::Dataset data(meta.schema);
  size_t nattrs = meta.schema.num_attributes();
  // Decode columns straight into the dataset's columnar storage; rows
  // were validated against the schema when the segment was encoded.
  std::vector<std::vector<uint64_t>> numeric(nattrs);
  std::vector<std::vector<std::string>> categorical(nattrs);
  for (size_t i = 0; i < nattrs; ++i) {
    DBSHERLOCK_RETURN_NOT_OK(NextBlock(&bytes, &payload));
    if (meta.schema.attribute(i).kind == tsdata::AttributeKind::kNumeric) {
      BitReader bits(payload);
      XorDecoder decoder(&bits);
      numeric[i].reserve(meta.rows);
      for (uint64_t r = 0; r < meta.rows; ++r) {
        uint64_t v = 0;
        DBSHERLOCK_RETURN_NOT_OK(decoder.Next(&v));
        numeric[i].push_back(v);
      }
    } else {
      ByteReader reader(payload);
      uint32_t dict_size = 0;
      DBSHERLOCK_RETURN_NOT_OK(reader.ReadU32(&dict_size));
      if (dict_size > payload.size()) {
        return Status::ParseError("segment: dictionary size exceeds block");
      }
      std::vector<std::string> dict;
      dict.reserve(dict_size);
      for (uint32_t d = 0; d < dict_size; ++d) {
        uint32_t len = 0;
        DBSHERLOCK_RETURN_NOT_OK(reader.ReadU32(&len));
        std::string_view name;
        DBSHERLOCK_RETURN_NOT_OK(reader.ReadBytes(len, &name));
        dict.emplace_back(name);
      }
      categorical[i].reserve(meta.rows);
      for (uint64_t r = 0; r < meta.rows; ++r) {
        uint64_t code = 0;
        DBSHERLOCK_RETURN_NOT_OK(reader.ReadVarint(&code));
        if (code >= dict.size()) {
          return Status::ParseError("segment: category code out of range");
        }
        categorical[i].push_back(dict[code]);
      }
    }
  }
  if (version == kVersionV2) {
    // The footer is required: a v2 blob whose zone block was torn off is
    // corrupt, same as a missing column block.
    ZoneMap zones;
    DBSHERLOCK_RETURN_NOT_OK(ConsumeZoneFooter(bytes, &zones));
    if (zones.rows != meta.rows) {
      return Status::ParseError("segment: zone map disagrees with meta");
    }
  } else if (!bytes.empty()) {
    return Status::ParseError("segment: trailing bytes after last block");
  }

  std::vector<tsdata::Cell> cells(nattrs);
  for (uint64_t r = 0; r < meta.rows; ++r) {
    for (size_t i = 0; i < nattrs; ++i) {
      if (meta.schema.attribute(i).kind == tsdata::AttributeKind::kNumeric) {
        cells[i] = std::bit_cast<double>(numeric[i][r]);
      } else {
        cells[i] = categorical[i][r];
      }
    }
    // Unchecked append: the encoder wrote rows in timestamp order, but a
    // decoded NaN/odd timestamp must still round-trip bit-identically.
    DBSHERLOCK_RETURN_NOT_OK(
        data.AppendRowUnchecked(timestamps[r], cells));
  }
  return data;
}

}  // namespace dbsherlock::store
