#ifndef DBSHERLOCK_SIMULATOR_CONFIG_H_
#define DBSHERLOCK_SIMULATOR_CONFIG_H_

#include <cstdint>
#include <string>

namespace dbsherlock::simulator {

/// Hardware + engine configuration of the simulated database server.
/// Defaults approximate the paper's testbed: an Azure A3 instance
/// (4 cores @ 2.1 GHz, 7 GB RAM) running MySQL with a 4 GB buffer pool and
/// a TPC-C scale factor of 500 (~50 GB on disk).
struct ServerConfig {
  // --- Host hardware ----------------------------------------------------
  int cpu_cores = 4;
  /// Disk capability (commodity cloud disk).
  double disk_max_iops = 5000.0;
  double disk_max_kb_per_sec = 150.0 * 1024.0;  // 150 MB/s
  /// Network link capability.
  double net_max_kb_per_sec = 100.0 * 1024.0;  // ~1 Gbit
  double net_base_rtt_ms = 0.5;
  /// Total RAM pages (16 KB pages, 7 GB).
  double total_pages = 7.0 * 1024.0 * 1024.0 / 16.0;

  // --- DBMS engine ------------------------------------------------------
  /// Buffer pool size in 16 KB pages (4 GB).
  double buffer_pool_pages = 4.0 * 1024.0 * 1024.0 / 16.0;
  /// Database size in pages (50 GB), sets the best-case hit rate.
  double database_pages = 50.0 * 1024.0 * 1024.0 / 16.0;
  /// Dirty-page ratio that triggers aggressive background flushing.
  double dirty_page_flush_threshold = 0.10;
  /// Background flusher capability, pages/sec.
  double max_flush_pages_per_sec = 4000.0;
  /// Redo log file size in KB; the log rotates when full.
  double redo_log_kb = 512.0 * 1024.0;

  // --- Measurement ------------------------------------------------------
  /// Multiplicative log-normal-ish noise applied to every emitted metric
  /// (real /proc and SHOW STATUS counters are noisy; Section 3 calls this
  /// out as a design constraint).
  double metric_noise = 0.10;
  /// Per-second probability of a transient micro-hiccup (cron I/O burst,
  /// background CPU grab, network blip, lock blip, reporting scan). These
  /// make "normal" telemetry heavy-tailed — the fluctuation noise the
  /// paper's Section 3 calls out.
  double hiccup_probability = 0.12;
  /// A constant categorical attribute (exercises the paper's "invariants
  /// are not valid explanations" rule, Section 2.4).
  std::string server_profile = "azure_a3";
};

}  // namespace dbsherlock::simulator

#endif  // DBSHERLOCK_SIMULATOR_CONFIG_H_
