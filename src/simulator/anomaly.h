#ifndef DBSHERLOCK_SIMULATOR_ANOMALY_H_
#define DBSHERLOCK_SIMULATOR_ANOMALY_H_

#include <string>
#include <vector>

namespace dbsherlock::simulator {

/// The ten anomaly classes of Table 1 in the paper. Each injects a
/// characteristic perturbation into the simulated server (see
/// server_sim.cc for the exact effect of each).
enum class AnomalyKind {
  kPoorlyWrittenQuery,   // inefficient JOIN: huge row scans + DBMS CPU
  kPoorPhysicalDesign,   // unnecessary index on insert-heavy tables
  kWorkloadSpike,        // extra terminals + much higher request rate
  kIoSaturation,         // external write()/sync() stress (stress-ng)
  kDatabaseBackup,       // mysqldump: full scan + network egress
  kTableRestore,         // bulk re-insert of a dumped table
  kCpuSaturation,        // external poll() stress occupying cores
  kFlushLogTable,        // mysqladmin flush-logs/refresh storm
  kNetworkCongestion,    // +300 ms artificial delay on all traffic (tc)
  kLockContention,       // NewOrder on one warehouse/district only
};

/// All ten kinds, in Table 1 order.
const std::vector<AnomalyKind>& AllAnomalyKinds();

/// Human-readable name used in figures ("Workload Spike", ...).
std::string AnomalyKindName(AnomalyKind kind);

/// Stable snake_case identifier ("workload_spike", ...).
std::string AnomalyKindId(AnomalyKind kind);

/// One scheduled anomaly occurrence inside a dataset run.
struct AnomalyEvent {
  AnomalyKind kind = AnomalyKind::kWorkloadSpike;
  /// Start offset in seconds from the beginning of the run.
  double start_sec = 60.0;
  /// Duration in seconds.
  double duration_sec = 60.0;
  /// Relative severity; 1.0 reproduces the paper's setup.
  double magnitude = 1.0;
  /// Seconds over which the effect ramps up after onset (real anomalies —
  /// a dump warming up, stress processes spawning, clients reconnecting —
  /// do not hit full force instantaneously). The tail ramps down over
  /// ramp_sec / 2. Boundary seconds with partial effect are what make the
  /// user's region selection noisy, the situation Section 4.3's filtering
  /// step exists for.
  double ramp_sec = 8.0;

  bool ActiveAt(double t) const {
    return t >= start_sec && t < start_sec + duration_sec;
  }
  double end_sec() const { return start_sec + duration_sec; }

  /// Effective severity at time t: magnitude scaled by the onset/offset
  /// ramp; 0 when inactive. Never drops below 0.25 * magnitude while
  /// active, so even the boundary seconds are genuinely abnormal.
  double EffectiveMagnitude(double t) const;
};

}  // namespace dbsherlock::simulator

#endif  // DBSHERLOCK_SIMULATOR_ANOMALY_H_
