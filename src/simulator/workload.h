#ifndef DBSHERLOCK_SIMULATOR_WORKLOAD_H_
#define DBSHERLOCK_SIMULATOR_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dbsherlock::simulator {

/// Resource profile of one transaction type: what executing one instance of
/// the transaction demands from each server resource. These numbers shape
/// per-class metric signatures; absolute values are calibrated so the
/// default TPC-C mix at the default rate leaves the simulated server at
/// moderate (~35-50%) utilization, like the paper's normal periods.
struct TransactionProfile {
  std::string name;
  /// Fraction of transactions of this type in the mix (mix need not be
  /// normalized; weights are relative).
  double mix_weight = 1.0;
  /// CPU time consumed per transaction, milliseconds.
  double cpu_ms = 0.5;
  /// Rows touched (MySQL's "next row read requests" / logical reads).
  double logical_reads = 30.0;
  /// Rows written (insert/update/delete row operations).
  double rows_written = 5.0;
  /// SQL statement counts per transaction.
  double selects = 3.0;
  double updates = 2.0;
  double inserts = 1.0;
  double deletes = 0.0;
  /// Redo log bytes generated (KB).
  double log_kb = 2.0;
  /// Network payload exchanged with the client (KB each way).
  double net_send_kb = 1.0;
  double net_recv_kb = 0.5;
  /// Row locks acquired and mean hold time.
  double locks_acquired = 6.0;
  double lock_hold_ms = 1.0;
  /// Client round trips (each pays the network RTT).
  double round_trips = 2.0;
};

/// A transactional workload: a mix of transaction profiles plus an offered
/// load. Mirrors the paper's OLTPBench setup (TPC-C, scale 500, 128
/// terminals; TPC-E variant in Appendix A).
struct WorkloadSpec {
  std::string name;
  std::vector<TransactionProfile> transactions;
  /// Simulated client terminals; caps concurrency (closed-loop clients).
  int terminals = 128;
  /// Offered transactions per second under normal operation.
  double base_tps = 900.0;
  /// Fraction of row accesses that concentrate on "hot" rows; drives
  /// baseline lock contention. TPC-C district counters give a mild skew.
  double hotspot_fraction = 0.02;
  /// Working set as a fraction of the database actively touched; with the
  /// buffer pool smaller than the DB this sets the steady-state miss rate.
  double working_set_fraction = 0.12;
  /// Optional recorded load profile: per-second multipliers on base_tps
  /// (e.g. exported from production monitoring). When non-empty it
  /// replaces the simulator's random-walk load drift, repeating cyclically
  /// past its end — so DBSherlock can be exercised against real traffic
  /// shapes.
  std::vector<double> load_trace;

  /// Sum of mix weights (for normalization).
  double TotalWeight() const;
  /// Weighted average of a per-transaction quantity.
  double MixAverage(double TransactionProfile::*field) const;
};

/// Parses a load trace from CSV text: either a single `multiplier` column
/// or two columns `second,multiplier` (seconds must then be 0,1,2,...).
/// Multipliers must be positive.
common::Result<std::vector<double>> LoadTraceFromCsv(const std::string& text);

/// The TPC-C-like mix used in Section 8: five transaction types with
/// NewOrder/Payment write-heavy dominance.
WorkloadSpec MakeTpccWorkload();

/// The TPC-E-like mix of Appendix A: markedly more read-intensive
/// (the paper cites TPC-E's read-heavy profile as the reason 'Poor Physical
/// Design' and 'Lock Contention' become harder to tell apart).
WorkloadSpec MakeTpceWorkload();

}  // namespace dbsherlock::simulator

#endif  // DBSHERLOCK_SIMULATOR_WORKLOAD_H_
