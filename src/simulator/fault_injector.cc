#include "simulator/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/strings.h"

namespace dbsherlock::simulator {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// A row buffered for mutation: timestamp plus raw cell values (numeric
/// slots valid where the schema says numeric, category codes elsewhere).
struct RowBuf {
  double ts = 0.0;
  std::vector<double> numeric;   // per attribute; unused for categorical
  std::vector<int32_t> code;     // per attribute; unused for numeric
};

/// Row-level fault families enabled by the config, for a uniform pick.
std::vector<FaultKind> EnabledRowFaults(const FaultInjectorConfig& c) {
  std::vector<FaultKind> kinds;
  if (c.drop_rows) kinds.push_back(FaultKind::kDroppedRow);
  if (c.duplicate_rows) kinds.push_back(FaultKind::kDuplicatedRow);
  if (c.out_of_order_rows) kinds.push_back(FaultKind::kOutOfOrderRow);
  if (c.clock_skew) kinds.push_back(FaultKind::kClockSkew);
  return kinds;
}

std::vector<FaultKind> EnabledCellFaults(const FaultInjectorConfig& c) {
  std::vector<FaultKind> kinds;
  if (c.nan_cells) kinds.push_back(FaultKind::kNanCell);
  if (c.inf_cells) kinds.push_back(FaultKind::kInfCell);
  if (c.spike_cells) kinds.push_back(FaultKind::kSpikeCell);
  return kinds;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDroppedRow: return "dropped_row";
    case FaultKind::kNanCell: return "nan_cell";
    case FaultKind::kInfCell: return "inf_cell";
    case FaultKind::kSpikeCell: return "spike_cell";
    case FaultKind::kStuckAttribute: return "stuck_attribute";
    case FaultKind::kDuplicatedRow: return "duplicated_row";
    case FaultKind::kOutOfOrderRow: return "out_of_order_row";
    case FaultKind::kClockSkew: return "clock_skew";
    case FaultKind::kAttributeDisappearance: return "attribute_disappearance";
  }
  return "unknown";
}

std::string FaultCounts::ToString() const {
  return common::StrFormat(
      "faults: %zu dropped rows, %zu NaN cells, %zu Inf cells, %zu spikes, "
      "%zu stuck attrs (%zu cells), %zu duplicated rows, %zu out-of-order "
      "rows, %zu clock-skewed rows, %zu disappeared attrs (%zu cells)",
      dropped_rows, nan_cells, inf_cells, spike_cells, stuck_attributes,
      stuck_cells, duplicated_rows, out_of_order_rows, clock_skewed_rows,
      disappeared_attributes, disappeared_cells);
}

common::JsonValue FaultCounts::ToJson() const {
  common::JsonValue::Object o;
  o["dropped_rows"] = static_cast<double>(dropped_rows);
  o["nan_cells"] = static_cast<double>(nan_cells);
  o["inf_cells"] = static_cast<double>(inf_cells);
  o["spike_cells"] = static_cast<double>(spike_cells);
  o["stuck_attributes"] = static_cast<double>(stuck_attributes);
  o["stuck_cells"] = static_cast<double>(stuck_cells);
  o["duplicated_rows"] = static_cast<double>(duplicated_rows);
  o["out_of_order_rows"] = static_cast<double>(out_of_order_rows);
  o["clock_skewed_rows"] = static_cast<double>(clock_skewed_rows);
  o["disappeared_attributes"] = static_cast<double>(disappeared_attributes);
  o["disappeared_cells"] = static_cast<double>(disappeared_cells);
  o["total"] = static_cast<double>(total());
  return common::JsonValue(std::move(o));
}

common::Result<FaultedDataset> InjectFaults(
    const tsdata::Dataset& input, const FaultInjectorConfig& config) {
  if (config.corruption_rate < 0.0 || config.corruption_rate > 1.0 ||
      std::isnan(config.corruption_rate)) {
    return common::Status::InvalidArgument(common::StrFormat(
        "corruption_rate must be in [0, 1], got %g", config.corruption_rate));
  }

  const tsdata::Schema& schema = input.schema();
  const size_t num_attrs = schema.num_attributes();
  const size_t num_rows = input.num_rows();
  const double rate = config.corruption_rate;

  FaultedDataset out;
  out.data = tsdata::Dataset(schema);
  common::Pcg32 rng(config.seed, /*seq=*/0x0fau);

  // Buffer the rows so every mutation stage sees the prior stages' output.
  std::vector<RowBuf> rows(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    rows[r].ts = input.timestamp(r);
    rows[r].numeric.assign(num_attrs, 0.0);
    rows[r].code.assign(num_attrs, 0);
  }
  for (size_t a = 0; a < num_attrs; ++a) {
    const tsdata::Column& col = input.column(a);
    if (col.kind() == tsdata::AttributeKind::kNumeric) {
      std::span<const double> vals = col.numeric_values();
      for (size_t r = 0; r < num_rows; ++r) rows[r].numeric[a] = vals[r];
    } else {
      std::span<const int32_t> codes = col.codes();
      for (size_t r = 0; r < num_rows; ++r) rows[r].code[a] = codes[r];
    }
  }

  // Stage 1 — per-attribute episode faults (stuck runs, disappearance).
  // One decision per numeric attribute per family; episodes model a sensor
  // failing as a unit, not independent cell noise.
  for (size_t a = 0; a < num_attrs; ++a) {
    if (schema.attribute(a).kind != tsdata::AttributeKind::kNumeric) continue;
    if (config.stuck_attributes && num_rows >= 2 &&
        rng.NextDouble() < rate) {
      size_t start = rng.NextBounded(static_cast<uint32_t>(num_rows));
      size_t max_len = std::max<size_t>(config.max_stuck_run, 8);
      size_t len = 8 + rng.NextBounded(static_cast<uint32_t>(max_len - 8 + 1));
      size_t end = std::min(num_rows, start + len);
      double frozen = rows[start].numeric[a];
      for (size_t r = start; r < end; ++r) rows[r].numeric[a] = frozen;
      ++out.counts.stuck_attributes;
      out.counts.stuck_cells += end - start;
    }
    if (config.attribute_disappearance && num_rows >= 2 &&
        rng.NextDouble() < rate) {
      // The collector module dies partway through: NaN to end of stream.
      size_t start = num_rows / 2 +
                     rng.NextBounded(static_cast<uint32_t>(num_rows / 2));
      for (size_t r = start; r < num_rows; ++r) rows[r].numeric[a] = kNan;
      ++out.counts.disappeared_attributes;
      out.counts.disappeared_cells += num_rows - start;
    }
  }

  // Stage 2 — per-cell faults over numeric cells.
  const std::vector<FaultKind> cell_kinds = EnabledCellFaults(config);
  if (!cell_kinds.empty()) {
    for (size_t r = 0; r < num_rows; ++r) {
      for (size_t a = 0; a < num_attrs; ++a) {
        if (schema.attribute(a).kind != tsdata::AttributeKind::kNumeric) {
          continue;
        }
        if (rng.NextDouble() >= rate) continue;
        FaultKind kind = cell_kinds[rng.NextBounded(
            static_cast<uint32_t>(cell_kinds.size()))];
        double& v = rows[r].numeric[a];
        switch (kind) {
          case FaultKind::kNanCell:
            v = kNan;
            ++out.counts.nan_cells;
            break;
          case FaultKind::kInfCell:
            v = rng.NextBernoulli(0.5) ? kInf : -kInf;
            ++out.counts.inf_cells;
            break;
          case FaultKind::kSpikeCell: {
            double factor = rng.NextDouble(2.0, config.spike_multiplier);
            v = (v == 0.0 ? 1.0 : v) * factor;
            ++out.counts.spike_cells;
            break;
          }
          default:
            break;
        }
      }
    }
  }

  // Stage 3 — row-level faults, applied while emitting. A dropped row is
  // skipped; a duplicated row is emitted twice; clock skew perturbs the
  // timestamp; an out-of-order row swaps backward with an already-emitted
  // row (bounded distance), yielding genuinely decreasing timestamps.
  const std::vector<FaultKind> row_kinds = EnabledRowFaults(config);
  std::vector<RowBuf> emitted;
  emitted.reserve(num_rows + num_rows / 8);
  for (size_t r = 0; r < num_rows; ++r) {
    RowBuf row = rows[r];
    if (!row_kinds.empty() && rng.NextDouble() < rate) {
      FaultKind kind =
          row_kinds[rng.NextBounded(static_cast<uint32_t>(row_kinds.size()))];
      switch (kind) {
        case FaultKind::kDroppedRow:
          ++out.counts.dropped_rows;
          continue;
        case FaultKind::kDuplicatedRow:
          emitted.push_back(row);
          ++out.counts.duplicated_rows;
          break;
        case FaultKind::kClockSkew:
          row.ts += rng.NextDouble(-config.clock_skew_max_sec,
                                   config.clock_skew_max_sec);
          ++out.counts.clock_skewed_rows;
          break;
        case FaultKind::kOutOfOrderRow:
          if (!emitted.empty() && config.max_reorder_distance > 0) {
            size_t dist = 1 + rng.NextBounded(static_cast<uint32_t>(
                                  config.max_reorder_distance));
            size_t target = emitted.size() - std::min(dist, emitted.size());
            std::swap(row, emitted[target]);
            ++out.counts.out_of_order_rows;
          }
          break;
        default:
          break;
      }
    }
    emitted.push_back(std::move(row));
  }

  // Materialize. AppendRowUnchecked because broken ordering is the point;
  // cell arity/kinds are correct by construction, so errors are internal.
  std::vector<tsdata::Cell> cells(num_attrs);
  for (const RowBuf& row : emitted) {
    for (size_t a = 0; a < num_attrs; ++a) {
      const tsdata::Column& col = input.column(a);
      if (col.kind() == tsdata::AttributeKind::kNumeric) {
        cells[a] = row.numeric[a];
      } else {
        cells[a] = col.CategoryName(row.code[a]);
      }
    }
    DBSHERLOCK_RETURN_NOT_OK(out.data.AppendRowUnchecked(row.ts, cells));
  }
  return out;
}

}  // namespace dbsherlock::simulator
