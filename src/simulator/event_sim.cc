#include "simulator/event_sim.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "tsdata/schema.h"

namespace dbsherlock::simulator {

namespace {
constexpr double kMsToSec = 1e-3;

/// Exponential variate with the given mean (in whatever unit `mean` is).
double Exponential(common::Pcg32* rng, double mean) {
  double u = rng->NextDouble();
  if (u < 1e-12) u = 1e-12;
  return -mean * std::log(u);
}
}  // namespace

EventSimulator::EventSimulator(EventSimConfig config, uint64_t seed)
    : config_(config), rng_(seed, 0xe5e7) {}

void EventSimulator::Schedule(double at, std::function<void()> action) {
  queue_.push(Event{at, sequence_++, std::move(action)});
}

double EventSimulator::ActiveMagnitude(AnomalyKind kind) const {
  if (anomalies_ == nullptr) return 0.0;
  double magnitude = 0.0;
  for (const AnomalyEvent& ev : *anomalies_) {
    if (ev.kind == kind && ev.ActiveAt(now_)) {
      magnitude += ev.EffectiveMagnitude(now_);
    }
  }
  return magnitude;
}

int EventSimulator::EffectiveCores() const {
  // External CPU hogs (stress-ng) seize whole cores for the duration.
  double hog = ActiveMagnitude(AnomalyKind::kCpuSaturation);
  int seized = static_cast<int>(std::floor(
      std::min(hog * 3.4, static_cast<double>(config_.cpu_cores) - 1.0)));
  return std::max(1, config_.cpu_cores - seized);
}

void EventSimulator::StartTransaction(int terminal) {
  // Dormant spike terminals idle until a workload spike activates them.
  if (terminal >= config_.terminals &&
      ActiveMagnitude(AnomalyKind::kWorkloadSpike) <= 0.0) {
    int t = terminal;
    Schedule(now_ + 1.0, [this, t] { StartTransaction(t); });
    return;
  }

  Txn txn;
  txn.id = next_txn_id_++;
  txn.terminal = terminal;
  txn.start_time = now_;

  // Pre-draw the lock set in ascending object order: acquisition along a
  // total order cannot deadlock.
  double contention = ActiveMagnitude(AnomalyKind::kLockContention);
  double hot_fraction = contention > 0.0
                            ? std::min(0.95, 0.85 * contention)
                            : config_.hot_access_fraction;
  int hot_span = contention > 0.0 ? 2 : config_.num_hot_objects;
  while (static_cast<int>(txn.lock_set.size()) < config_.locks_per_txn) {
    int object;
    if (rng_.NextBernoulli(hot_fraction)) {
      object = rng_.NextInt(0, hot_span - 1);
    } else {
      object = rng_.NextInt(config_.num_hot_objects, config_.num_objects - 1);
    }
    if (std::find(txn.lock_set.begin(), txn.lock_set.end(), object) ==
        txn.lock_set.end()) {
      txn.lock_set.push_back(object);
    }
  }
  std::sort(txn.lock_set.begin(), txn.lock_set.end());

  int id = txn.id;
  txns_.emplace(id, std::move(txn));
  AdvanceStatement(id);
}

void EventSimulator::AdvanceStatement(int txn_id) {
  Txn& txn = txns_[txn_id];
  if (txn.next_statement >= config_.statements_per_txn) {
    Commit(txn_id);
    return;
  }
  // The first `locks_per_txn` statements each take one row lock.
  if (txn.next_lock < static_cast<int>(txn.lock_set.size()) &&
      txn.next_statement < config_.locks_per_txn) {
    RequestLock(txn_id);
  } else {
    RunCpuBurst(txn_id);
  }
}

void EventSimulator::RequestLock(int txn_id) {
  Txn& txn = txns_[txn_id];
  int object = txn.lock_set[static_cast<size_t>(txn.next_lock)];
  LockQueue& lock = locks_[object];
  if (lock.holder < 0) {
    lock.holder = txn_id;
    txn.held.push_back(object);
    ++txn.next_lock;
    RunCpuBurst(txn_id);
    return;
  }
  // Blocked: join the FIFO queue and start the wait clock.
  lock.waiters.push_back(txn_id);
  txn.lock_wait_start = now_;
  lock_waits_ += 1.0;
}

void EventSimulator::GrantedLock(int txn_id) {
  Txn& txn = txns_[txn_id];
  if (txn.lock_wait_start >= 0.0) {
    lock_wait_ms_ += (now_ - txn.lock_wait_start) / kMsToSec;
    txn.lock_wait_start = -1.0;
  }
  txn.held.push_back(txn.lock_set[static_cast<size_t>(txn.next_lock)]);
  ++txn.next_lock;
  RunCpuBurst(txn_id);
}

void EventSimulator::RunCpuBurst(int txn_id) {
  double burst_ms = Exponential(&rng_, config_.stmt_cpu_ms);
  cpu_queue_.emplace_back(burst_ms, [this, txn_id] { FinishStatement(txn_id); });
  DispatchCpu();
}

void EventSimulator::DispatchCpu() {
  while (busy_cores_ < EffectiveCores() && !cpu_queue_.empty()) {
    auto [burst_ms, done] = std::move(cpu_queue_.front());
    cpu_queue_.pop_front();
    ++busy_cores_;
    cpu_busy_ms_ += burst_ms;
    Schedule(now_ + burst_ms * kMsToSec,
             [this, done = std::move(done)] {
               --busy_cores_;
               done();
               DispatchCpu();
             });
  }
}

void EventSimulator::RequestDisk(double service_ms,
                                 std::function<void()> done) {
  disk_queue_.emplace_back(service_ms, std::move(done));
  DispatchDisk();
}

void EventSimulator::DispatchDisk() {
  while (busy_disk_ < config_.disk_parallelism && !disk_queue_.empty()) {
    auto [service_ms, done] = std::move(disk_queue_.front());
    disk_queue_.pop_front();
    ++busy_disk_;
    disk_busy_ms_ += service_ms;
    Schedule(now_ + service_ms * kMsToSec,
             [this, done = std::move(done)] {
               --busy_disk_;
               done();
               DispatchDisk();
             });
  }
}

void EventSimulator::FinishStatement(int txn_id) {
  // Buffer-pool miss: a physical read before the statement completes.
  if (rng_.NextBernoulli(config_.page_miss_prob)) {
    io_reads_ += 1.0;
    RequestDisk(config_.disk_service_ms, [this, txn_id] {
      Txn& txn = txns_[txn_id];
      ++txn.next_statement;
      AdvanceStatement(txn_id);
    });
    return;
  }
  Txn& txn = txns_[txn_id];
  ++txn.next_statement;
  AdvanceStatement(txn_id);
}

void EventSimulator::Commit(int txn_id) {
  // Commit log record (group-commit fsync), then release locks, then the
  // client reply pays the network round trip.
  RequestDisk(config_.log_write_ms, [this, txn_id] {
    ReleaseLocks(txn_id);
    Txn& txn = txns_[txn_id];
    double rtt_ms = config_.net_rtt_ms +
                    300.0 * ActiveMagnitude(AnomalyKind::kNetworkCongestion);
    int terminal = txn.terminal;
    double latency_ms = (now_ - txn.start_time) / kMsToSec + rtt_ms;
    Schedule(now_ + rtt_ms * kMsToSec, [this, txn_id, terminal, latency_ms] {
      latencies_.push_back(latency_ms);
      txns_.erase(txn_id);
      double think = Exponential(&rng_, config_.think_time_ms);
      if (ActiveMagnitude(AnomalyKind::kWorkloadSpike) > 0.0) think *= 0.25;
      Schedule(now_ + think * kMsToSec,
               [this, terminal] { StartTransaction(terminal); });
    });
  });
}

void EventSimulator::ReleaseLocks(int txn_id) {
  Txn& txn = txns_[txn_id];
  for (int object : txn.held) {
    LockQueue& lock = locks_[object];
    if (lock.waiters.empty()) {
      lock.holder = -1;
      continue;
    }
    int next = lock.waiters.front();
    lock.waiters.pop_front();
    lock.holder = next;
    Schedule(now_, [this, next] { GrantedLock(next); });
  }
  txn.held.clear();
}

void EventSimulator::FlushSecond(double now) {
  EventMetrics m;
  m.time_sec = now - 1.0;
  m.throughput_tps = static_cast<double>(latencies_.size());
  m.avg_latency_ms = common::Mean(latencies_);
  m.p99_latency_ms = common::Quantile(latencies_, 0.99);
  m.cpu_util = std::min(
      1.0, cpu_busy_ms_ / (1000.0 * static_cast<double>(config_.cpu_cores)));
  m.disk_util =
      std::min(1.0, disk_busy_ms_ /
                        (1000.0 * static_cast<double>(config_.disk_parallelism)));
  m.lock_waits = lock_waits_;
  m.lock_wait_time_ms = lock_wait_ms_;
  m.io_reads = io_reads_;
  m.active_transactions = static_cast<double>(txns_.size());
  results_.push_back(m);

  cpu_busy_ms_ = 0.0;
  disk_busy_ms_ = 0.0;
  latencies_.clear();
  lock_waits_ = 0.0;
  lock_wait_ms_ = 0.0;
  io_reads_ = 0.0;
}

std::vector<EventMetrics> EventSimulator::Run(
    double duration_sec, const std::vector<AnomalyEvent>& anomalies) {
  // Reset state so Run() can be called repeatedly on one instance.
  queue_ = {};
  txns_.clear();
  locks_.clear();
  cpu_queue_.clear();
  disk_queue_.clear();
  busy_cores_ = 0;
  busy_disk_ = 0;
  now_ = 0.0;
  results_.clear();
  cpu_busy_ms_ = disk_busy_ms_ = lock_waits_ = lock_wait_ms_ = io_reads_ = 0.0;
  latencies_.clear();
  anomalies_ = &anomalies;

  // Closed-loop terminals, plus 128 dormant ones a workload spike can
  // activate.
  int total_terminals = config_.terminals + 128;
  for (int t = 0; t < total_terminals; ++t) {
    double offset = Exponential(&rng_, config_.think_time_ms) * kMsToSec;
    Schedule(offset, [this, t] { StartTransaction(t); });
  }
  // External I/O pressure driver: every 100 ms, enqueue the I/Os an
  // io_saturation stress process issued in that window.
  std::function<void()> io_driver = [this, &io_driver] {
    double m = ActiveMagnitude(AnomalyKind::kIoSaturation);
    if (m > 0.0) {
      // ~3500 IOPS at full magnitude, matching the flow model's stress-ng.
      int ops = static_cast<int>(350.0 * m);
      for (int i = 0; i < ops; ++i) {
        RequestDisk(config_.disk_service_ms, [] {});
      }
    }
    Schedule(now_ + 0.1, io_driver);
  };
  Schedule(0.1, io_driver);

  // Per-second metric flushes.
  for (double t = 1.0; t <= duration_sec + 1e-9; t += 1.0) {
    Schedule(t, [this, t] { FlushSecond(t); });
  }

  double end_time = duration_sec;
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (event.time > end_time + 1e-9) break;
    now_ = event.time;
    event.action();
  }
  anomalies_ = nullptr;
  return results_;
}

tsdata::Dataset EventMetricsToDataset(const std::vector<EventMetrics>& rows) {
  tsdata::Schema schema;
  for (const char* name :
       {"throughput_tps", "avg_latency_ms", "p99_latency_ms", "cpu_util",
        "disk_util", "lock_waits", "lock_wait_time_ms", "io_reads",
        "active_transactions"}) {
    (void)schema.AddAttribute({name, tsdata::AttributeKind::kNumeric});
  }
  tsdata::Dataset dataset(schema);
  for (const EventMetrics& m : rows) {
    (void)dataset.AppendRow(
        m.time_sec,
        {m.throughput_tps, m.avg_latency_ms, m.p99_latency_ms, m.cpu_util,
         m.disk_util, m.lock_waits, m.lock_wait_time_ms, m.io_reads,
         m.active_transactions});
  }
  return dataset;
}

}  // namespace dbsherlock::simulator
