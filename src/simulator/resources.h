#ifndef DBSHERLOCK_SIMULATOR_RESOURCES_H_
#define DBSHERLOCK_SIMULATOR_RESOURCES_H_

#include "simulator/config.h"

namespace dbsherlock::simulator {

// ---------------------------------------------------------------------------
// CPU
// ---------------------------------------------------------------------------

/// CPU time demanded during one second, in milliseconds of core time.
struct CpuDemand {
  double db_ms = 0.0;          // DBMS query processing
  double background_ms = 0.0;  // flusher, purge, checkpointing
  double external_ms = 0.0;    // other processes (e.g. stress-ng)
};

/// Resolved CPU state for one second.
struct CpuState {
  double total_util = 0.0;     // [0,1] across all cores
  double dbms_util = 0.0;      // DBMS share of total capacity, [0,1]
  double external_util = 0.0;  // external share, [0,1]
  double idle_frac = 0.0;      // 1 - total_util - iowait is folded in later
  /// Multiplier on CPU service time from run-queue contention (>= 1).
  double delay_factor = 1.0;
};

/// Resolves CPU contention for one second. The DBMS competes with external
/// processes for cores; when the run queue saturates, service times stretch
/// by an M/M/c-style 1/(1-rho) factor (the "nonlinear effects" the paper's
/// introduction describes).
CpuState SolveCpu(const ServerConfig& config, const CpuDemand& demand);

// ---------------------------------------------------------------------------
// Disk
// ---------------------------------------------------------------------------

struct DiskDemand {
  double read_iops = 0.0;
  double write_iops = 0.0;
  double read_kb = 0.0;
  double write_kb = 0.0;
};

struct DiskState {
  double util = 0.0;         // [0,1], max of IOPS and bandwidth utilization
  double queue_depth = 0.0;  // outstanding requests (Little's law)
  double io_latency_ms = 0.0;  // per-I/O latency including queueing
  double delay_factor = 1.0;   // multiplier on synchronous I/O time
};

/// Resolves disk contention for one second.
DiskState SolveDisk(const ServerConfig& config, const DiskDemand& demand);

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

struct NetDemand {
  double send_kb = 0.0;
  double recv_kb = 0.0;
  /// Artificial per-round-trip delay (ms), e.g. Linux `tc netem` 300 ms in
  /// the Network Congestion anomaly.
  double extra_rtt_ms = 0.0;
};

struct NetState {
  double util = 0.0;    // [0,1] of link bandwidth
  double rtt_ms = 0.0;  // effective round-trip time seen by clients
};

/// Resolves network link state for one second.
NetState SolveNet(const ServerConfig& config, const NetDemand& demand);

// ---------------------------------------------------------------------------
// Lock manager
// ---------------------------------------------------------------------------

struct LockDemand {
  double tps = 0.0;             // transactions entering per second
  double locks_per_txn = 0.0;   // row locks acquired per transaction
  double hold_ms = 0.0;         // mean lock hold time
  double hotspot_fraction = 0.0;  // share of accesses on hot rows, [0,1]
  double concurrency = 1.0;     // transactions in flight
};

struct LockState {
  double waits_per_sec = 0.0;      // lock waits observed per second
  double wait_ms_per_txn = 0.0;    // average added latency per transaction
  double deadlocks_per_sec = 0.0;  // rare; grows with contention squared
};

/// Probabilistic row-lock contention model: the chance a lock request hits
/// a hot row someone else holds grows with concurrency x hotspot x hold
/// time, and the resulting wait queues grow super-linearly near saturation.
LockState SolveLocks(const LockDemand& demand);

// ---------------------------------------------------------------------------
// Buffer pool (stateful)
// ---------------------------------------------------------------------------

/// Buffer pool + background flusher. Stateful across ticks: dirty pages
/// accumulate until the flusher catches up, and sequential scans (backup /
/// restore) pollute the pool, temporarily raising the miss rate — the
/// mechanism behind the paper's small-buffer-pool discussion in Sec. 2.4.
class BufferPoolModel {
 public:
  explicit BufferPoolModel(const ServerConfig& config);

  struct TickInput {
    double logical_reads = 0.0;     // row reads issued this second
    double pages_dirtied = 0.0;     // pages written by transactions
    double scan_pages = 0.0;        // sequential scan pages (pollution)
    double working_set_fraction = 0.12;  // of database_pages
    bool force_flush = false;       // FLUSH TABLES-style storm
  };

  struct TickOutput {
    double miss_rate = 0.0;      // [0,1] of logical reads missing the pool
    double pages_read = 0.0;     // physical page reads
    double pages_flushed = 0.0;  // dirty pages written back
    double dirty_pages = 0.0;    // dirty pages at end of second
    double hit_rate = 0.0;       // 1 - miss_rate
  };

  TickOutput Update(const TickInput& in);

  double dirty_pages() const { return dirty_pages_; }
  double pollution_pages() const { return pollution_pages_; }

 private:
  ServerConfig config_;
  double dirty_pages_ = 0.0;
  double pollution_pages_ = 0.0;  // decays exponentially after scans end
};

// ---------------------------------------------------------------------------
// Redo log (stateful)
// ---------------------------------------------------------------------------

/// Redo log writer. Accumulates log bytes; a full log forces a rotation
/// (checkpoint stall), and FLUSH LOGS forces one immediately — the paper's
/// "Log Rotation" causal-model example (Figure 6).
class RedoLogModel {
 public:
  explicit RedoLogModel(const ServerConfig& config);

  struct TickOutput {
    double kb_written = 0.0;
    double flushes = 0.0;     // fsync batches issued
    double pending_kb = 0.0;  // log occupancy after this second
    bool rotated = false;
    double stall_ms = 0.0;  // latency added to transactions this second
  };

  TickOutput Update(double kb_in, bool force_rotate);

 private:
  ServerConfig config_;
  double pending_kb_ = 0.0;
};

}  // namespace dbsherlock::simulator

#endif  // DBSHERLOCK_SIMULATOR_RESOURCES_H_
