#ifndef DBSHERLOCK_SIMULATOR_FAULT_INJECTOR_H_
#define DBSHERLOCK_SIMULATOR_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/status.h"
#include "tsdata/dataset.h"

namespace dbsherlock::simulator {

/// The fault taxonomy of hostile telemetry collection, modeled after what
/// real collectors do under load: agents crash (dropped rows), sensors
/// return garbage (NaN/Inf), counters freeze (stuck attributes), network
/// retries duplicate and reorder packets, NTP steps skew clocks, parsers
/// glitch (spikes), and whole metrics vanish mid-run (a collector module
/// OOM-killed). Injected faults are the ground truth the data-quality
/// pipeline is graded against.
enum class FaultKind {
  kDroppedRow = 0,
  kNanCell,
  kInfCell,
  kSpikeCell,
  kStuckAttribute,
  kDuplicatedRow,
  kOutOfOrderRow,
  kClockSkew,
  kAttributeDisappearance,
};

/// Display name of a fault kind ("dropped_row", "nan_cell", ...).
const char* FaultKindName(FaultKind kind);

/// Configuration of one injection pass. `corruption_rate` is the master
/// knob: the probability that any given row suffers a row-level fault and
/// that any given numeric cell suffers a cell-level fault (and, per
/// attribute, that an episode fault starts). Rate 0 is the identity —
/// the output dataset is bit-identical to the input regardless of seed.
struct FaultInjectorConfig {
  double corruption_rate = 0.05;
  uint64_t seed = 1234;

  /// Per-family switches (all on by default).
  bool drop_rows = true;
  bool nan_cells = true;
  bool inf_cells = true;
  bool spike_cells = true;
  bool stuck_attributes = true;
  bool duplicate_rows = true;
  bool out_of_order_rows = true;
  bool clock_skew = true;
  bool attribute_disappearance = true;

  /// Stuck episodes freeze an attribute for [8, max_stuck_run] rows.
  size_t max_stuck_run = 30;
  /// Spike cells are multiplied by up to this factor (sign preserved).
  double spike_multiplier = 50.0;
  /// Clock skew adds a uniform offset in [-clock_skew_max_sec, +...].
  double clock_skew_max_sec = 3.0;
  /// Out-of-order rows move backward by up to this many positions.
  size_t max_reorder_distance = 4;
};

/// How many faults of each kind were injected (the injection ground truth).
struct FaultCounts {
  size_t dropped_rows = 0;
  size_t nan_cells = 0;
  size_t inf_cells = 0;
  size_t spike_cells = 0;
  size_t stuck_attributes = 0;
  size_t stuck_cells = 0;
  size_t duplicated_rows = 0;
  size_t out_of_order_rows = 0;
  size_t clock_skewed_rows = 0;
  size_t disappeared_attributes = 0;
  size_t disappeared_cells = 0;

  size_t total() const {
    return dropped_rows + nan_cells + inf_cells + spike_cells +
           stuck_cells + duplicated_rows + out_of_order_rows +
           clock_skewed_rows + disappeared_cells;
  }
  std::string ToString() const;
  common::JsonValue ToJson() const;
};

/// A corrupted dataset plus the injection ground truth.
struct FaultedDataset {
  tsdata::Dataset data;
  FaultCounts counts;
};

/// Corrupts `input` according to `config`. Deterministic: one serial PCG32
/// stream drives every decision, so the same (input, config) pair produces
/// a bit-identical corrupted dataset on every run and platform. The input
/// is never modified. Fails only on a nonsensical config
/// (corruption_rate outside [0, 1]); hostile *data* never fails it.
///
/// The output intentionally violates the Dataset ingest invariants
/// (duplicate / out-of-order timestamps are the point), which is why it is
/// built through Dataset::AppendRowUnchecked; round-tripping it through
/// CSV requires DatasetCsvOptions::allow_unsorted.
common::Result<FaultedDataset> InjectFaults(const tsdata::Dataset& input,
                                            const FaultInjectorConfig& config);

}  // namespace dbsherlock::simulator

#endif  // DBSHERLOCK_SIMULATOR_FAULT_INJECTOR_H_
