#include "simulator/dataset_gen.h"

#include <cmath>

#include "common/random.h"
#include "simulator/metric_schema.h"

namespace dbsherlock::simulator {

GeneratedDataset GenerateWithSchedule(const DatasetGenOptions& options,
                                      const std::vector<AnomalyEvent>& events,
                                      double total_duration_sec) {
  GeneratedDataset out;
  out.events = events;

  ServerConfig server = options.server;
  ServerSimulator sim(server, options.workload, options.seed);

  // Warmup: run the stateful models without recording, with no anomalies.
  std::vector<AnomalyEvent> no_events;
  for (double t = 0; t < options.warmup_sec; t += 1.0) {
    (void)sim.Tick(no_events);
  }

  // Shift the schedule so t=0 of the recorded window is after warmup.
  std::vector<AnomalyEvent> shifted = events;
  for (auto& ev : shifted) ev.start_sec += options.warmup_sec;

  out.data = tsdata::Dataset(MetricSchema());
  int ticks = static_cast<int>(std::llround(total_duration_sec));
  for (int i = 0; i < ticks; ++i) {
    double recorded_t = sim.now_sec() - options.warmup_sec;
    Metrics m = sim.Tick(shifted);
    // AppendRow cannot fail here: cells always match MetricSchema().
    (void)out.data.AppendRow(recorded_t, MetricsToCells(m));
  }

  for (const AnomalyEvent& ev : events) {
    out.regions.abnormal.Add(ev.start_sec, ev.end_sec());
  }
  return out;
}

GeneratedDataset GenerateAnomalyDataset(const DatasetGenOptions& options,
                                        AnomalyKind kind, double duration_sec,
                                        double magnitude) {
  AnomalyEvent ev;
  ev.kind = kind;
  ev.start_sec = options.normal_duration_sec / 2.0;
  ev.duration_sec = duration_sec;
  ev.magnitude = magnitude;
  GeneratedDataset out = GenerateWithSchedule(
      options, {ev}, options.normal_duration_sec + duration_sec);
  out.label = AnomalyKindName(kind);
  return out;
}

std::vector<GeneratedDataset> GenerateAnomalySeries(
    const DatasetGenOptions& options, AnomalyKind kind) {
  std::vector<GeneratedDataset> out;
  int index = 0;
  for (double duration = 30.0; duration <= 80.0; duration += 5.0, ++index) {
    DatasetGenOptions opts = options;
    // Distinct stream per dataset; stable across runs for a fixed seed.
    opts.seed = options.seed * 1000003ULL +
                static_cast<uint64_t>(kind) * 131ULL +
                static_cast<uint64_t>(index);
    // Severity varies across the series the way repeated real incidents
    // do; index 5 (the 55-second dataset) is the paper-nominal 1.0x.
    double magnitude = 0.7 + 0.06 * static_cast<double>(index);
    // The background load level also differs between runs (real workloads
    // are not replayed at identical rates on different days). Derived
    // deterministically from the per-dataset seed.
    common::Pcg32 baseline_rng(opts.seed, 0xba5e);
    opts.workload.base_tps *= 0.85 + 0.3 * baseline_rng.NextDouble();
    out.push_back(GenerateAnomalyDataset(opts, kind, duration, magnitude));
  }
  return out;
}

GeneratedDataset GenerateCompoundDataset(const DatasetGenOptions& options,
                                         const std::vector<AnomalyKind>& kinds,
                                         double duration_sec) {
  std::vector<AnomalyEvent> events;
  for (AnomalyKind kind : kinds) {
    AnomalyEvent ev;
    ev.kind = kind;
    ev.start_sec = options.normal_duration_sec / 2.0;
    ev.duration_sec = duration_sec;
    events.push_back(ev);
  }
  GeneratedDataset out = GenerateWithSchedule(
      options, events, options.normal_duration_sec + duration_sec);
  out.label = CompoundLabel(kinds);
  return out;
}

std::string CompoundLabel(const std::vector<AnomalyKind>& kinds) {
  std::string label;
  for (size_t i = 0; i < kinds.size(); ++i) {
    if (i > 0) label += " + ";
    label += AnomalyKindName(kinds[i]);
  }
  return label;
}

}  // namespace dbsherlock::simulator
