#include "simulator/metric_schema.h"

namespace dbsherlock::simulator {

size_t NumNumericMetrics() { return NumericMetricNames().size(); }

const std::vector<std::string>& NumericMetricNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
#define DBSHERLOCK_NAME_FIELD(name) #name,
      DBSHERLOCK_NUMERIC_METRICS(DBSHERLOCK_NAME_FIELD)
#undef DBSHERLOCK_NAME_FIELD
  };
  return *names;
}

tsdata::Schema MetricSchema() {
  tsdata::Schema schema;
  for (const auto& name : NumericMetricNames()) {
    // Names are unique by construction; ignore the (impossible) error.
    (void)schema.AddAttribute({name, tsdata::AttributeKind::kNumeric});
  }
  (void)schema.AddAttribute(
      {"dominant_statement", tsdata::AttributeKind::kCategorical});
  (void)schema.AddAttribute(
      {"server_profile", tsdata::AttributeKind::kCategorical});
  return schema;
}

std::vector<tsdata::Cell> MetricsToCells(const Metrics& m) {
  std::vector<tsdata::Cell> cells;
  cells.reserve(NumNumericMetrics() + 2);
  // Readings cross the collector's single-precision wire format on the way
  // into the statistics table: real collectors (dstat, SNMP gauges, OpenTSDB
  // floats) never deliver 17 significant digits. The simulator's internal
  // state stays double; only the recorded telemetry is quantized.
#define DBSHERLOCK_EMIT_FIELD(name) \
  cells.emplace_back(static_cast<double>(static_cast<float>(m.name)));
  DBSHERLOCK_NUMERIC_METRICS(DBSHERLOCK_EMIT_FIELD)
#undef DBSHERLOCK_EMIT_FIELD
  cells.emplace_back(m.dominant_statement);
  cells.emplace_back(m.server_profile);
  return cells;
}

std::vector<double> NumericMetricValues(const Metrics& m) {
  std::vector<double> values;
  values.reserve(NumNumericMetrics());
#define DBSHERLOCK_VALUE_FIELD(name) values.push_back(m.name);
  DBSHERLOCK_NUMERIC_METRICS(DBSHERLOCK_VALUE_FIELD)
#undef DBSHERLOCK_VALUE_FIELD
  return values;
}

}  // namespace dbsherlock::simulator
