#ifndef DBSHERLOCK_SIMULATOR_DATASET_GEN_H_
#define DBSHERLOCK_SIMULATOR_DATASET_GEN_H_

#include <string>
#include <vector>

#include "simulator/anomaly.h"
#include "simulator/config.h"
#include "simulator/server_sim.h"
#include "simulator/workload.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::simulator {

/// One generated experiment dataset: the telemetry table, the ground-truth
/// abnormal region(s), and the anomaly schedule that produced them.
struct GeneratedDataset {
  tsdata::Dataset data;
  tsdata::DiagnosisRegions regions;  // abnormal = ground truth; normal = rest
  std::vector<AnomalyEvent> events;
  std::string label;  // e.g. "Workload Spike" or "Workload Spike + ..."
};

/// Generation knobs. Defaults reproduce the paper's setup (Section 8.1):
/// two minutes of normal TPC-C activity plus the scheduled anomalies.
struct DatasetGenOptions {
  ServerConfig server;
  WorkloadSpec workload = MakeTpccWorkload();
  /// Seconds of normal activity (split evenly before/after the anomaly by
  /// the convenience generators).
  double normal_duration_sec = 120.0;
  /// Unrecorded seconds at the start to let stateful models settle.
  double warmup_sec = 15.0;
  uint64_t seed = 42;
};

/// Runs the simulator for `total_duration_sec` with the given anomaly
/// schedule and returns the telemetry plus the union of anomaly windows as
/// the ground-truth abnormal region.
GeneratedDataset GenerateWithSchedule(const DatasetGenOptions& options,
                                      const std::vector<AnomalyEvent>& events,
                                      double total_duration_sec);

/// Generates one paper-style dataset: normal_duration_sec of background
/// activity with a single anomaly of `duration_sec` (severity `magnitude`)
/// starting halfway through the normal window (total = normal + duration).
GeneratedDataset GenerateAnomalyDataset(const DatasetGenOptions& options,
                                        AnomalyKind kind, double duration_sec,
                                        double magnitude = 1.0);

/// Generates the paper's 11-dataset series for one anomaly class:
/// durations 30, 35, ..., 80 seconds (Section 8.2). Seeds are derived from
/// options.seed so each dataset differs, and severities vary across the
/// series (0.7x .. 1.3x) the way repeated real incidents do.
std::vector<GeneratedDataset> GenerateAnomalySeries(
    const DatasetGenOptions& options, AnomalyKind kind);

/// Generates one compound dataset where all `kinds` are active over
/// overlapping windows (Section 8.7).
GeneratedDataset GenerateCompoundDataset(const DatasetGenOptions& options,
                                         const std::vector<AnomalyKind>& kinds,
                                         double duration_sec);

/// Human label for a compound case ("Workload Spike + I/O Saturation").
std::string CompoundLabel(const std::vector<AnomalyKind>& kinds);

}  // namespace dbsherlock::simulator

#endif  // DBSHERLOCK_SIMULATOR_DATASET_GEN_H_
