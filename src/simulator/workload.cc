#include "simulator/workload.h"

#include "common/csv.h"
#include "common/strings.h"

namespace dbsherlock::simulator {

common::Result<std::vector<double>> LoadTraceFromCsv(const std::string& text) {
  auto parsed = common::ParseCsv(text, /*has_header=*/true);
  if (!parsed.ok()) return parsed.status();
  const common::CsvTable& table = *parsed;
  if (table.header.empty() || table.header.size() > 2) {
    return common::Status::InvalidArgument(
        "load trace needs 1 column (multiplier) or 2 (second,multiplier)");
  }
  bool has_seconds = table.header.size() == 2;
  std::vector<double> trace;
  trace.reserve(table.rows.size());
  for (size_t i = 0; i < table.rows.size(); ++i) {
    const auto& row = table.rows[i];
    if (has_seconds) {
      auto second = common::ParseDouble(row[0]);
      if (!second.ok()) return second.status();
      if (*second != static_cast<double>(i)) {
        return common::Status::InvalidArgument(common::StrFormat(
            "trace seconds must be 0,1,2,...; row %zu has %g", i, *second));
      }
    }
    auto multiplier = common::ParseDouble(row[has_seconds ? 1 : 0]);
    if (!multiplier.ok()) return multiplier.status();
    if (*multiplier <= 0.0) {
      return common::Status::InvalidArgument(
          common::StrFormat("non-positive multiplier at row %zu", i));
    }
    trace.push_back(*multiplier);
  }
  if (trace.empty()) {
    return common::Status::InvalidArgument("empty load trace");
  }
  return trace;
}

double WorkloadSpec::TotalWeight() const {
  double total = 0.0;
  for (const auto& t : transactions) total += t.mix_weight;
  return total;
}

double WorkloadSpec::MixAverage(double TransactionProfile::*field) const {
  double total = TotalWeight();
  if (total <= 0.0) return 0.0;
  double acc = 0.0;
  for (const auto& t : transactions) acc += t.mix_weight * (t.*field);
  return acc / total;
}

WorkloadSpec MakeTpccWorkload() {
  WorkloadSpec w;
  w.name = "tpcc";
  w.terminals = 128;
  w.base_tps = 900.0;
  w.hotspot_fraction = 0.02;
  w.working_set_fraction = 0.12;

  TransactionProfile new_order;
  new_order.name = "NewOrder";
  new_order.mix_weight = 45.0;
  new_order.cpu_ms = 0.9;
  new_order.logical_reads = 70.0;
  new_order.rows_written = 12.0;
  new_order.selects = 10.0;
  new_order.updates = 4.0;
  new_order.inserts = 12.0;
  new_order.deletes = 0.0;
  new_order.log_kb = 4.0;
  new_order.net_send_kb = 1.5;
  new_order.net_recv_kb = 1.0;
  new_order.locks_acquired = 14.0;
  new_order.lock_hold_ms = 1.2;
  new_order.round_trips = 2.0;

  TransactionProfile payment;
  payment.name = "Payment";
  payment.mix_weight = 43.0;
  payment.cpu_ms = 0.4;
  payment.logical_reads = 12.0;
  payment.rows_written = 4.0;
  payment.selects = 3.0;
  payment.updates = 3.0;
  payment.inserts = 1.0;
  payment.deletes = 0.0;
  payment.log_kb = 1.5;
  payment.net_send_kb = 0.6;
  payment.net_recv_kb = 0.4;
  payment.locks_acquired = 6.0;
  payment.lock_hold_ms = 0.8;
  payment.round_trips = 1.5;

  TransactionProfile order_status;
  order_status.name = "OrderStatus";
  order_status.mix_weight = 4.0;
  order_status.cpu_ms = 0.3;
  order_status.logical_reads = 25.0;
  order_status.rows_written = 0.0;
  order_status.selects = 4.0;
  order_status.updates = 0.0;
  order_status.inserts = 0.0;
  order_status.deletes = 0.0;
  order_status.log_kb = 0.0;
  order_status.net_send_kb = 1.2;
  order_status.net_recv_kb = 0.3;
  order_status.locks_acquired = 0.0;
  order_status.lock_hold_ms = 0.0;
  order_status.round_trips = 1.0;

  TransactionProfile delivery;
  delivery.name = "Delivery";
  delivery.mix_weight = 4.0;
  delivery.cpu_ms = 1.2;
  delivery.logical_reads = 130.0;
  delivery.rows_written = 30.0;
  delivery.selects = 12.0;
  delivery.updates = 20.0;
  delivery.inserts = 0.0;
  delivery.deletes = 10.0;
  delivery.log_kb = 6.0;
  delivery.net_send_kb = 0.4;
  delivery.net_recv_kb = 0.3;
  delivery.locks_acquired = 40.0;
  delivery.lock_hold_ms = 2.0;
  delivery.round_trips = 1.0;

  TransactionProfile stock_level;
  stock_level.name = "StockLevel";
  stock_level.mix_weight = 4.0;
  stock_level.cpu_ms = 1.0;
  stock_level.logical_reads = 200.0;
  stock_level.rows_written = 0.0;
  stock_level.selects = 2.0;
  stock_level.updates = 0.0;
  stock_level.inserts = 0.0;
  stock_level.deletes = 0.0;
  stock_level.log_kb = 0.0;
  stock_level.net_send_kb = 0.5;
  stock_level.net_recv_kb = 0.2;
  stock_level.locks_acquired = 0.0;
  stock_level.lock_hold_ms = 0.0;
  stock_level.round_trips = 1.0;

  w.transactions = {new_order, payment, order_status, delivery, stock_level};
  return w;
}

WorkloadSpec MakeTpceWorkload() {
  WorkloadSpec w;
  w.name = "tpce";
  w.terminals = 128;
  w.base_tps = 700.0;
  // TPC-E reads are spread over many more tables and customers: milder
  // hotspot, larger working set, far fewer writes per transaction.
  w.hotspot_fraction = 0.005;
  w.working_set_fraction = 0.20;

  TransactionProfile trade_order;
  trade_order.name = "TradeOrder";
  trade_order.mix_weight = 10.0;
  trade_order.cpu_ms = 1.0;
  trade_order.logical_reads = 60.0;
  trade_order.rows_written = 8.0;
  trade_order.selects = 12.0;
  trade_order.updates = 3.0;
  trade_order.inserts = 5.0;
  trade_order.deletes = 0.0;
  trade_order.log_kb = 3.0;
  trade_order.net_send_kb = 1.2;
  trade_order.net_recv_kb = 0.8;
  trade_order.locks_acquired = 8.0;
  trade_order.lock_hold_ms = 0.8;
  trade_order.round_trips = 2.0;

  TransactionProfile trade_lookup;
  trade_lookup.name = "TradeLookup";
  trade_lookup.mix_weight = 30.0;
  trade_lookup.cpu_ms = 0.8;
  trade_lookup.logical_reads = 150.0;
  trade_lookup.rows_written = 0.0;
  trade_lookup.selects = 8.0;
  trade_lookup.updates = 0.0;
  trade_lookup.inserts = 0.0;
  trade_lookup.deletes = 0.0;
  trade_lookup.log_kb = 0.0;
  trade_lookup.net_send_kb = 2.5;
  trade_lookup.net_recv_kb = 0.3;
  trade_lookup.locks_acquired = 0.0;
  trade_lookup.lock_hold_ms = 0.0;
  trade_lookup.round_trips = 1.5;

  TransactionProfile market_watch;
  market_watch.name = "MarketWatch";
  market_watch.mix_weight = 40.0;
  market_watch.cpu_ms = 0.5;
  market_watch.logical_reads = 90.0;
  market_watch.rows_written = 0.0;
  market_watch.selects = 5.0;
  market_watch.updates = 0.0;
  market_watch.inserts = 0.0;
  market_watch.deletes = 0.0;
  market_watch.log_kb = 0.0;
  market_watch.net_send_kb = 1.8;
  market_watch.net_recv_kb = 0.2;
  market_watch.locks_acquired = 0.0;
  market_watch.lock_hold_ms = 0.0;
  market_watch.round_trips = 1.0;

  TransactionProfile trade_update;
  trade_update.name = "TradeUpdate";
  trade_update.mix_weight = 10.0;
  trade_update.cpu_ms = 1.1;
  trade_update.logical_reads = 80.0;
  trade_update.rows_written = 6.0;
  trade_update.selects = 6.0;
  trade_update.updates = 6.0;
  trade_update.inserts = 0.0;
  trade_update.deletes = 0.0;
  trade_update.log_kb = 2.5;
  trade_update.net_send_kb = 1.0;
  trade_update.net_recv_kb = 0.6;
  trade_update.locks_acquired = 6.0;
  trade_update.lock_hold_ms = 0.9;
  trade_update.round_trips = 1.5;

  TransactionProfile market_feed;
  market_feed.name = "MarketFeed";
  market_feed.mix_weight = 10.0;
  market_feed.cpu_ms = 0.7;
  market_feed.logical_reads = 40.0;
  market_feed.rows_written = 10.0;
  market_feed.selects = 2.0;
  market_feed.updates = 10.0;
  market_feed.inserts = 0.0;
  market_feed.deletes = 0.0;
  market_feed.log_kb = 2.0;
  market_feed.net_send_kb = 0.4;
  market_feed.net_recv_kb = 1.5;
  market_feed.locks_acquired = 10.0;
  market_feed.lock_hold_ms = 0.6;
  market_feed.round_trips = 1.0;

  w.transactions = {trade_order, trade_lookup, market_watch, trade_update,
                    market_feed};
  return w;
}

}  // namespace dbsherlock::simulator
