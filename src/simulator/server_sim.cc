#include "simulator/server_sim.h"

#include <algorithm>
#include <cmath>

namespace dbsherlock::simulator {

TickEffects ComputeEffects(const std::vector<AnomalyEvent>& events,
                           double t) {
  TickEffects fx;
  for (const AnomalyEvent& ev : events) {
    if (!ev.ActiveAt(t)) continue;
    double m = ev.EffectiveMagnitude(t);
    switch (ev.kind) {
      case AnomalyKind::kPoorlyWrittenQuery:
        // A JOIN missing its index: the executor grinds through hundreds
        // of thousands of rows per second and burns DBMS CPU, exactly the
        // "next-row-read-requests + DBMS CPU" signature in the paper's
        // introduction.
        fx.extra_logical_reads += 500000.0 * m;
        fx.extra_db_cpu_ms += 1800.0 * m;
        fx.extra_full_table_scans += 8.0 * m;
        fx.extra_tmp_tables += 6.0 * m;
        fx.scan_pages += 300.0 * m;
        break;
      case AnomalyKind::kPoorPhysicalDesign:
        // An unnecessary index on insert-heavy tables: every INSERT also
        // maintains the extra B-tree (index page writes + CPU).
        fx.index_write_amplification += 1.0 * m;
        fx.extra_cpu_per_txn_ms += 0.35 * m;
        break;
      case AnomalyKind::kWorkloadSpike:
        // OLTPBench with 128 extra terminals at a huge target rate
        // (50,000 tps in the paper — far beyond what the server absorbs).
        fx.tps_multiplier *= 1.0 + 3.5 * m;
        fx.extra_terminals += 128;
        break;
      case AnomalyKind::kIoSaturation:
        // stress-ng spinning on write()/unlink()/sync().
        fx.extra_disk_write_iops += 3500.0 * m;
        fx.extra_disk_write_kb += 60.0 * 1024.0 * m;
        fx.extra_external_cpu_ms += 250.0 * m;
        break;
      case AnomalyKind::kDatabaseBackup:
        // mysqldump streams the database to the client machine: large
        // sequential reads + sustained network egress + pool pollution.
        fx.extra_disk_read_kb += 70.0 * 1024.0 * m;
        fx.extra_disk_read_iops += 800.0 * m;
        fx.scan_pages += 70.0 * 1024.0 / 16.0 * m;
        fx.extra_net_send_kb += 65.0 * 1024.0 * m;
        fx.extra_db_cpu_ms += 300.0 * m;
        break;
      case AnomalyKind::kTableRestore:
        // Re-loading the dumped history table: bulk INSERTs arriving over
        // the network, heavy logging and page dirtying.
        fx.extra_net_recv_kb += 30.0 * 1024.0 * m;
        fx.extra_rows_written += 50000.0 * m;
        fx.extra_inserts += 1500.0 * m;
        fx.extra_pages_dirtied += 2500.0 * m;
        fx.extra_log_kb += 25.0 * 1024.0 * m;
        fx.extra_db_cpu_ms += 700.0 * m;
        fx.extra_logical_reads += 60000.0 * m;
        break;
      case AnomalyKind::kCpuSaturation:
        // stress-ng poll() hog occupying most cores.
        fx.extra_external_cpu_ms += 3400.0 * m;
        break;
      case AnomalyKind::kFlushLogTable:
        // mysqladmin flush-logs + refresh: flush storm, closed tables
        // (pool re-warm) and forced log rotation.
        fx.force_flush = true;
        fx.force_log_rotate = true;
        fx.scan_pages += 1500.0 * m;
        fx.extra_disk_write_iops += 500.0 * m;
        // 'refresh' closes every table; reopening rewrites headers and
        // re-dirties previously clean pages, so the flush storm keeps
        // finding work each second.
        fx.extra_pages_dirtied += 2000.0 * m;
        break;
      case AnomalyKind::kNetworkCongestion:
        // tc netem adds 300 ms to every round trip.
        fx.extra_rtt_ms += 300.0 * m;
        break;
      case AnomalyKind::kLockContention:
        // NewOrder against a single warehouse+district: all writers
        // funnel into the same district row counters.
        fx.hotspot_override = std::min(0.95, 0.28 * m);
        fx.lock_hold_multiplier *= 1.5;
        break;
    }
  }
  return fx;
}

ServerSimulator::ServerSimulator(ServerConfig config, WorkloadSpec workload,
                                 uint64_t seed)
    : config_(config),
      workload_(std::move(workload)),
      rng_(seed, 0xdb5e),
      buffer_pool_(config),
      redo_log_(config),
      last_tps_(workload_.base_tps) {}

double ServerSimulator::Noisy(double value) {
  double noisy = value * (1.0 + config_.metric_noise * rng_.NextGaussian());
  return noisy < 0.0 ? 0.0 : noisy;
}

Metrics ServerSimulator::Tick(const std::vector<AnomalyEvent>& events) {
  const double t = now_sec_;
  TickEffects fx = ComputeEffects(events, t);

  // --- Offered load --------------------------------------------------------
  if (!workload_.load_trace.empty()) {
    // Recorded profile replayed cyclically (plus the per-metric noise).
    size_t slot = static_cast<size_t>(t) % workload_.load_trace.size();
    load_factor_ = workload_.load_trace[slot];
  } else {
    // Slow random walk: request rates wander over minutes, so a run's
    // "normal" period is non-stationary (nobody replays traffic at a flat
    // rate). Fast jitter on top.
    load_factor_ =
        0.97 * load_factor_ + 0.03 * (1.0 + 0.6 * rng_.NextGaussian());
    load_factor_ = std::clamp(load_factor_, 0.65, 1.45);
  }
  double offered_tps = workload_.base_tps * load_factor_ * fx.tps_multiplier;
  int terminals = workload_.terminals + fx.extra_terminals;

  // --- Transient micro-hiccups --------------------------------------------
  // Production telemetry is heavy-tailed even when "nothing is wrong":
  // cron jobs, kernel writeback, TCP retransmits, purge bursts. These 1-2
  // second blips are the fluctuation noise Section 3 of the paper calls
  // out; they land inside user-selected normal regions and are what the
  // partition filtering step has to survive.
  if (rng_.NextBernoulli(config_.hiccup_probability)) {
    switch (rng_.NextBounded(5)) {
      case 0:  // kernel writeback / cron I/O burst
        fx.extra_disk_write_iops += rng_.NextDouble(500.0, 2500.0);
        fx.extra_disk_write_kb += rng_.NextDouble(4096.0, 32768.0);
        break;
      case 1:  // background job briefly grabbing a core or two
        fx.extra_external_cpu_ms += rng_.NextDouble(400.0, 1600.0);
        break;
      case 2:  // network blip: retransmits inflate RTT for a second
        fx.extra_rtt_ms += rng_.NextDouble(2.0, 25.0);
        break;
      case 3:  // purge/history cleanup grabbing row locks
        fx.lock_hold_multiplier *= rng_.NextDouble(1.3, 2.5);
        break;
      case 4:  // batch read: a reporting query scans a table
        fx.extra_logical_reads += rng_.NextDouble(20000.0, 120000.0);
        fx.extra_db_cpu_ms += rng_.NextDouble(100.0, 500.0);
        fx.scan_pages += rng_.NextDouble(100.0, 600.0);
        fx.extra_full_table_scans += rng_.NextDouble(1.0, 3.0);
        break;
    }
  }

  // --- Per-transaction mix averages --------------------------------------
  double cpu_per_txn =
      workload_.MixAverage(&TransactionProfile::cpu_ms) + fx.extra_cpu_per_txn_ms;
  double reads_per_txn = workload_.MixAverage(&TransactionProfile::logical_reads);
  double writes_per_txn = workload_.MixAverage(&TransactionProfile::rows_written);
  double selects_per_txn = workload_.MixAverage(&TransactionProfile::selects);
  double updates_per_txn = workload_.MixAverage(&TransactionProfile::updates);
  double inserts_per_txn = workload_.MixAverage(&TransactionProfile::inserts);
  double deletes_per_txn = workload_.MixAverage(&TransactionProfile::deletes);
  double log_kb_per_txn = workload_.MixAverage(&TransactionProfile::log_kb);
  double send_kb_per_txn = workload_.MixAverage(&TransactionProfile::net_send_kb);
  double recv_kb_per_txn = workload_.MixAverage(&TransactionProfile::net_recv_kb);
  double locks_per_txn = workload_.MixAverage(&TransactionProfile::locks_acquired);
  double hold_ms = workload_.MixAverage(&TransactionProfile::lock_hold_ms) *
                   fx.lock_hold_multiplier;
  double round_trips = workload_.MixAverage(&TransactionProfile::round_trips);
  double hotspot = fx.hotspot_override >= 0.0 ? fx.hotspot_override
                                              : workload_.hotspot_fraction;

  // --- Buffer pool (stateful; uses last second's committed tps) ----------
  BufferPoolModel::TickInput bp_in;
  bp_in.logical_reads = last_tps_ * reads_per_txn + fx.extra_logical_reads;
  bp_in.pages_dirtied = last_tps_ * writes_per_txn / 8.0 +
                        last_tps_ * inserts_per_txn * fx.index_write_amplification +
                        fx.extra_pages_dirtied;
  bp_in.scan_pages = fx.scan_pages;
  bp_in.working_set_fraction = workload_.working_set_fraction;
  bp_in.force_flush = fx.force_flush;
  BufferPoolModel::TickOutput bp = buffer_pool_.Update(bp_in);

  // --- Redo log (stateful) ------------------------------------------------
  RedoLogModel::TickOutput log = redo_log_.Update(
      last_tps_ * log_kb_per_txn + fx.extra_log_kb, fx.force_log_rotate);

  // --- Fixed point: latency <-> concurrency <-> contention ---------------
  double latency_ms = 5.0;
  double tps = offered_tps;
  CpuState cpu;
  DiskState disk;
  NetState net;
  LockState locks;
  double miss_pages_per_txn = reads_per_txn * bp.miss_rate / 20.0;

  double server_latency_ms = latency_ms;
  for (int iter = 0; iter < 6; ++iter) {
    // Closed-loop admission: `terminals` clients each hold at most one
    // in-flight transaction (Little's law).
    double latency_sec = std::max(latency_ms, 0.1) / 1000.0;
    tps = std::min(offered_tps, static_cast<double>(terminals) / latency_sec);
    // Lock contention is driven by transactions resident *on the server*
    // (executing or lock-waiting). Time spent in network transit holds no
    // locks and occupies no executor thread.
    server_latency_ms =
        std::max(0.5, latency_ms - round_trips * net.rtt_ms);
    double concurrency = std::min(static_cast<double>(terminals),
                                  offered_tps * server_latency_ms / 1000.0);

    CpuDemand cpu_demand;
    cpu_demand.db_ms = tps * cpu_per_txn + fx.extra_db_cpu_ms;
    cpu_demand.background_ms = bp.pages_flushed * 0.02 + log.flushes * 0.05;
    cpu_demand.external_ms = fx.extra_external_cpu_ms;
    cpu = SolveCpu(config_, cpu_demand);

    DiskDemand disk_demand;
    disk_demand.read_iops = bp.pages_read + fx.extra_disk_read_iops;
    disk_demand.write_iops =
        bp.pages_flushed + log.flushes + fx.extra_disk_write_iops;
    disk_demand.read_kb = bp.pages_read * 16.0 + fx.extra_disk_read_kb;
    disk_demand.write_kb = bp.pages_flushed * 16.0 + log.kb_written +
                           fx.extra_disk_write_kb;
    disk = SolveDisk(config_, disk_demand);

    NetDemand net_demand;
    net_demand.send_kb = tps * send_kb_per_txn + fx.extra_net_send_kb;
    net_demand.recv_kb = tps * recv_kb_per_txn + fx.extra_net_recv_kb;
    net_demand.extra_rtt_ms = fx.extra_rtt_ms;
    net = SolveNet(config_, net_demand);

    LockDemand lock_demand;
    lock_demand.tps = tps;
    lock_demand.locks_per_txn = locks_per_txn;
    lock_demand.hold_ms = hold_ms;
    lock_demand.hotspot_fraction = hotspot;
    lock_demand.concurrency = concurrency;
    locks = SolveLocks(lock_demand);

    latency_ms = cpu_per_txn * cpu.delay_factor +
                 miss_pages_per_txn * disk.io_latency_ms +
                 round_trips * net.rtt_ms + locks.wait_ms_per_txn +
                 log.stall_ms * 0.5;
  }

  // Server-resident transactions (executing or lock-waiting).
  double concurrency = std::min(static_cast<double>(terminals),
                                offered_tps * server_latency_ms / 1000.0);

  // Requests the server could not admit pile up at the clients.
  client_backlog_ += offered_tps - tps;
  client_backlog_ = std::max(0.0, client_backlog_ * 0.7);

  // --- OS memory accounting ----------------------------------------------
  page_cache_pages_ +=
      (disk.util > 0.0 ? (fx.extra_disk_read_kb + fx.extra_disk_write_kb) / 16.0
                       : 0.0) *
      0.05;
  page_cache_pages_ = std::min(page_cache_pages_ * 0.95 + 2000.0,
                               0.25 * config_.total_pages);
  double process_pages = 0.05 * config_.total_pages;
  double allocated =
      std::min(0.98 * config_.total_pages,
               config_.buffer_pool_pages + page_cache_pages_ + process_pages);

  // --- Assemble the telemetry row -----------------------------------------
  Metrics m;
  m.avg_latency_ms = Noisy(latency_ms);
  double max_util = std::max({cpu.total_util, disk.util, net.util});
  m.p99_latency_ms = Noisy(latency_ms * (2.5 + 5.0 * max_util));
  m.throughput_tps = Noisy(tps);
  m.num_selects = Noisy(tps * selects_per_txn + fx.extra_full_table_scans);
  m.num_updates = Noisy(tps * updates_per_txn);
  m.num_inserts = Noisy(tps * inserts_per_txn + fx.extra_inserts);
  m.num_deletes = Noisy(tps * deletes_per_txn);
  m.logical_reads = Noisy(tps * reads_per_txn + fx.extra_logical_reads);
  m.rows_written = Noisy(tps * writes_per_txn + fx.extra_rows_written);
  // OLTP transactions hit indexes; scans and tmp tables come from ad-hoc
  // queries (anomalies, hiccups), not from the rate of well-tuned
  // transactions.
  m.full_table_scans = Noisy(fx.extra_full_table_scans + 0.2);
  m.tmp_tables_created = Noisy(fx.extra_tmp_tables + 2.0);

  double iowait = std::min(0.4, disk.util * 0.25) *
                  (1.0 - cpu.total_util);  // waiting only while not busy
  m.os_cpu_usage = Noisy(100.0 * cpu.total_util);
  m.os_cpu_iowait = Noisy(100.0 * iowait);
  m.os_cpu_idle =
      std::max(0.0, 100.0 - m.os_cpu_usage - m.os_cpu_iowait);
  m.os_cpu_user = Noisy(100.0 * cpu.total_util * 0.8);
  m.os_cpu_system = Noisy(100.0 * cpu.total_util * 0.2);
  m.dbms_cpu_usage = Noisy(100.0 * cpu.dbms_util);

  m.os_context_switches =
      Noisy(tps * round_trips * 4.0 + concurrency * 120.0 +
            (fx.extra_external_cpu_ms > 0.0 ? 20000.0 : 0.0));
  m.os_page_faults = Noisy(bp.pages_read * 0.3 + 200.0);
  m.os_allocated_pages = Noisy(allocated);
  m.os_free_pages = std::max(0.0, config_.total_pages - m.os_allocated_pages);
  m.os_used_swap_kb = Noisy(1024.0);
  m.os_free_swap_kb = std::max(0.0, 2.0 * 1024.0 * 1024.0 - m.os_used_swap_kb);

  m.disk_read_iops = Noisy(bp.pages_read + fx.extra_disk_read_iops);
  m.disk_write_iops =
      Noisy(bp.pages_flushed + log.flushes + fx.extra_disk_write_iops);
  m.disk_read_kb = Noisy(bp.pages_read * 16.0 + fx.extra_disk_read_kb);
  m.disk_write_kb =
      Noisy(bp.pages_flushed * 16.0 + log.kb_written + fx.extra_disk_write_kb);
  m.disk_queue_depth = Noisy(disk.queue_depth);
  m.disk_util = Noisy(100.0 * disk.util);

  double send_kb = tps * send_kb_per_txn + fx.extra_net_send_kb;
  double recv_kb = tps * recv_kb_per_txn + fx.extra_net_recv_kb;
  m.net_send_kb = Noisy(send_kb);
  m.net_recv_kb = Noisy(recv_kb);
  m.net_packets_sent = Noisy(send_kb / 1.4);  // ~1.4 KB per packet
  m.net_packets_recv = Noisy(recv_kb / 1.4);

  m.buffer_pool_hit_rate = Noisy(100.0 * bp.hit_rate);
  m.buffer_pool_dirty_pages = Noisy(bp.dirty_pages);
  m.pages_flushed = Noisy(bp.pages_flushed);
  m.pages_read = Noisy(bp.pages_read);
  m.pages_written = Noisy(bp.pages_flushed +
                          last_tps_ * inserts_per_txn *
                              fx.index_write_amplification);
  m.index_pages_written =
      Noisy(last_tps_ * inserts_per_txn * (0.05 + fx.index_write_amplification));

  m.lock_waits = Noisy(locks.waits_per_sec);
  m.lock_wait_time_ms = Noisy(locks.wait_ms_per_txn * tps);
  m.deadlocks = Noisy(locks.deadlocks_per_sec);
  m.running_threads = Noisy(concurrency + 8.0);
  m.active_connections = Noisy(static_cast<double>(terminals));
  m.client_wait_time_ms =
      Noisy(client_backlog_ * latency_ms + concurrency * net.rtt_ms);

  m.log_kb_written = Noisy(log.kb_written);
  m.log_flushes = Noisy(log.flushes);
  m.log_pending_kb = Noisy(log.pending_kb);

  // --- Categorical attributes ---------------------------------------------
  double read_stmts = m.num_selects;
  double write_stmts = m.num_updates + m.num_inserts + m.num_deletes;
  if (m.full_table_scans > 5.0) {
    m.dominant_statement = "scan";
  } else if (read_stmts > 2.0 * write_stmts) {
    m.dominant_statement = "read_heavy";
  } else if (write_stmts > 1.5 * read_stmts) {
    m.dominant_statement = "write_heavy";
  } else {
    m.dominant_statement = "mixed";
  }
  m.server_profile = config_.server_profile;

  last_tps_ = tps;
  now_sec_ += 1.0;
  return m;
}

}  // namespace dbsherlock::simulator
