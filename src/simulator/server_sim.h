#ifndef DBSHERLOCK_SIMULATOR_SERVER_SIM_H_
#define DBSHERLOCK_SIMULATOR_SERVER_SIM_H_

#include <vector>

#include "common/random.h"
#include "simulator/anomaly.h"
#include "simulator/config.h"
#include "simulator/metric_schema.h"
#include "simulator/resources.h"
#include "simulator/workload.h"

namespace dbsherlock::simulator {

/// The per-second perturbation derived from the set of active anomalies.
/// Exposed separately from the simulator so tests can verify the
/// anomaly -> effect mapping directly.
struct TickEffects {
  double tps_multiplier = 1.0;
  int extra_terminals = 0;
  double hotspot_override = -1.0;   // <0 keeps the workload's own value
  double lock_hold_multiplier = 1.0;
  double extra_db_cpu_ms = 0.0;      // e.g. the poorly written JOIN
  double extra_external_cpu_ms = 0.0;  // stress-ng CPU hog
  double extra_logical_reads = 0.0;  // next-row read requests
  double extra_full_table_scans = 0.0;
  double extra_tmp_tables = 0.0;
  double extra_disk_read_kb = 0.0;
  double extra_disk_write_kb = 0.0;
  double extra_disk_read_iops = 0.0;
  double extra_disk_write_iops = 0.0;
  double scan_pages = 0.0;           // buffer-pool-polluting page reads
  double extra_net_send_kb = 0.0;
  double extra_net_recv_kb = 0.0;
  double extra_rtt_ms = 0.0;         // tc netem-style delay
  double extra_rows_written = 0.0;   // bulk restore rows
  double extra_inserts = 0.0;        // bulk restore INSERT statements
  double extra_pages_dirtied = 0.0;
  double extra_log_kb = 0.0;
  double index_write_amplification = 0.0;  // extra index pages per insert
  double extra_cpu_per_txn_ms = 0.0;
  bool force_flush = false;          // FLUSH TABLES / FLUSH LOGS
  bool force_log_rotate = false;
};

/// Folds all anomalies active at time `t` into one TickEffects.
TickEffects ComputeEffects(const std::vector<AnomalyEvent>& events, double t);

/// A discrete-time simulator of a MySQL-like OLTP server under a
/// closed-loop client workload. Each Tick() advances one simulated second
/// and emits the telemetry row DBSeer would have collected (Section 2.1).
///
/// The model resolves CPU / disk / network / lock contention with simple
/// queueing formulas and a short fixed-point iteration between latency and
/// concurrency (Little's law), which yields the nonlinear saturation
/// behaviour the paper's anomalies rely on.
class ServerSimulator {
 public:
  ServerSimulator(ServerConfig config, WorkloadSpec workload, uint64_t seed);

  /// Advances one second and returns that second's telemetry. `events` is
  /// the full anomaly schedule; the simulator applies whichever are active.
  Metrics Tick(const std::vector<AnomalyEvent>& events);

  double now_sec() const { return now_sec_; }
  const WorkloadSpec& workload() const { return workload_; }
  const ServerConfig& config() const { return config_; }

 private:
  /// Applies multiplicative measurement noise and clamps at zero.
  double Noisy(double value);

  ServerConfig config_;
  WorkloadSpec workload_;
  common::Pcg32 rng_;
  BufferPoolModel buffer_pool_;
  RedoLogModel redo_log_;
  double now_sec_ = 0.0;
  /// AR(1) demand drift so "normal" load is realistically wavy.
  double load_factor_ = 1.0;
  /// Previous second's committed tps (used to lag buffer-pool demand).
  double last_tps_;
  /// Backlogged client requests (requests the server could not admit).
  double client_backlog_ = 0.0;
  /// OS page cache occupancy in pages (grows with disk traffic).
  double page_cache_pages_ = 0.0;
};

}  // namespace dbsherlock::simulator

#endif  // DBSHERLOCK_SIMULATOR_SERVER_SIM_H_
