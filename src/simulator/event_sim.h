#ifndef DBSHERLOCK_SIMULATOR_EVENT_SIM_H_
#define DBSHERLOCK_SIMULATOR_EVENT_SIM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "simulator/anomaly.h"
#include "tsdata/dataset.h"

namespace dbsherlock::simulator {

/// A transaction-level discrete-event simulator — the high-fidelity
/// companion to the flow-level ServerSimulator. Every transaction is an
/// explicit entity: a closed-loop terminal submits it, its statements
/// acquire row locks under strict two-phase locking (deadlock-free by
/// ordered acquisition), burn CPU on a k-core server, take buffer-pool
/// misses to a bounded-parallelism disk, write a commit log record, and
/// reply to the client over the network.
///
/// The flow model regenerates the paper's full corpus in milliseconds; the
/// event model executes every transaction and is used to validate that the
/// flow model's anomaly signatures (lock-wait storms, CPU squeeze, RTT
/// collapse, ...) emerge from first principles rather than from the
/// formulas that encode them. tests/event_sim_test.cc performs that
/// cross-validation.
struct EventSimConfig {
  // --- Workload (closed loop) ------------------------------------------
  int terminals = 32;
  double think_time_ms = 30.0;      // mean client think time (exponential)
  int statements_per_txn = 8;
  double stmt_cpu_ms = 0.20;        // mean CPU burst per statement (exp)

  // --- Locking ----------------------------------------------------------
  int locks_per_txn = 3;            // statements that take a row lock
  int num_objects = 5000;           // lockable rows
  int num_hot_objects = 50;         // the contended subset
  double hot_access_fraction = 0.02;  // share of lock requests on hot rows

  // --- Storage ------------------------------------------------------------
  double page_miss_prob = 0.05;     // statement needs a physical read
  double disk_service_ms = 0.25;    // per I/O
  int disk_parallelism = 4;         // concurrent I/Os the device sustains
  double log_write_ms = 0.4;        // commit fsync

  // --- CPU & network -----------------------------------------------------
  int cpu_cores = 4;
  double net_rtt_ms = 0.5;          // client round trip at commit
};

/// One second of measurements from the event simulator.
struct EventMetrics {
  double time_sec = 0.0;
  double throughput_tps = 0.0;
  double avg_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double cpu_util = 0.0;   // [0,1]
  double disk_util = 0.0;  // [0,1]
  double lock_waits = 0.0;
  double lock_wait_time_ms = 0.0;  // total wait time accrued this second
  double io_reads = 0.0;
  double active_transactions = 0.0;  // sampled at the second boundary
};

class EventSimulator {
 public:
  EventSimulator(EventSimConfig config, uint64_t seed);

  /// Runs for `duration_sec` simulated seconds and returns one
  /// EventMetrics row per second. Supported anomaly kinds (others are
  /// ignored): kCpuSaturation (external jobs seize cores), kIoSaturation
  /// (external I/O stream), kLockContention (lock requests funnel into
  /// very few hot rows), kNetworkCongestion (+300 ms RTT),
  /// kWorkloadSpike (dormant terminals activate, think time collapses).
  std::vector<EventMetrics> Run(double duration_sec,
                                const std::vector<AnomalyEvent>& anomalies = {});

 private:
  // --- Event queue -------------------------------------------------------
  struct Event {
    double time;
    uint64_t sequence;  // FIFO tie-break for identical timestamps
    std::function<void()> action;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  struct Txn {
    int id = 0;
    int terminal = 0;
    double start_time = 0.0;
    int next_statement = 0;
    std::vector<int> lock_set;   // pre-drawn, ascending (deadlock-free)
    int next_lock = 0;           // index into lock_set
    std::vector<int> held;       // acquired objects
    double lock_wait_start = -1.0;
  };

  struct LockQueue {
    int holder = -1;             // txn id, -1 when free
    std::deque<int> waiters;     // txn ids, FIFO
  };

  void Schedule(double at, std::function<void()> action);
  void StartTransaction(int terminal);
  void AdvanceStatement(int txn_id);
  void RequestLock(int txn_id);
  void GrantedLock(int txn_id);
  void RunCpuBurst(int txn_id);
  void FinishStatement(int txn_id);
  void Commit(int txn_id);
  void ReleaseLocks(int txn_id);
  void DispatchCpu();
  void DispatchDisk();
  void RequestDisk(double service_ms, std::function<void()> done);
  /// Whether an anomaly of `kind` is active now; returns its magnitude
  /// (0 when inactive).
  double ActiveMagnitude(AnomalyKind kind) const;
  int EffectiveCores() const;
  void FlushSecond(double now);

  EventSimConfig config_;
  common::Pcg32 rng_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  uint64_t sequence_ = 0;
  double now_ = 0.0;
  const std::vector<AnomalyEvent>* anomalies_ = nullptr;

  std::unordered_map<int, Txn> txns_;
  int next_txn_id_ = 0;
  std::unordered_map<int, LockQueue> locks_;

  // CPU: FIFO queue over k cores.
  int busy_cores_ = 0;
  std::deque<std::pair<double, std::function<void()>>> cpu_queue_;
  // Disk: FIFO queue over `disk_parallelism` channels.
  int busy_disk_ = 0;
  std::deque<std::pair<double, std::function<void()>>> disk_queue_;

  // --- Per-second accumulators -------------------------------------------
  double cpu_busy_ms_ = 0.0;   // core-ms this second
  double disk_busy_ms_ = 0.0;  // channel-ms this second
  std::vector<double> latencies_;
  double lock_waits_ = 0.0;
  double lock_wait_ms_ = 0.0;
  double io_reads_ = 0.0;
  std::vector<EventMetrics> results_;
};

/// Converts event-simulator output into the aligned Dataset DBSherlock
/// consumes (numeric attributes named after EventMetrics fields).
tsdata::Dataset EventMetricsToDataset(const std::vector<EventMetrics>& rows);

}  // namespace dbsherlock::simulator

#endif  // DBSHERLOCK_SIMULATOR_EVENT_SIM_H_
