#include "simulator/anomaly.h"

#include <algorithm>

namespace dbsherlock::simulator {

double AnomalyEvent::EffectiveMagnitude(double t) const {
  if (!ActiveAt(t)) return 0.0;
  double ramp_up = ramp_sec <= 0.0 ? 1.0 : (t - start_sec + 1.0) / ramp_sec;
  double ramp_down =
      ramp_sec <= 0.0 ? 1.0 : (end_sec() - t) / (0.5 * ramp_sec);
  double ramp = std::clamp(std::min(ramp_up, ramp_down), 0.25, 1.0);
  return magnitude * ramp;
}

const std::vector<AnomalyKind>& AllAnomalyKinds() {
  static const std::vector<AnomalyKind>* kinds = new std::vector<AnomalyKind>{
      AnomalyKind::kPoorlyWrittenQuery, AnomalyKind::kPoorPhysicalDesign,
      AnomalyKind::kWorkloadSpike,      AnomalyKind::kIoSaturation,
      AnomalyKind::kDatabaseBackup,     AnomalyKind::kTableRestore,
      AnomalyKind::kCpuSaturation,      AnomalyKind::kFlushLogTable,
      AnomalyKind::kNetworkCongestion,  AnomalyKind::kLockContention,
  };
  return *kinds;
}

std::string AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kPoorlyWrittenQuery:
      return "Poorly Written Query";
    case AnomalyKind::kPoorPhysicalDesign:
      return "Poor Physical Design";
    case AnomalyKind::kWorkloadSpike:
      return "Workload Spike";
    case AnomalyKind::kIoSaturation:
      return "I/O Saturation";
    case AnomalyKind::kDatabaseBackup:
      return "Database Backup";
    case AnomalyKind::kTableRestore:
      return "Table Restore";
    case AnomalyKind::kCpuSaturation:
      return "CPU Saturation";
    case AnomalyKind::kFlushLogTable:
      return "Flush Log/Table";
    case AnomalyKind::kNetworkCongestion:
      return "Network Congestion";
    case AnomalyKind::kLockContention:
      return "Lock Contention";
  }
  return "Unknown";
}

std::string AnomalyKindId(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kPoorlyWrittenQuery:
      return "poorly_written_query";
    case AnomalyKind::kPoorPhysicalDesign:
      return "poor_physical_design";
    case AnomalyKind::kWorkloadSpike:
      return "workload_spike";
    case AnomalyKind::kIoSaturation:
      return "io_saturation";
    case AnomalyKind::kDatabaseBackup:
      return "database_backup";
    case AnomalyKind::kTableRestore:
      return "table_restore";
    case AnomalyKind::kCpuSaturation:
      return "cpu_saturation";
    case AnomalyKind::kFlushLogTable:
      return "flush_log_table";
    case AnomalyKind::kNetworkCongestion:
      return "network_congestion";
    case AnomalyKind::kLockContention:
      return "lock_contention";
  }
  return "unknown";
}

}  // namespace dbsherlock::simulator
