#ifndef DBSHERLOCK_SIMULATOR_METRIC_SCHEMA_H_
#define DBSHERLOCK_SIMULATOR_METRIC_SCHEMA_H_

#include <string>
#include <vector>

#include "tsdata/dataset.h"
#include "tsdata/schema.h"

namespace dbsherlock::simulator {

/// The numeric telemetry emitted every simulated second, mirroring the
/// attribute families DBSeer collects from Linux /proc and MySQL global
/// status (Section 2.1 of the paper). One X-macro keeps the struct fields,
/// schema and serialization in lock step.
///
/// clang-format off
#define DBSHERLOCK_NUMERIC_METRICS(V)                                      \
  /* Transaction aggregates */                                             \
  V(avg_latency_ms)     V(p99_latency_ms)    V(throughput_tps)             \
  V(num_selects)        V(num_updates)       V(num_inserts)                \
  V(num_deletes)        V(logical_reads)     V(rows_written)               \
  V(full_table_scans)   V(tmp_tables_created)                              \
  /* CPU */                                                                \
  V(os_cpu_usage)       V(os_cpu_idle)       V(os_cpu_iowait)              \
  V(os_cpu_user)        V(os_cpu_system)     V(dbms_cpu_usage)             \
  /* OS counters */                                                        \
  V(os_context_switches) V(os_page_faults)                                 \
  V(os_allocated_pages) V(os_free_pages)                                   \
  V(os_used_swap_kb)    V(os_free_swap_kb)                                 \
  /* Disk */                                                               \
  V(disk_read_iops)     V(disk_write_iops)   V(disk_read_kb)               \
  V(disk_write_kb)      V(disk_queue_depth)  V(disk_util)                  \
  /* Network */                                                            \
  V(net_send_kb)        V(net_recv_kb)                                     \
  V(net_packets_sent)   V(net_packets_recv)                                \
  /* Buffer pool & background I/O */                                       \
  V(buffer_pool_hit_rate) V(buffer_pool_dirty_pages)                       \
  V(pages_flushed)      V(pages_read)        V(pages_written)              \
  V(index_pages_written)                                                   \
  /* Locking & threads */                                                  \
  V(lock_waits)         V(lock_wait_time_ms) V(deadlocks)                  \
  V(running_threads)    V(active_connections) V(client_wait_time_ms)       \
  /* Redo log */                                                           \
  V(log_kb_written)     V(log_flushes)       V(log_pending_kb)
/// clang-format on

/// One second of telemetry. All numeric fields default to zero.
struct Metrics {
#define DBSHERLOCK_DECLARE_FIELD(name) double name = 0.0;
  DBSHERLOCK_NUMERIC_METRICS(DBSHERLOCK_DECLARE_FIELD)
#undef DBSHERLOCK_DECLARE_FIELD

  /// Categorical attributes: the dominant statement class this second
  /// (varies with several anomalies) and the fixed server profile (an
  /// invariant — exercises Section 2.4's rule that invariants are never
  /// valid explanations).
  std::string dominant_statement = "mixed";
  std::string server_profile = "azure_a3";
};

/// Number of numeric metrics.
size_t NumNumericMetrics();

/// Names of the numeric metrics, in declaration order.
const std::vector<std::string>& NumericMetricNames();

/// The full Dataset schema: every numeric metric plus the two categorical
/// attributes ("dominant_statement", "server_profile").
tsdata::Schema MetricSchema();

/// Converts a Metrics sample to a Dataset row (matching MetricSchema()).
std::vector<tsdata::Cell> MetricsToCells(const Metrics& m);

/// Reads the numeric metrics into a vector (same order as
/// NumericMetricNames()); useful for tests.
std::vector<double> NumericMetricValues(const Metrics& m);

}  // namespace dbsherlock::simulator

#endif  // DBSHERLOCK_SIMULATOR_METRIC_SCHEMA_H_
