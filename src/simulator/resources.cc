#include "simulator/resources.h"

#include <algorithm>
#include <cmath>

namespace dbsherlock::simulator {

namespace {
/// Queueing-delay multiplier 1/(1-rho), clamped so saturated resources give
/// large but finite delays.
double DelayFactor(double rho) {
  rho = std::clamp(rho, 0.0, 0.98);
  return 1.0 / (1.0 - rho);
}
}  // namespace

CpuState SolveCpu(const ServerConfig& config, const CpuDemand& demand) {
  CpuState out;
  double capacity_ms = static_cast<double>(config.cpu_cores) * 1000.0;
  double db_demand = demand.db_ms + demand.background_ms;
  double total_demand = db_demand + demand.external_ms;
  if (capacity_ms <= 0.0) return out;

  double rho = total_demand / capacity_ms;
  out.total_util = std::min(1.0, rho);
  if (total_demand > 0.0) {
    // When over-committed, the scheduler splits capacity proportionally.
    double scale = std::min(1.0, capacity_ms / total_demand);
    out.dbms_util = db_demand * scale / capacity_ms;
    out.external_util = demand.external_ms * scale / capacity_ms;
  }
  out.idle_frac = std::max(0.0, 1.0 - out.total_util);
  out.delay_factor = DelayFactor(rho);
  return out;
}

DiskState SolveDisk(const ServerConfig& config, const DiskDemand& demand) {
  DiskState out;
  double iops = demand.read_iops + demand.write_iops;
  double kb = demand.read_kb + demand.write_kb;
  double iops_util =
      config.disk_max_iops > 0.0 ? iops / config.disk_max_iops : 0.0;
  double bw_util = config.disk_max_kb_per_sec > 0.0
                       ? kb / config.disk_max_kb_per_sec
                       : 0.0;
  double rho = std::max(iops_util, bw_util);
  out.util = std::min(1.0, rho);
  out.delay_factor = DelayFactor(rho);
  // Cloud-SSD-ish base service time per I/O.
  constexpr double kBaseIoMs = 0.25;
  out.io_latency_ms = kBaseIoMs * out.delay_factor;
  out.queue_depth = iops * out.io_latency_ms / 1000.0;
  return out;
}

NetState SolveNet(const ServerConfig& config, const NetDemand& demand) {
  NetState out;
  double kb = demand.send_kb + demand.recv_kb;
  double rho =
      config.net_max_kb_per_sec > 0.0 ? kb / config.net_max_kb_per_sec : 0.0;
  out.util = std::min(1.0, rho);
  out.rtt_ms =
      (config.net_base_rtt_ms + demand.extra_rtt_ms) * DelayFactor(rho);
  return out;
}

LockState SolveLocks(const LockDemand& demand) {
  LockState out;
  if (demand.tps <= 0.0 || demand.locks_per_txn <= 0.0) return out;
  // Probability a single lock request conflicts: other in-flight
  // transactions holding hot locks, scaled by how concentrated the access
  // pattern is. The (concurrency - 1) term makes a lone transaction
  // conflict-free.
  double others = std::max(0.0, demand.concurrency - 1.0);
  double hot_locks_held =
      others * demand.locks_per_txn * demand.hotspot_fraction;
  // Hot rows available: with hotspot_fraction f, roughly 1/f distinct hot
  // rows absorb the traffic; fewer rows -> more collisions.
  double conflict_prob =
      std::clamp(hot_locks_held * demand.hotspot_fraction *
                     (demand.hold_ms / (demand.hold_ms + 5.0)),
                 0.0, 0.95);
  double waits_per_txn = demand.locks_per_txn * conflict_prob;
  out.waits_per_sec = waits_per_txn * demand.tps;
  // Each wait queues behind the holder (and, near saturation, a convoy).
  double queue_len = 1.0 + conflict_prob * others;
  out.wait_ms_per_txn = waits_per_txn * demand.hold_ms * queue_len;
  // Deadlocks need two conflicting waits to cross; quadratic and rare.
  out.deadlocks_per_sec = 0.01 * out.waits_per_sec * conflict_prob;
  return out;
}

BufferPoolModel::BufferPoolModel(const ServerConfig& config)
    : config_(config) {
  // Steady state: a modest dirty backlog exists under a write workload.
  dirty_pages_ = 0.02 * config_.buffer_pool_pages;
}

BufferPoolModel::TickOutput BufferPoolModel::Update(const TickInput& in) {
  TickOutput out;

  // --- Miss rate -------------------------------------------------------
  double working_set =
      std::max(1.0, in.working_set_fraction * config_.database_pages);
  double resident_fraction =
      std::min(1.0, config_.buffer_pool_pages / working_set);
  // Zipf-ish benefit: caching x% of the working set absorbs more than x%
  // of accesses.
  double base_hit = std::pow(resident_fraction, 0.35);
  // Scan pollution displaces hot pages: effective pool shrinks.
  double polluted_fraction =
      std::min(0.8, pollution_pages_ / config_.buffer_pool_pages);
  double hit = base_hit * (1.0 - 0.5 * polluted_fraction);
  out.miss_rate = std::clamp(1.0 - hit, 0.0, 1.0);
  out.hit_rate = 1.0 - out.miss_rate;
  // Row reads translate to page reads at ~20 rows/page on a miss path.
  out.pages_read = in.logical_reads * out.miss_rate / 20.0 + in.scan_pages;

  // --- Pollution decay ---------------------------------------------------
  pollution_pages_ += in.scan_pages;
  pollution_pages_ *= 0.85;  // hot pages re-warm within ~10s after a scan
  pollution_pages_ =
      std::min(pollution_pages_, 0.9 * config_.buffer_pool_pages);

  // --- Dirty pages & flushing -------------------------------------------
  dirty_pages_ += in.pages_dirtied;
  double dirty_ratio = dirty_pages_ / config_.buffer_pool_pages;
  double flush_rate;
  if (in.force_flush) {
    flush_rate = config_.max_flush_pages_per_sec * 2.0;  // flush storm
  } else if (dirty_ratio > config_.dirty_page_flush_threshold) {
    flush_rate = config_.max_flush_pages_per_sec;
  } else {
    // Adaptive flushing keeps pace with the incoming dirty rate.
    flush_rate = std::min(config_.max_flush_pages_per_sec,
                          in.pages_dirtied + 0.1 * dirty_pages_);
  }
  out.pages_flushed = std::min(dirty_pages_, flush_rate);
  dirty_pages_ -= out.pages_flushed;
  out.dirty_pages = dirty_pages_;
  return out;
}

RedoLogModel::RedoLogModel(const ServerConfig& config) : config_(config) {
  pending_kb_ = 0.05 * config_.redo_log_kb;
}

RedoLogModel::TickOutput RedoLogModel::Update(double kb_in,
                                              bool force_rotate) {
  TickOutput out;
  out.kb_written = kb_in;
  pending_kb_ += kb_in;
  // Group-commit fsyncs: ~1 per 16 KB of log, at least 1/s under load.
  out.flushes = kb_in > 0.0 ? std::max(1.0, kb_in / 16.0) : 0.0;
  if (force_rotate || pending_kb_ >= config_.redo_log_kb) {
    out.rotated = true;
    // Rotation forces a sharp checkpoint: transactions stall while the
    // engine syncs and switches files.
    out.stall_ms = 40.0 + 20.0 * (pending_kb_ / config_.redo_log_kb);
    pending_kb_ = 0.0;
  }
  out.pending_kb = pending_kb_;
  return out;
}

}  // namespace dbsherlock::simulator
