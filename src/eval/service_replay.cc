#include "eval/service_replay.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/parallel.h"
#include "common/strings.h"
#include "common/trace.h"
#include "eval/experiment.h"
#include "service/client.h"
#include "service/server.h"

namespace dbsherlock::eval {

namespace {

using common::Result;
using common::Status;

/// Materializes row `i` of `dataset` in AppendRow cell form.
std::vector<tsdata::Cell> RowCells(const tsdata::Dataset& dataset, size_t i) {
  std::vector<tsdata::Cell> cells;
  cells.reserve(dataset.schema().num_attributes());
  for (size_t a = 0; a < dataset.schema().num_attributes(); ++a) {
    const tsdata::Column& column = dataset.column(a);
    if (column.kind() == tsdata::AttributeKind::kNumeric) {
      cells.emplace_back(column.numeric(i));
    } else {
      cells.emplace_back(column.CategoryName(column.code(i)));
    }
  }
  return cells;
}

bool Overlaps(const tsdata::RegionSpec& truth, double start, double end) {
  for (const tsdata::TimeRange& range : truth.ranges()) {
    if (start < range.end && range.start < end) return true;
  }
  return false;
}

struct TenantPlan {
  std::string name;
  simulator::GeneratedDataset data;
  std::string cause;
};

}  // namespace

ServiceReplayOptions::ServiceReplayOptions() {
  // The streamed anomaly must end up well under the detector's 20%
  // small-cluster cutoff, so the normal stretch is 300 s against a 40 s
  // anomaly (~12% of the stream).
  gen.normal_duration_sec = 300.0;
  gen.seed = 20260805;
  service.ingest_workers = 4;
  service.diagnosis_workers = 2;
}

bool ServiceReplayResult::AllCorrect() const {
  if (tenants.empty()) return false;
  return std::all_of(tenants.begin(), tenants.end(),
                     [](const TenantReplayOutcome& t) {
                       return t.top1_correct && t.region_overlaps;
                     });
}

common::JsonValue ServiceReplayResult::ToJson() const {
  common::JsonValue::Object out;
  out["wall_sec"] = wall_sec;
  out["rows_per_sec"] = rows_per_sec;
  out["mean_append_us"] = mean_append_us;
  out["p99_append_us"] = p99_append_us;
  out["rows_acked"] = static_cast<double>(rows_acked);
  out["retries"] = static_cast<double>(retries);
  out["shed_rate"] = shed_rate;
  out["diagnoses_total"] = static_cast<double>(diagnoses_total);
  out["diagnoses_per_sec"] = diagnoses_per_sec;
  out["models_stored"] = static_cast<double>(models_stored);
  out["all_correct"] = AllCorrect();
  common::JsonValue::Array tenant_rows;
  for (const TenantReplayOutcome& t : tenants) {
    common::JsonValue::Object row;
    row["tenant"] = t.tenant;
    row["expected_cause"] = t.expected_cause;
    row["top_cause"] = t.top_cause;
    row["top1_correct"] = t.top1_correct;
    row["region_overlaps"] = t.region_overlaps;
    row["rows_sent"] = static_cast<double>(t.rows_sent);
    row["retries"] = static_cast<double>(t.retries);
    row["diagnoses"] = static_cast<double>(t.diagnoses);
    tenant_rows.push_back(common::JsonValue(std::move(row)));
  }
  out["tenants"] = common::JsonValue(std::move(tenant_rows));
  return common::JsonValue(std::move(out));
}

Result<ServiceReplayResult> RunServiceReplay(
    const ServiceReplayOptions& options,
    service::DurableModelStore* store) {
  TRACE_SPAN("eval.service_replay");
  const std::vector<simulator::AnomalyKind>& all =
      options.kinds.empty() ? simulator::AllAnomalyKinds() : options.kinds;
  if (all.empty() || options.num_tenants == 0) {
    return Status::InvalidArgument("replay needs tenants and anomaly kinds");
  }

  // Per-tenant datasets (independent seeds) and the distinct classes that
  // need a taught model.
  std::vector<TenantPlan> plans = common::ParallelMap(
      options.num_tenants, [&](size_t i) {
        TenantPlan plan;
        plan.name = common::StrFormat("tenant%zu", i);
        simulator::AnomalyKind kind = all[i % all.size()];
        plan.cause = simulator::AnomalyKindName(kind);
        simulator::DatasetGenOptions gen = options.gen;
        gen.seed = options.gen.seed + 17 * i + 1;
        plan.data = simulator::GenerateAnomalyDataset(
            gen, kind, options.anomaly_duration_sec,
            options.anomaly_magnitude);
        return plan;
      });

  std::vector<simulator::AnomalyKind> used(
      all.begin(),
      all.begin() + std::min(all.size(),
                             static_cast<size_t>(options.num_tenants)));
  size_t sets = std::max<size_t>(1, options.train_sets_per_cause);
  std::vector<core::CausalModel> taught = common::ParallelMap(
      used.size() * sets, [&](size_t i) {
        simulator::DatasetGenOptions gen = options.gen;
        gen.seed = options.gen.seed + 100003 + i;  // distinct train stream
        simulator::AnomalyKind kind = used[i / sets];
        simulator::GeneratedDataset train = simulator::GenerateAnomalyDataset(
            gen, kind, options.anomaly_duration_sec,
            options.anomaly_magnitude);
        const core::Explainer::Options& ex = options.service.explainer;
        return BuildCausalModel(
            train, simulator::AnomalyKindName(kind), ex.predicate_options,
            ex.apply_domain_knowledge ? &ex.domain_knowledge : nullptr,
            ex.independence_options);
      });

  service::Service::Options service_options = options.service;
  service_options.store = store;
  service::Service service(service_options);
  service::Server::Options server_options;
  server_options.service = &service;
  server_options.max_connections = options.num_tenants + 4;
  auto server = service::Server::Start(server_options);
  if (!server.ok()) return server.status();

  // Teach the models through the real wire path.
  {
    auto teacher = service::Client::Connect("127.0.0.1", (*server)->port());
    if (!teacher.ok()) return teacher.status();
    for (const core::CausalModel& model : taught) {
      DBSHERLOCK_RETURN_NOT_OK((*teacher)->Teach(model));
    }
    (void)(*teacher)->Quit();
  }

  struct TenantRun {
    TenantReplayOutcome outcome;
    std::vector<double> append_us;
    Status status = Status::OK();
  };
  std::vector<TenantRun> runs(plans.size());

  double start_us = common::Tracer::NowMicros();
  {
    std::vector<std::thread> threads;
    threads.reserve(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      threads.emplace_back([&, i] {
        TenantRun& run = runs[i];
        const TenantPlan& plan = plans[i];
        run.outcome.tenant = plan.name;
        run.outcome.expected_cause = plan.cause;
        auto client =
            service::Client::Connect("127.0.0.1", (*server)->port());
        if (!client.ok()) {
          run.status = client.status();
          return;
        }
        run.status = (*client)->Hello(plan.name, plan.data.data.schema());
        if (!run.status.ok()) return;
        const tsdata::Dataset& data = plan.data.data;
        run.append_us.reserve(data.num_rows());
        for (size_t row = 0; row < data.num_rows(); ++row) {
          std::vector<tsdata::Cell> cells = RowCells(data, row);
          int attempts = 0;
          for (;;) {
            double t0 = common::Tracer::NowMicros();
            auto response = (*client)->Append(plan.name,
                                              data.timestamp(row), cells);
            run.append_us.push_back(common::Tracer::NowMicros() - t0);
            if (!response.ok()) {
              run.status = response.status();
              return;
            }
            if (response->kind == service::Response::Kind::kOk) break;
            if (response->kind == service::Response::Kind::kErr) {
              run.status = response->error;
              return;
            }
            ++run.outcome.retries;
            if (++attempts > options.max_append_retries) {
              run.status = Status::FailedPrecondition(
                  "append shed past the retry budget");
              return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::max(1, response->retry_after_ms)));
          }
          ++run.outcome.rows_sent;
        }
        run.status = (*client)->Flush(plan.name);
        if (!run.status.ok()) return;
        auto diagnoses = (*client)->Diagnoses(plan.name);
        if (!diagnoses.ok()) {
          run.status = diagnoses.status();
          return;
        }
        const auto& list = diagnoses->as_array();
        run.outcome.diagnoses = list.size();
        for (const common::JsonValue& entry : list) {
          auto causes = entry.GetArray("causes");
          if (!causes.ok() || (*causes)->as_array().empty()) continue;
          auto top = (*causes)->as_array().front().GetString("cause");
          if (!top.ok()) continue;
          const common::JsonValue* region = entry.Find("region");
          double start = 0.0, end = 0.0;
          if (region != nullptr) {
            start = region->GetNumber("start").ValueOr(0.0);
            end = region->GetNumber("end").ValueOr(0.0);
          }
          bool overlaps =
              Overlaps(plan.data.regions.abnormal, start, end);
          if (run.outcome.top_cause.empty() || (*top == plan.cause &&
                                                overlaps)) {
            run.outcome.top_cause = *top;
            run.outcome.top1_correct = (*top == plan.cause);
            run.outcome.region_overlaps = overlaps;
          }
        }
        (void)(*client)->Quit();
      });
    }
    for (std::thread& t : threads) t.join();
  }
  double wall_us = common::Tracer::NowMicros() - start_us;

  ServiceReplayResult result;
  result.wall_sec = wall_us / 1e6;
  std::vector<double> all_lat;
  for (TenantRun& run : runs) {
    if (!run.status.ok()) {
      (*server)->Stop();
      service.Stop();
      return run.status;
    }
    result.rows_acked += run.outcome.rows_sent;
    result.retries += run.outcome.retries;
    all_lat.insert(all_lat.end(), run.append_us.begin(),
                   run.append_us.end());
    result.tenants.push_back(std::move(run.outcome));
  }
  if (!all_lat.empty()) {
    double sum = 0.0;
    for (double v : all_lat) sum += v;
    result.mean_append_us = sum / static_cast<double>(all_lat.size());
    std::sort(all_lat.begin(), all_lat.end());
    size_t p99 = std::min(all_lat.size() - 1,
                          static_cast<size_t>(std::ceil(
                              0.99 * static_cast<double>(all_lat.size()))));
    result.p99_append_us = all_lat[p99];
  }
  result.rows_per_sec =
      result.wall_sec > 0
          ? static_cast<double>(result.rows_acked) / result.wall_sec
          : 0.0;
  result.shed_rate =
      (result.rows_acked + result.retries) > 0
          ? static_cast<double>(result.retries) /
                static_cast<double>(result.rows_acked + result.retries)
          : 0.0;
  result.diagnoses_total = static_cast<size_t>(service.total_diagnoses());
  result.diagnoses_per_sec =
      result.wall_sec > 0
          ? static_cast<double>(result.diagnoses_total) / result.wall_sec
          : 0.0;
  if (store != nullptr) result.models_stored = store->num_models();

  (*server)->Stop();
  service.Stop();
  return result;
}

}  // namespace dbsherlock::eval
