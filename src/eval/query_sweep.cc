#include "eval/query_sweep.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <vector>

#include "core/explainer.h"
#include "eval/chaos.h"
#include "query/compiler.h"
#include "query/executor.h"
#include "query/parser.h"
#include "service/client.h"
#include "simulator/dataset_gen.h"
#include "store/tenant_store.h"
#include "tsdata/dataset.h"

namespace dbsherlock::eval {

namespace {

using common::Result;
using common::Status;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Mean and p99 (nearest-rank) of a latency sample, in the sample's unit.
void Summarize(std::vector<double> samples, double* mean, double* p99) {
  *mean = 0.0;
  *p99 = 0.0;
  if (samples.empty()) return;
  double sum = 0.0;
  for (double s : samples) sum += s;
  *mean = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(0.99 * static_cast<double>(samples.size())));
  rank = std::min(std::max<size_t>(rank, 1), samples.size());
  *p99 = samples[rank - 1];
}

std::vector<tsdata::Cell> RowCells(const tsdata::Dataset& data, size_t row) {
  std::vector<tsdata::Cell> cells;
  cells.reserve(data.schema().num_attributes());
  for (size_t a = 0; a < data.schema().num_attributes(); ++a) {
    const tsdata::Column& column = data.column(a);
    if (column.kind() == tsdata::AttributeKind::kNumeric) {
      cells.emplace_back(column.numeric(row));
    } else {
      cells.emplace_back(column.CategoryName(column.code(row)));
    }
  }
  return cells;
}

}  // namespace

common::JsonValue QuerySweepResult::ToJson() const {
  common::JsonValue out = common::JsonValue::Object();
  auto& o = out.as_object();
  o["rows"] = static_cast<double>(rows);
  o["statement"] = statement;

  common::JsonValue frontend = common::JsonValue::Object();
  auto& f = frontend.as_object();
  f["parse_us_mean"] = parse_us_mean;
  f["parse_us_p99"] = parse_us_p99;
  f["compile_us_mean"] = compile_us_mean;
  f["compile_us_p99"] = compile_us_p99;
  f["quantile_segments_total"] = static_cast<double>(quantile_segments_total);
  f["quantile_segments_decoded"] =
      static_cast<double>(quantile_segments_decoded);
  o["frontend"] = std::move(frontend);

  common::JsonValue discovery = common::JsonValue::Object();
  auto& d = discovery.as_object();
  d["segments_total"] = static_cast<double>(segments_total);
  d["pushdown_segments_decoded"] =
      static_cast<double>(pushdown_segments_decoded);
  d["fullscan_segments_decoded"] =
      static_cast<double>(fullscan_segments_decoded);
  d["pushdown_ms"] = pushdown_ms;
  d["fullscan_ms"] = fullscan_ms;
  d["matched_rows"] = static_cast<double>(matched_rows);
  o["discovery"] = std::move(discovery);

  common::JsonValue e2e = common::JsonValue::Object();
  auto& e = e2e.as_object();
  e["queries"] = static_cast<double>(e2e_queries);
  e["explainq_p50_ms"] = e2e_p50_ms;
  e["explainq_p99_ms"] = e2e_p99_ms;
  o["explainq"] = std::move(e2e);
  return out;
}

Result<QuerySweepResult> RunQuerySweep(const QuerySweepOptions& options) {
  QuerySweepResult result;
  result.rows = options.rows;

  std::string root = options.dir;
  if (root.empty()) {
    root = "/tmp/dbsherlock_query_sweep_" + std::to_string(getpid());
  }
  std::string cleanup = "rm -rf '" + root + "'";
  (void)std::system(cleanup.c_str());
  // TenantStore::Open creates only the leaf directory, not parents.
  std::string mkdir = "mkdir -p '" + root + "'";
  (void)std::system(mkdir.c_str());

  // One simulated second per row; the injected cpu plateau gives the
  // high percentile something real to land on.
  simulator::DatasetGenOptions gen;
  gen.normal_duration_sec = static_cast<double>(options.rows);
  gen.seed = options.seed;
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      gen, simulator::AnomalyKind::kCpuSaturation,
      /*anomaly_duration_sec=*/60.0);
  const tsdata::Dataset& data = run.data;
  if (data.num_rows() == 0) return Status::Internal("simulator produced 0 rows");

  store::TenantStore::Options store_options;
  store_options.dir = root + "/store";
  store_options.schema = data.schema();
  store_options.seal_rows = options.seal_rows;
  store_options.fsync_on_seal = false;
  auto open = store::TenantStore::Open(std::move(store_options));
  if (!open.ok()) return open.status();
  std::unique_ptr<store::TenantStore> store = std::move(*open);
  for (size_t row = 0; row < data.num_rows(); ++row) {
    common::Status appended =
        store->Append(data.timestamp(row), RowCells(data, row));
    if (!appended.ok()) return appended;
  }
  common::Status sealed = store->Seal();
  if (!sealed.ok()) return sealed;

  double t_end = data.timestamp(data.num_rows() - 1) + 1.0;
  result.statement = "EXPLAIN WHERE cpu > p99.8 BETWEEN 0 " +
                     query::FormatNumber(t_end) +
                     " RANK BY confidence TOP 3";

  // --- Section 1: front-end latency ----------------------------------
  std::vector<double> parse_us;
  parse_us.reserve(options.parse_iters);
  for (size_t i = 0; i < options.parse_iters; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto parsed = query::Parse(result.statement);
    parse_us.push_back(SecondsSince(t0) * 1e6);
    if (!parsed.ok()) return parsed.status();
  }
  Summarize(std::move(parse_us), &result.parse_us_mean, &result.parse_us_p99);

  auto parsed = query::Parse(result.statement);
  if (!parsed.ok()) return parsed.status();
  query::CompileContext compile_context;
  tsdata::Schema schema = data.schema();
  compile_context.schema = &schema;
  compile_context.history = store.get();
  std::vector<double> compile_us;
  compile_us.reserve(options.compile_iters);
  query::CompiledQuery compiled;
  for (size_t i = 0; i < options.compile_iters; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto c = query::Compile(*parsed, result.statement, compile_context);
    compile_us.push_back(SecondsSince(t0) * 1e6);
    if (!c.ok()) return c.status();
    compiled = std::move(*c);
  }
  Summarize(std::move(compile_us), &result.compile_us_mean,
            &result.compile_us_p99);
  result.quantile_segments_total = compiled.quantile_stats.segments_total;
  result.quantile_segments_decoded = compiled.quantile_stats.segments_decoded;

  // --- Section 2: discovery pushdown vs full decode ------------------
  store::ScanOptions scan;
  scan.t0 = 0.0;
  scan.t1 = t_end;
  for (const query::CompiledCondition& condition : compiled.conditions) {
    scan.bounds.push_back(condition.bound);
  }
  store::ScanStats pushdown_stats, full_stats;
  double best_pushdown = std::numeric_limits<double>::infinity();
  double best_full = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < std::max<size_t>(options.scan_iters, 1); ++i) {
    scan.prune = true;
    auto t0 = std::chrono::steady_clock::now();
    auto pruned = store->ScanWithOptions(scan, &pushdown_stats);
    best_pushdown = std::min(best_pushdown, SecondsSince(t0) * 1e3);
    if (!pruned.ok()) return pruned.status();
    result.matched_rows = pushdown_stats.rows_out;

    scan.prune = false;
    t0 = std::chrono::steady_clock::now();
    auto full = store->ScanWithOptions(scan, &full_stats);
    best_full = std::min(best_full, SecondsSince(t0) * 1e3);
    if (!full.ok()) return full.status();
    if (pruned->num_rows() != full->num_rows()) {
      return Status::Internal("pushdown scan disagrees with full decode");
    }
  }
  result.segments_total = pushdown_stats.segments_total;
  result.pushdown_segments_decoded = pushdown_stats.segments_decoded;
  result.fullscan_segments_decoded = full_stats.segments_decoded;
  result.pushdown_ms = best_pushdown;
  result.fullscan_ms = best_full;

  // --- Section 3: end-to-end EXPLAINQ over the socket ----------------
  if (options.daemon_binary.empty() || options.e2e_queries == 0) {
    return result;
  }
  DaemonProcess daemon;
  DaemonProcess::Options daemon_options;
  daemon_options.binary = options.daemon_binary;
  daemon_options.command = "serve";
  daemon_options.args = {"--port", "0",
                         "--wal-dir", root + "/wal",
                         "--store-dir", root + "/daemon-store",
                         "--seal-rows", std::to_string(options.seal_rows)};
  common::Status started = daemon.Start(daemon_options);
  if (!started.ok()) return started;

  auto client = service::Client::Connect("127.0.0.1", daemon.port());
  if (!client.ok()) return client.status();
  common::Status hello = (*client)->Hello("bench", schema);
  if (!hello.ok()) return hello;
  size_t e2e_rows = std::min(options.e2e_rows, data.num_rows());
  // The tail keeps the injected anomaly (it sits at the end of the run).
  size_t first = data.num_rows() - e2e_rows;
  for (size_t row = first; row < data.num_rows(); ++row) {
    common::Status appended = (*client)->AppendRetrying(
        "bench", data.timestamp(row), RowCells(data, row));
    if (!appended.ok()) return appended;
  }
  common::Status flushed = (*client)->Flush("bench");
  if (!flushed.ok()) return flushed;

  std::string e2e_statement =
      "EXPLAIN WHERE cpu > p99.8 BETWEEN " +
      query::FormatNumber(data.timestamp(first)) + " " +
      query::FormatNumber(t_end) + " RANK BY confidence TOP 3";
  std::vector<double> e2e_ms;
  e2e_ms.reserve(options.e2e_queries);
  for (size_t i = 0; i < options.e2e_queries; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto report = (*client)->Explain("bench", e2e_statement);
    e2e_ms.push_back(SecondsSince(t0) * 1e3);
    if (!report.ok()) return report.status();
  }
  result.e2e_queries = e2e_ms.size();
  std::sort(e2e_ms.begin(), e2e_ms.end());
  result.e2e_p50_ms = e2e_ms[e2e_ms.size() / 2];
  double mean_unused, p99;
  Summarize(std::move(e2e_ms), &mean_unused, &p99);
  result.e2e_p99_ms = p99;
  (void)(*client)->Quit();
  (void)std::system(cleanup.c_str());
  return result;
}

}  // namespace dbsherlock::eval
