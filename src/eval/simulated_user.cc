#include "eval/simulated_user.h"

#include <algorithm>

namespace dbsherlock::eval {

std::string UserTierName(UserTier tier) {
  switch (tier) {
    case UserTier::kPreliminaryKnowledge:
      return "Preliminary DB Knowledge";
    case UserTier::kUsageExperience:
      return "DB Usage Experience";
    case UserTier::kResearchOrDba:
      return "DB Research or DBA Experience";
  }
  return "Unknown";
}

bool AnswerQuestion(const UserStudyQuestion& question,
                    const core::ModelRepository& repository,
                    const core::PredicateGenOptions& options, UserTier tier,
                    const SimulatedUserOptions& user_options,
                    common::Pcg32* rng) {
  double noise = 0.0;
  switch (tier) {
    case UserTier::kPreliminaryKnowledge:
      noise = user_options.noise_preliminary;
      break;
    case UserTier::kUsageExperience:
      noise = user_options.noise_usage;
      break;
    case UserTier::kResearchOrDba:
      noise = user_options.noise_research;
      break;
  }

  tsdata::LabeledRows rows =
      SplitRows(question.dataset->data, question.dataset->regions);
  double best_score = -1e18;
  size_t best_choice = 0;
  for (size_t i = 0; i < question.choices.size(); ++i) {
    const core::CausalModel* model = repository.Find(question.choices[i]);
    double evidence =
        model == nullptr
            ? 0.0
            : core::ModelConfidence(*model, question.dataset->data, rows,
                                    options);
    double score = evidence + rng->NextGaussian(0.0, noise);
    if (score > best_score) {
      best_score = score;
      best_choice = i;
    }
  }
  return question.choices[best_choice] == question.correct;
}

}  // namespace dbsherlock::eval
