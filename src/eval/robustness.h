#ifndef DBSHERLOCK_EVAL_ROBUSTNESS_H_
#define DBSHERLOCK_EVAL_ROBUSTNESS_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "eval/experiment.h"
#include "simulator/fault_injector.h"
#include "tsdata/data_quality.h"

namespace dbsherlock::eval {

/// Configuration of the hostile-telemetry robustness experiment: for every
/// anomaly class and every corruption rate, generate a dataset, corrupt it
/// with the fault injector, optionally repair it, then measure predicate
/// accuracy against the ground truth and causal-model ranking against
/// models trained on CLEAN data (the realistic deployment: models are
/// built during calm calibration runs, inference happens during incidents
/// — which is exactly when collectors misbehave).
struct RobustnessOptions {
  simulator::DatasetGenOptions gen;
  core::PredicateGenOptions predicate_options;
  tsdata::QualityOptions quality;
  simulator::FaultInjectorConfig faults;  // corruption_rate is overridden
  /// Corruption rates swept (0 must be first to pin the clean baseline).
  std::vector<double> corruption_rates = {0.0, 0.02, 0.05, 0.10};
  /// Anomaly duration of the generated test datasets.
  double anomaly_duration_sec = 60.0;
  /// max_spike_run of the third ("despiked") arm, mirroring the CLI's
  /// --repair configuration. Spike masking is lossy on clean data (see
  /// QualityOptions::max_spike_run), so it gets its own arm instead of
  /// contaminating the invariant-restoring "repaired" arm; 0 drops the
  /// arm from the sweep.
  size_t despike_max_run = 2;
  /// Seed offset for the clean training datasets (must differ from the
  /// test datasets' streams).
  uint64_t train_seed_offset = 7777;
};

/// One (class, corruption rate, repair arm) measurement. Arms:
/// "raw" (graceful degradation only), "repaired" (invariant-restoring
/// default repair), "despiked" (repair + opt-in spike masking, the CLI's
/// --repair configuration).
struct RobustnessCell {
  std::string anomaly_class;
  double corruption_rate = 0.0;
  std::string arm = "raw";
  PredicateAccuracy accuracy;
  size_t num_predicates = 0;
  /// Data-quality warnings the explanation carried.
  size_t num_warnings = 0;
  /// Ground truth: faults the injector actually planted.
  size_t faults_injected = 0;
  /// Repair activity (0 in the no-repair arm).
  size_t repair_changes = 0;
  /// Causal-model ranking vs clean-trained models: 1-based rank of the
  /// correct cause (0 = absent) and confidence margin.
  size_t correct_rank = 0;
  double margin = 0.0;
  /// The diagnosis produced at least one ranked cause candidate.
  bool ranked_nonempty = false;
};

struct RobustnessResult {
  std::vector<RobustnessCell> cells;

  /// Cells of one arm at one rate, class order (convenience for tables).
  std::vector<const RobustnessCell*> AtRate(double rate,
                                            const std::string& arm) const;
  /// Machine-readable form written to BENCH_robustness.json.
  common::JsonValue ToJson() const;
};

/// Runs the full sweep: |classes| x |corruption_rates| x arms. Deterministic
/// for a fixed options struct (every random stream is seeded from
/// options.gen.seed / options.faults.seed). Rate 0.0 cells are the
/// uncorrupted baseline: injection is the identity there and default repair
/// round-trips a clean dataset bit-identically, so the raw and repaired
/// arms match the never-corrupted diagnosis exactly. The despiked arm is
/// allowed to deviate at rate 0 — that deviation is precisely the cost of
/// opt-in spike masking the sweep exists to measure.
RobustnessResult RunRobustnessSweep(const RobustnessOptions& options);

}  // namespace dbsherlock::eval

#endif  // DBSHERLOCK_EVAL_ROBUSTNESS_H_
