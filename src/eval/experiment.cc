#include "eval/experiment.h"

#include <algorithm>
#include <limits>

#include "common/stats.h"

namespace dbsherlock::eval {

PredicateAccuracy EvaluatePredicates(
    const std::vector<core::Predicate>& predicates,
    const tsdata::Dataset& dataset, const tsdata::DiagnosisRegions& truth) {
  std::vector<bool> flags(dataset.num_rows(), false);
  for (size_t row = 0; row < dataset.num_rows(); ++row) {
    flags[row] = core::ConjunctMatchesRow(predicates, dataset, row);
  }
  return EvaluateFlags(flags, dataset, truth);
}

PredicateAccuracy EvaluateFlags(const std::vector<bool>& flags,
                                const tsdata::Dataset& dataset,
                                const tsdata::DiagnosisRegions& truth) {
  common::BinaryClassificationCounts counts;
  for (size_t row = 0; row < dataset.num_rows(); ++row) {
    bool actual =
        truth.LabelOf(dataset.timestamp(row)) == tsdata::RowLabel::kAbnormal;
    counts.Add(flags[row], actual);
  }
  PredicateAccuracy acc;
  acc.precision = counts.Precision();
  acc.recall = counts.Recall();
  acc.f1 = counts.F1();
  return acc;
}

Corpus GenerateCorpus(const simulator::DatasetGenOptions& options) {
  Corpus corpus;
  for (simulator::AnomalyKind kind : simulator::AllAnomalyKinds()) {
    corpus.by_class.push_back(
        simulator::GenerateAnomalySeries(options, kind));
  }
  return corpus;
}

core::CausalModel BuildCausalModel(
    const simulator::GeneratedDataset& dataset, const std::string& cause,
    const core::PredicateGenOptions& options,
    const core::DomainKnowledge* knowledge,
    const core::IndependenceTestOptions& independence) {
  core::PredicateGenResult generated =
      core::GeneratePredicates(dataset.data, dataset.regions, options);
  std::vector<core::AttributeDiagnosis> diagnoses =
      std::move(generated.predicates);
  if (knowledge != nullptr && !knowledge->empty()) {
    diagnoses = knowledge->PruneSecondarySymptoms(
        dataset.data, std::move(diagnoses), independence);
  }
  core::CausalModel model;
  model.cause = cause;
  for (const auto& d : diagnoses) model.predicates.push_back(d.predicate);
  return model;
}

core::ModelRepository BuildMergedRepository(
    const Corpus& corpus, const std::vector<std::vector<size_t>>& train_indices,
    const core::PredicateGenOptions& options,
    const core::DomainKnowledge* knowledge) {
  core::ModelRepository repo;
  for (size_t c = 0; c < corpus.num_classes(); ++c) {
    for (size_t idx : train_indices[c]) {
      repo.Add(BuildCausalModel(corpus.by_class[c][idx],
                                corpus.ClassName(c), options, knowledge));
    }
  }
  return repo;
}

double ConfidenceOn(const core::CausalModel& model,
                    const simulator::GeneratedDataset& dataset,
                    const core::PredicateGenOptions& options) {
  tsdata::LabeledRows rows = SplitRows(dataset.data, dataset.regions);
  return core::ModelConfidence(model, dataset.data, rows, options);
}

RankingOutcome RankAgainst(const core::ModelRepository& repository,
                           const simulator::GeneratedDataset& dataset,
                           const std::string& correct_cause,
                           const core::PredicateGenOptions& options) {
  RankingOutcome out;
  tsdata::LabeledRows rows = SplitRows(dataset.data, dataset.regions);
  // No lambda cutoff here: experiments need the full ranking to compute
  // margins even when every confidence is low.
  out.ranked = repository.Rank(dataset.data, rows, options,
                               -std::numeric_limits<double>::infinity());

  double correct_conf = 0.0;
  double best_incorrect = 0.0;
  bool saw_correct = false;
  bool saw_incorrect = false;
  for (size_t i = 0; i < out.ranked.size(); ++i) {
    const core::RankedCause& rc = out.ranked[i];
    if (rc.cause == correct_cause) {
      saw_correct = true;
      correct_conf = rc.confidence;
      out.correct_rank = i + 1;
    } else if (!saw_incorrect || rc.confidence > best_incorrect) {
      saw_incorrect = true;
      best_incorrect = rc.confidence;
    }
  }
  if (saw_correct) {
    out.margin = saw_incorrect ? correct_conf - best_incorrect : correct_conf;
  } else {
    out.margin = saw_incorrect ? -best_incorrect : 0.0;
  }
  return out;
}

std::vector<std::vector<size_t>> RandomTrainSplit(size_t num_classes,
                                                  size_t n, size_t train_count,
                                                  common::Pcg32* rng) {
  std::vector<std::vector<size_t>> out;
  out.reserve(num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    std::vector<size_t> picked = rng->SampleIndices(n, train_count);
    std::sort(picked.begin(), picked.end());
    out.push_back(std::move(picked));
  }
  return out;
}

std::vector<size_t> TestIndices(const std::vector<size_t>& train, size_t n) {
  std::vector<size_t> out;
  for (size_t i = 0; i < n; ++i) {
    if (std::find(train.begin(), train.end(), i) == train.end()) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace dbsherlock::eval
