#include "eval/robustness.h"

#include <cmath>
#include <utility>

namespace dbsherlock::eval {

namespace {

/// Evaluates one corrupted (and possibly repaired) dataset: predicates,
/// accuracy, warnings, and ranking against the clean-trained repository.
RobustnessCell EvaluateArm(const tsdata::Dataset& data,
                           const simulator::GeneratedDataset& truth,
                           const core::ModelRepository& repository,
                           const RobustnessOptions& options) {
  RobustnessCell cell;
  core::PredicateGenResult generated = core::GeneratePredicates(
      data, truth.regions, options.predicate_options);
  cell.num_predicates = generated.predicates.size();
  cell.num_warnings = generated.warnings.size();
  cell.accuracy =
      EvaluatePredicates(generated.PredicateList(), data, truth.regions);

  // Ranking uses the corrupted data as the inquiry target but the ground
  // truth regions as the DBA's selection (the DBA marks times, not rows).
  simulator::GeneratedDataset inquiry;
  inquiry.data = data;
  inquiry.regions = truth.regions;
  inquiry.label = truth.label;
  RankingOutcome outcome = RankAgainst(repository, inquiry, truth.label,
                                       options.predicate_options);
  cell.correct_rank = outcome.correct_rank;
  cell.margin = outcome.margin;
  cell.ranked_nonempty = !outcome.ranked.empty();
  return cell;
}

}  // namespace

std::vector<const RobustnessCell*> RobustnessResult::AtRate(
    double rate, const std::string& arm) const {
  std::vector<const RobustnessCell*> out;
  for (const RobustnessCell& cell : cells) {
    if (cell.arm == arm && std::fabs(cell.corruption_rate - rate) < 1e-12) {
      out.push_back(&cell);
    }
  }
  return out;
}

common::JsonValue RobustnessResult::ToJson() const {
  common::JsonValue::Array arr;
  for (const RobustnessCell& cell : cells) {
    common::JsonValue::Object o;
    o["class"] = cell.anomaly_class;
    o["corruption_rate"] = cell.corruption_rate;
    o["arm"] = cell.arm;
    o["precision"] = cell.accuracy.precision;
    o["recall"] = cell.accuracy.recall;
    o["f1"] = cell.accuracy.f1;
    o["num_predicates"] = static_cast<double>(cell.num_predicates);
    o["num_warnings"] = static_cast<double>(cell.num_warnings);
    o["faults_injected"] = static_cast<double>(cell.faults_injected);
    o["repair_changes"] = static_cast<double>(cell.repair_changes);
    o["correct_rank"] = static_cast<double>(cell.correct_rank);
    o["margin"] = cell.margin;
    o["ranked_nonempty"] = cell.ranked_nonempty;
    arr.push_back(common::JsonValue(std::move(o)));
  }
  common::JsonValue::Object root;
  root["experiment"] = "corruption_robustness";
  root["cells"] = common::JsonValue(std::move(arr));
  return common::JsonValue(std::move(root));
}

RobustnessResult RunRobustnessSweep(const RobustnessOptions& options) {
  RobustnessResult result;
  const std::vector<simulator::AnomalyKind>& kinds =
      simulator::AllAnomalyKinds();

  // Train one causal model per class on CLEAN data from an independent
  // seed, once for the whole sweep.
  core::ModelRepository repository;
  for (size_t c = 0; c < kinds.size(); ++c) {
    simulator::DatasetGenOptions train_gen = options.gen;
    train_gen.seed = options.gen.seed + options.train_seed_offset + c;
    simulator::GeneratedDataset train = simulator::GenerateAnomalyDataset(
        train_gen, kinds[c], options.anomaly_duration_sec);
    repository.Add(BuildCausalModel(train, train.label,
                                    options.predicate_options));
  }

  for (size_t c = 0; c < kinds.size(); ++c) {
    simulator::DatasetGenOptions test_gen = options.gen;
    test_gen.seed = options.gen.seed + c;
    simulator::GeneratedDataset test = simulator::GenerateAnomalyDataset(
        test_gen, kinds[c], options.anomaly_duration_sec);

    for (size_t i = 0; i < options.corruption_rates.size(); ++i) {
      double rate = options.corruption_rates[i];
      simulator::FaultInjectorConfig faults = options.faults;
      faults.corruption_rate = rate;
      faults.seed = options.faults.seed + c * 1000003ULL + i * 7919ULL;
      common::Result<simulator::FaultedDataset> faulted =
          simulator::InjectFaults(test.data, faults);
      if (!faulted.ok()) continue;  // unreachable: config validated above

      // Arm 1: raw corrupted data, graceful degradation only.
      RobustnessCell raw =
          EvaluateArm(faulted->data, test, repository, options);
      raw.anomaly_class = test.label;
      raw.corruption_rate = rate;
      raw.arm = "raw";
      raw.faults_injected = faulted->counts.total();
      result.cells.push_back(std::move(raw));

      // Arm 2: invariant-restoring repair first, then diagnose.
      common::Result<tsdata::RepairedDataset> repaired =
          tsdata::RepairDataset(faulted->data, options.quality);
      if (!repaired.ok()) continue;  // unreachable: options validated
      RobustnessCell fixed =
          EvaluateArm(repaired->data, test, repository, options);
      fixed.anomaly_class = test.label;
      fixed.corruption_rate = rate;
      fixed.arm = "repaired";
      fixed.faults_injected = faulted->counts.total();
      fixed.repair_changes = repaired->summary.total_changes();
      result.cells.push_back(std::move(fixed));

      // Arm 3: repair + opt-in spike masking (the CLI's --repair).
      if (options.despike_max_run > 0) {
        tsdata::QualityOptions despike = options.quality;
        despike.max_spike_run = options.despike_max_run;
        common::Result<tsdata::RepairedDataset> despiked =
            tsdata::RepairDataset(faulted->data, despike);
        if (!despiked.ok()) continue;  // unreachable: options validated
        RobustnessCell cell =
            EvaluateArm(despiked->data, test, repository, options);
        cell.anomaly_class = test.label;
        cell.corruption_rate = rate;
        cell.arm = "despiked";
        cell.faults_injected = faulted->counts.total();
        cell.repair_changes = despiked->summary.total_changes();
        result.cells.push_back(std::move(cell));
      }
    }
  }
  return result;
}

}  // namespace dbsherlock::eval
