#ifndef DBSHERLOCK_EVAL_EXPERIMENT_H_
#define DBSHERLOCK_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "core/causal_model.h"
#include "core/explainer.h"
#include "core/model_repository.h"
#include "simulator/dataset_gen.h"

namespace dbsherlock::eval {

/// Precision / recall / F1 of a predicate conjunct evaluated over tuples:
/// a row is predicted abnormal when it satisfies every predicate, and the
/// ground truth is the dataset's abnormal region (the paper's accuracy
/// metric for Figures 7 and 9).
struct PredicateAccuracy {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

PredicateAccuracy EvaluatePredicates(
    const std::vector<core::Predicate>& predicates,
    const tsdata::Dataset& dataset, const tsdata::DiagnosisRegions& truth);

/// Same, for a row-flag vector (used by the PerfXplain comparison).
PredicateAccuracy EvaluateFlags(const std::vector<bool>& flags,
                                const tsdata::Dataset& dataset,
                                const tsdata::DiagnosisRegions& truth);

/// The full experiment corpus of Section 8.2: 11 datasets (anomaly
/// durations 30..80 s) for each of the 10 anomaly classes.
struct Corpus {
  /// by_class[c] holds the 11 datasets of class AllAnomalyKinds()[c].
  std::vector<std::vector<simulator::GeneratedDataset>> by_class;

  size_t num_classes() const { return by_class.size(); }
  const std::string ClassName(size_t c) const {
    return simulator::AnomalyKindName(simulator::AllAnomalyKinds()[c]);
  }
};

/// Generates the corpus (110 datasets for TPC-C defaults). `options.seed`
/// controls every dataset's stream.
Corpus GenerateCorpus(const simulator::DatasetGenOptions& options);

/// Builds a single-dataset causal model for `dataset`, labeled `cause`
/// (Section 8.3 constructs these with theta = 0.2). Domain-knowledge
/// pruning is applied when `knowledge` is non-null.
core::CausalModel BuildCausalModel(
    const simulator::GeneratedDataset& dataset, const std::string& cause,
    const core::PredicateGenOptions& options,
    const core::DomainKnowledge* knowledge = nullptr,
    const core::IndependenceTestOptions& independence = {});

/// Builds one merged model per class from the datasets at `train_indices`
/// and returns a repository holding all of them.
core::ModelRepository BuildMergedRepository(
    const Corpus& corpus, const std::vector<std::vector<size_t>>& train_indices,
    const core::PredicateGenOptions& options,
    const core::DomainKnowledge* knowledge = nullptr);

/// Confidence of `model` on a generated dataset (wraps ModelConfidence).
double ConfidenceOn(const core::CausalModel& model,
                    const simulator::GeneratedDataset& dataset,
                    const core::PredicateGenOptions& options);

/// Result of ranking all stored causes against one dataset.
struct RankingOutcome {
  std::vector<core::RankedCause> ranked;  // descending confidence
  /// Confidence of the correct cause minus the best incorrect confidence
  /// (the paper's "margin of confidence"; negative when an incorrect cause
  /// ranks first). Uses the unfiltered rankings (no lambda cutoff).
  double margin = 0.0;
  /// 1-based position of the correct cause, or 0 when absent entirely.
  size_t correct_rank = 0;

  bool CorrectInTopK(size_t k) const {
    return correct_rank >= 1 && correct_rank <= k;
  }
};

RankingOutcome RankAgainst(const core::ModelRepository& repository,
                           const simulator::GeneratedDataset& dataset,
                           const std::string& correct_cause,
                           const core::PredicateGenOptions& options);

/// Random split helper: picks `train_count` distinct indices out of `n`
/// for every class, using `rng`.
std::vector<std::vector<size_t>> RandomTrainSplit(size_t num_classes,
                                                  size_t n, size_t train_count,
                                                  common::Pcg32* rng);

/// Complement of a train split ({0..n-1} minus train).
std::vector<size_t> TestIndices(const std::vector<size_t>& train, size_t n);

}  // namespace dbsherlock::eval

#endif  // DBSHERLOCK_EVAL_EXPERIMENT_H_
