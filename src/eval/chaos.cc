#include "eval/chaos.h"

#include <errno.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <thread>

#include "common/parallel.h"
#include "common/random.h"
#include "common/strings.h"
#include "common/trace.h"
#include "eval/experiment.h"

namespace dbsherlock::eval {

namespace {

using common::Result;
using common::Status;

constexpr int kWireRetries = 50;
constexpr auto kWireRetryPause = std::chrono::milliseconds(20);

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError("mkdir " + path + ": " + std::strerror(errno));
}

/// Materializes row `i` of `dataset` in AppendRow cell form.
std::vector<tsdata::Cell> RowCells(const tsdata::Dataset& dataset, size_t i) {
  std::vector<tsdata::Cell> cells;
  cells.reserve(dataset.schema().num_attributes());
  for (size_t a = 0; a < dataset.schema().num_attributes(); ++a) {
    const tsdata::Column& column = dataset.column(a);
    if (column.kind() == tsdata::AttributeKind::kNumeric) {
      cells.emplace_back(column.numeric(i));
    } else {
      cells.emplace_back(column.CategoryName(column.code(i)));
    }
  }
  return cells;
}

/// Timestamp identity that survives a CSV round-trip (micro-second grid).
int64_t TsKey(double ts) { return std::llround(ts * 1e6); }

struct TenantPlan {
  std::string name;
  simulator::GeneratedDataset data;
  std::string cause;
};

}  // namespace

DaemonProcess::~DaemonProcess() {
  if (pid_ > 0) Kill9();
  if (out_ != nullptr) std::fclose(out_);
}

void DaemonProcess::Reap(int signal) {
  if (pid_ <= 0) return;
  ::kill(pid_, signal);
  ::waitpid(pid_, nullptr, 0);
  pid_ = -1;
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
}

Status DaemonProcess::Start(const Options& options) {
  if (pid_ > 0) {
    return Status::FailedPrecondition("daemon already running");
  }
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  pid_ = ::fork();
  if (pid_ < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    pid_ = -1;
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid_ == 0) {
    // Child: stdout -> pipe (the LISTENING handshake); stderr inherited
    // so daemon logs interleave with the harness's output.
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<const char*> argv = {options.binary.c_str(),
                                     options.command.c_str()};
    for (const std::string& arg : options.args) argv.push_back(arg.c_str());
    argv.push_back(nullptr);
    ::execv(options.binary.c_str(), const_cast<char* const*>(argv.data()));
    _exit(127);
  }
  ::close(fds[1]);
  out_ = ::fdopen(fds[0], "r");
  if (out_ == nullptr) {
    Kill9();
    return Status::IoError("fdopen on the daemon stdout pipe failed");
  }
  char line[256];
  while (std::fgets(line, sizeof(line), out_) != nullptr) {
    if (std::sscanf(line, "LISTENING %d", &port_) == 1) return Status::OK();
  }
  Kill9();
  return Status::IoError("daemon exited before LISTENING: " + options.binary);
}

void DaemonProcess::Kill9() { Reap(SIGKILL); }

Result<int> DaemonProcess::Terminate() {
  if (pid_ <= 0) {
    return Status::FailedPrecondition("daemon not running");
  }
  ::kill(pid_, SIGTERM);
  int status = 0;
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  // A signal death maps onto the shell's 128+N convention so the caller's
  // `exit_code == 0` assertion still fails loudly.
  return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

ChaosOptions::ChaosOptions() {
  gen.seed = 20260808;
  // Crash recovery pauses can outlast one RETRY_AFTER budget; the chaos
  // writer is patient by default.
  retry.max_retries = 100000;
  retry.backoff_budget_ms = 60000;
}

common::JsonValue ChaosResult::ToJson() const {
  common::JsonValue::Object out;
  out["ok"] = ok;
  out["seed"] = static_cast<double>(seed);
  out["fault_schedule"] = fault_schedule;
  out["kills"] = static_cast<double>(kills);
  out["wall_sec"] = wall_sec;
  out["rows_acked"] = static_cast<double>(rows_acked);
  out["resent_rows"] = static_cast<double>(resent_rows);
  out["retries"] = static_cast<double>(retries);
  out["reconnects"] = static_cast<double>(reconnects);
  out["shed_rate"] = shed_rate;
  out["models_taught"] = static_cast<double>(models_taught);
  out["models_recovered"] = static_cast<double>(models_recovered);
  out["health_state"] = health_state;
  out["daemon_exit_code"] = static_cast<double>(daemon_exit_code);
  common::JsonValue::Array recovery;
  for (double ms : recovery_ms) recovery.push_back(ms);
  out["recovery_ms"] = common::JsonValue(std::move(recovery));
  common::JsonValue::Array bad;
  for (const std::string& v : violations) bad.push_back(v);
  out["violations"] = common::JsonValue(std::move(bad));
  common::JsonValue::Array tenant_rows;
  for (const ChaosTenantOutcome& t : tenants) {
    common::JsonValue::Object row;
    row["tenant"] = t.tenant;
    row["expected_cause"] = t.expected_cause;
    row["top_cause"] = t.top_cause;
    row["top1_correct"] = t.top1_correct;
    row["rows_sent"] = static_cast<double>(t.rows_sent);
    row["resent_rows"] = static_cast<double>(t.resent_rows);
    row["retries"] = static_cast<double>(t.retries);
    row["reconnects"] = static_cast<double>(t.reconnects);
    row["exactly_once"] = t.exactly_once;
    row["missing_ts"] = static_cast<double>(t.missing_ts);
    row["duplicate_ts"] = static_cast<double>(t.duplicate_ts);
    tenant_rows.push_back(common::JsonValue(std::move(row)));
  }
  out["tenants"] = common::JsonValue(std::move(tenant_rows));
  return common::JsonValue(std::move(out));
}

Result<ChaosResult> RunChaosEpisode(const ChaosOptions& options) {
  TRACE_SPAN("eval.chaos");
  if (options.daemon_path.empty() || options.work_dir.empty()) {
    return Status::InvalidArgument("chaos needs daemon_path and work_dir");
  }
  const std::vector<simulator::AnomalyKind>& all =
      options.kinds.empty() ? simulator::AllAnomalyKinds() : options.kinds;
  if (all.empty() || options.num_tenants == 0) {
    return Status::InvalidArgument("chaos needs tenants and anomaly kinds");
  }
  DBSHERLOCK_RETURN_NOT_OK(EnsureDir(options.work_dir));
  std::string wal_dir = options.work_dir + "/wal";
  std::string store_dir = options.work_dir + "/store";
  DBSHERLOCK_RETURN_NOT_OK(EnsureDir(wal_dir));
  DBSHERLOCK_RETURN_NOT_OK(EnsureDir(store_dir));

  // Per-tenant streams (independent seeds) plus offline-trained models
  // for the distinct classes, mirroring service_replay.
  std::vector<TenantPlan> plans = common::ParallelMap(
      options.num_tenants, [&](size_t i) {
        TenantPlan plan;
        plan.name = common::StrFormat("tenant%zu", i);
        simulator::AnomalyKind kind = all[i % all.size()];
        plan.cause = simulator::AnomalyKindName(kind);
        simulator::DatasetGenOptions gen = options.gen;
        gen.seed = options.gen.seed + 17 * i + 1;
        plan.data = simulator::GenerateAnomalyDataset(
            gen, kind, options.anomaly_duration_sec,
            options.anomaly_magnitude);
        return plan;
      });
  std::vector<simulator::AnomalyKind> used(
      all.begin(),
      all.begin() + std::min(all.size(), options.num_tenants));
  size_t sets = std::max<size_t>(1, options.train_sets_per_cause);
  core::Explainer::Options ex;  // defaults match the daemon's explainer
  std::vector<core::CausalModel> taught = common::ParallelMap(
      used.size() * sets, [&](size_t i) {
        simulator::DatasetGenOptions gen = options.gen;
        gen.seed = options.gen.seed + 100003 + i;
        simulator::AnomalyKind kind = used[i / sets];
        simulator::GeneratedDataset train = simulator::GenerateAnomalyDataset(
            gen, kind, options.anomaly_duration_sec,
            options.anomaly_magnitude);
        return BuildCausalModel(
            train, simulator::AnomalyKindName(kind), ex.predicate_options,
            ex.apply_domain_knowledge ? &ex.domain_knowledge : nullptr,
            ex.independence_options);
      });

  DaemonProcess daemon;
  DaemonProcess::Options dopts;
  dopts.binary = options.daemon_path;
  dopts.args = {"--port",
                "0",
                "--wal-dir",
                wal_dir,
                "--store-dir",
                store_dir,
                "--seal-rows",
                std::to_string(options.seal_rows),
                "--queue-capacity",
                std::to_string(options.queue_capacity),
                "--retry-after-ms",
                "5",
                // The episode diagnoses retrospectively (DIAGNOSE_RANGE);
                // online detection would only add nondeterministic load.
                "--warmup-rows",
                "1000000000"};
  if (!options.fault_schedule.empty()) {
    dopts.args.push_back("--fault-schedule");
    dopts.args.push_back(options.fault_schedule);
  }

  double episode_start = common::Tracer::NowMicros();
  DBSHERLOCK_RETURN_NOT_OK(daemon.Start(dopts));

  ChaosResult result;
  result.seed = options.seed;
  result.fault_schedule = options.fault_schedule;

  service::Client::Options copts;
  copts.connect_timeout_ms = options.connect_timeout_ms;
  copts.deadline_ms = options.deadline_ms;

  // Teach over the wire, patiently: under an aggressive schedule a TEACH
  // may see resets before one lands. Only acked teaches are counted — the
  // durability invariant covers exactly those.
  {
    auto teacher =
        service::Client::Connect("127.0.0.1", daemon.port(), copts);
    if (!teacher.ok()) return teacher.status();
    for (const core::CausalModel& model : taught) {
      Status status;
      for (int attempt = 0; attempt < kWireRetries; ++attempt) {
        status = (*teacher)->Teach(model);
        if (status.ok()) break;
        (void)(*teacher)->Reconnect();
        std::this_thread::sleep_for(kWireRetryPause);
      }
      if (!status.ok()) return status;
      ++result.models_taught;
    }
    (void)(*teacher)->Quit();
  }

  struct TenantState {
    const TenantPlan* plan = nullptr;
    size_t cursor = 0;       // next dataset row to send
    uint64_t next_seq = 1;   // idempotency sequence, fresh per attempt row
    std::unique_ptr<service::Client> client;
    ChaosTenantOutcome out;
  };
  std::vector<TenantState> states(plans.size());
  size_t total_rows = 0;
  for (size_t i = 0; i < plans.size(); ++i) {
    states[i].plan = &plans[i];
    states[i].out.tenant = plans[i].name;
    states[i].out.expected_cause = plans[i].cause;
    total_rows += plans[i].data.data.num_rows();
  }

  // (Re)connect one tenant; on resume, rewind the cursor to the first row
  // strictly after the durable high-water mark — everything past it died
  // with the unsealed tail and must be resent.
  auto connect_tenant = [&](TenantState& state, bool resume) -> Status {
    Status last_error;
    for (int attempt = 0; attempt < kWireRetries; ++attempt) {
      auto client =
          service::Client::Connect("127.0.0.1", daemon.port(), copts);
      if (!client.ok()) {
        last_error = client.status();
        std::this_thread::sleep_for(kWireRetryPause);
        continue;
      }
      auto last = (*client)->HelloResume(state.plan->name,
                                         state.plan->data.data.schema());
      if (!last.ok()) {
        last_error = last.status();
        std::this_thread::sleep_for(kWireRetryPause);
        continue;
      }
      state.client = std::move(*client);
      if (resume) {
        size_t rewound = 0;
        if (last->has_value()) {
          const tsdata::Dataset& data = state.plan->data.data;
          while (rewound < state.cursor &&
                 data.timestamp(rewound) <= **last) {
            ++rewound;
          }
        }
        state.out.resent_rows += state.cursor - rewound;
        state.cursor = rewound;
      }
      return Status::OK();
    }
    return last_error;
  };
  for (TenantState& state : states) {
    DBSHERLOCK_RETURN_NOT_OK(connect_tenant(state, /*resume=*/false));
  }

  // kill -9 points: roughly evenly spread over the stream, jittered so
  // different seeds crash at different seal/queue phases.
  common::Pcg32 rng(options.seed, 91);
  std::vector<size_t> kill_at;
  for (size_t k = 0; k < options.kills; ++k) {
    double base = static_cast<double>(total_rows) *
                  static_cast<double>(k + 1) /
                  static_cast<double>(options.kills + 1);
    double span = static_cast<double>(total_rows) /
                  (4.0 * static_cast<double>(options.kills + 1));
    double jitter = (rng.NextDouble() * 2.0 - 1.0) * span;
    kill_at.push_back(static_cast<size_t>(std::max(1.0, base + jitter)));
  }
  std::sort(kill_at.begin(), kill_at.end());

  service::RetryPolicy policy = options.retry;
  policy.seed = options.seed;

  size_t appends = 0;
  size_t next_kill = 0;
  bool pending_recovery = false;
  double recovery_t0 = 0.0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (TenantState& state : states) {
      const tsdata::Dataset& data = state.plan->data.data;
      if (state.cursor >= data.num_rows()) continue;
      progress = true;
      if (next_kill < kill_at.size() && appends >= kill_at[next_kill]) {
        ++next_kill;
        ++result.kills;
        daemon.Kill9();
        recovery_t0 = common::Tracer::NowMicros();
        DBSHERLOCK_RETURN_NOT_OK(daemon.Start(dopts));
        for (TenantState& other : states) {
          DBSHERLOCK_RETURN_NOT_OK(connect_tenant(other, /*resume=*/true));
        }
        pending_recovery = true;
      }
      double ts = data.timestamp(state.cursor);
      std::vector<tsdata::Cell> cells = RowCells(data, state.cursor);
      DBSHERLOCK_RETURN_NOT_OK(state.client->AppendSeqRetrying(
          state.plan->name, state.next_seq++, ts, cells, policy,
          &state.out.retries, &state.out.reconnects));
      ++state.cursor;
      ++appends;
      if (pending_recovery) {
        result.recovery_ms.push_back(
            (common::Tracer::NowMicros() - recovery_t0) / 1000.0);
        pending_recovery = false;
      }
    }
  }

  // --- Verification ---------------------------------------------------
  auto note = [&result](std::string violation) {
    result.violations.push_back(std::move(violation));
  };

  for (TenantState& state : states) {
    const std::string& name = state.plan->name;
    const tsdata::Dataset& data = state.plan->data.data;
    state.out.rows_sent = data.num_rows();

    // Flush pushes every acked row out of the ingest queue into the
    // history store so the exactly-once scan below sees all of them.
    Status flushed;
    for (int attempt = 0; attempt < kWireRetries; ++attempt) {
      flushed = state.client->Flush(name);
      if (flushed.ok()) break;
      (void)state.client->Reconnect();
      std::this_thread::sleep_for(kWireRetryPause);
    }
    if (!flushed.ok()) {
      note("flush failed for " + name + ": " + flushed.ToString());
      continue;
    }

    Result<common::JsonValue> rows = Status::Internal("query not attempted");
    for (int attempt = 0; attempt < kWireRetries; ++attempt) {
      rows = state.client->Query(name, -1e18, 1e18);
      if (rows.ok()) break;
      (void)state.client->Reconnect();
      std::this_thread::sleep_for(kWireRetryPause);
    }
    if (!rows.ok()) {
      note("query failed for " + name + ": " + rows.status().ToString());
      continue;
    }
    auto csv = rows->GetString("csv");
    if (!csv.ok()) {
      note("query response for " + name + " lacks csv");
      continue;
    }
    // Count stored timestamps (first CSV column, header skipped).
    std::map<int64_t, size_t> stored;
    size_t pos = csv->find('\n');  // skip the header line
    while (pos != std::string::npos && pos + 1 < csv->size()) {
      size_t end = csv->find('\n', pos + 1);
      std::string line = csv->substr(
          pos + 1,
          (end == std::string::npos ? csv->size() : end) - pos - 1);
      pos = end;
      if (line.empty()) continue;
      auto ts = common::ParseDouble(line.substr(0, line.find(',')));
      if (!ts.ok()) {
        note("unparseable timestamp in " + name + " history: " + line);
        break;
      }
      ++stored[TsKey(*ts)];
    }
    std::set<int64_t> expected;
    for (size_t i = 0; i < data.num_rows(); ++i) {
      expected.insert(TsKey(data.timestamp(i)));
    }
    for (int64_t key : expected) {
      auto it = stored.find(key);
      if (it == stored.end()) {
        ++state.out.missing_ts;
      } else if (it->second > 1) {
        ++state.out.duplicate_ts;
      }
    }
    for (const auto& [key, count] : stored) {
      if (!expected.contains(key)) ++state.out.duplicate_ts;
    }
    state.out.exactly_once =
        state.out.missing_ts == 0 && state.out.duplicate_ts == 0;
    if (!state.out.exactly_once) {
      note(common::StrFormat(
          "%s: acked rows not stored exactly once (%zu missing, %zu "
          "duplicated)",
          name.c_str(), state.out.missing_ts, state.out.duplicate_ts));
    }

    if (options.diagnose &&
        !state.plan->data.regions.abnormal.ranges().empty()) {
      const tsdata::TimeRange& truth =
          state.plan->data.regions.abnormal.ranges().front();
      Result<common::JsonValue> diagnosis =
          Status::Internal("diagnosis not attempted");
      for (int attempt = 0; attempt < kWireRetries; ++attempt) {
        diagnosis =
            state.client->DiagnoseRange(name, truth.start, truth.end);
        if (diagnosis.ok()) break;
        (void)state.client->Reconnect();
        std::this_thread::sleep_for(kWireRetryPause);
      }
      if (!diagnosis.ok()) {
        note("diagnose_range failed for " + name + ": " +
             diagnosis.status().ToString());
      } else {
        auto causes = diagnosis->GetArray("causes");
        if (causes.ok() && !(*causes)->as_array().empty()) {
          auto top = (*causes)->as_array().front().GetString("cause");
          if (top.ok()) {
            state.out.top_cause = *top;
            state.out.top1_correct = (*top == state.plan->cause);
          }
        }
        if (!state.out.top1_correct) {
          note(name + ": expected top-1 cause " + state.plan->cause +
               ", got " +
               (state.out.top_cause.empty() ? "<none>"
                                            : state.out.top_cause));
        }
      }
    }
  }

  // Acked models must have survived every crash.
  {
    // The fault schedule outlives the stream, so even the verification
    // reads can eat an injected reset — retry them like every other call.
    Result<common::JsonValue> models = Status::Internal("not attempted");
    for (int attempt = 0; attempt < kWireRetries; ++attempt) {
      models = states.front().client->Models();
      if (models.ok()) break;
      (void)states.front().client->Reconnect();
      std::this_thread::sleep_for(kWireRetryPause);
    }
    if (!models.ok()) {
      note("MODELS failed: " + models.status().ToString());
    } else {
      std::set<std::string> recovered;
      auto list = models->GetArray("models");
      if (list.ok()) {
        for (const common::JsonValue& entry : (*list)->as_array()) {
          auto cause = entry.GetString("cause");
          if (cause.ok()) recovered.insert(*cause);
        }
      }
      std::set<std::string> taught_causes;
      for (const core::CausalModel& model : taught) {
        taught_causes.insert(model.cause);
      }
      for (const std::string& cause : taught_causes) {
        if (recovered.contains(cause)) {
          ++result.models_recovered;
        } else {
          note("taught model lost across restart: " + cause);
        }
      }
    }
    Result<common::JsonValue> health = Status::Internal("not attempted");
    for (int attempt = 0; attempt < kWireRetries; ++attempt) {
      health = states.front().client->Health();
      if (health.ok()) break;
      (void)states.front().client->Reconnect();
      std::this_thread::sleep_for(kWireRetryPause);
    }
    if (health.ok()) {
      auto health_state = health->GetString("state");
      if (health_state.ok()) result.health_state = *health_state;
    }
    for (TenantState& state : states) (void)state.client->Quit();
  }

  auto exit_code = daemon.Terminate();
  if (!exit_code.ok()) {
    note("terminate failed: " + exit_code.status().ToString());
  } else {
    result.daemon_exit_code = *exit_code;
    if (*exit_code != 0) {
      note(common::StrFormat("daemon exited uncleanly with code %d",
                             *exit_code));
    }
  }

  for (TenantState& state : states) {
    result.rows_acked += state.out.rows_sent;
    result.resent_rows += state.out.resent_rows;
    result.retries += state.out.retries;
    result.reconnects += state.out.reconnects;
    result.tenants.push_back(std::move(state.out));
  }
  uint64_t attempts =
      result.rows_acked + result.resent_rows + result.retries;
  result.shed_rate =
      attempts > 0
          ? static_cast<double>(result.retries) /
                static_cast<double>(attempts)
          : 0.0;
  result.wall_sec =
      (common::Tracer::NowMicros() - episode_start) / 1e6;
  result.ok = result.violations.empty();
  return result;
}

}  // namespace dbsherlock::eval
