#ifndef DBSHERLOCK_EVAL_QUERY_SWEEP_H_
#define DBSHERLOCK_EVAL_QUERY_SWEEP_H_

#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/status.h"

namespace dbsherlock::eval {

/// Benchmark harness for the DQL pipeline (DESIGN.md §16, bench_query /
/// run_benchmarks.sh --query). Three sections:
///  1. front-end latency — Parse() alone, then Compile() including exact
///     percentile resolution against the stored history's zone maps;
///  2. discovery pushdown — the same compiled WHERE window scanned with
///     zone-map pruning on vs the prune-free full decode, with segment
///     decode counts and wall time for both;
///  3. end-to-end EXPLAINQ — a real `dbsherlockd serve` subprocess, the
///     statement sent over the socket, per-query wire latency quantiles.
struct QuerySweepOptions {
  /// Stored history size (one simulated second per row) and segment shape.
  size_t rows = 20000;
  size_t seal_rows = 256;
  uint64_t seed = 20260808;
  /// Iterations per front-end section.
  size_t parse_iters = 2000;
  size_t compile_iters = 200;
  /// Pushdown-vs-full scan repetitions (min wall time is reported).
  size_t scan_iters = 10;
  /// EXPLAINQ calls over the socket; 0 or an empty `daemon_binary`
  /// skips the end-to-end section.
  size_t e2e_queries = 40;
  std::string daemon_binary;
  /// Rows ingested over the socket for the e2e section (kept smaller
  /// than `rows`: appends dominate the setup cost otherwise).
  size_t e2e_rows = 4000;
  /// Store directory root (empty = fresh /tmp dir, removed on entry).
  std::string dir;
};

struct QuerySweepResult {
  size_t rows = 0;
  std::string statement;

  // Front-end latency (microseconds).
  double parse_us_mean = 0.0;
  double parse_us_p99 = 0.0;
  double compile_us_mean = 0.0;
  double compile_us_p99 = 0.0;
  /// Quantile bracketing work per Compile (from the last iteration).
  size_t quantile_segments_total = 0;
  size_t quantile_segments_decoded = 0;

  // Discovery: pushdown vs prune-free full decode of the same window.
  size_t segments_total = 0;
  size_t pushdown_segments_decoded = 0;
  size_t fullscan_segments_decoded = 0;
  double pushdown_ms = 0.0;
  double fullscan_ms = 0.0;
  uint64_t matched_rows = 0;

  // End-to-end EXPLAINQ over the socket (milliseconds); 0 queries when
  // the section was skipped.
  size_t e2e_queries = 0;
  double e2e_p50_ms = 0.0;
  double e2e_p99_ms = 0.0;

  common::JsonValue ToJson() const;
};

common::Result<QuerySweepResult> RunQuerySweep(
    const QuerySweepOptions& options);

}  // namespace dbsherlock::eval

#endif  // DBSHERLOCK_EVAL_QUERY_SWEEP_H_
