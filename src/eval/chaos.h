#ifndef DBSHERLOCK_EVAL_CHAOS_H_
#define DBSHERLOCK_EVAL_CHAOS_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/types.h>

#include "common/json.h"
#include "common/status.h"
#include "service/client.h"
#include "simulator/anomaly.h"
#include "simulator/dataset_gen.h"

namespace dbsherlock::eval {

/// A real `dbsherlockd serve` child process under harness control: Start
/// blocks on the "LISTENING <port>" handshake, Kill9 is the crash case
/// (no drain, no seal, no goodbye), Terminate is the clean case whose
/// exit code the caller asserts. The destructor SIGKILLs a still-running
/// child so a failed episode never leaks a daemon.
class DaemonProcess {
 public:
  struct Options {
    /// Path to the dbsherlockd binary (tests pass their compile-time
    /// DBSHERLOCK_DAEMON_PATH definition here).
    std::string binary;
    /// Daemon subcommand: "serve" (a shard) or "route" (the fleet
    /// router) — both print the LISTENING handshake.
    std::string command = "serve";
    /// Flags after the subcommand (--port 0 --wal-dir ... etc.).
    std::vector<std::string> args;
  };

  DaemonProcess() = default;
  ~DaemonProcess();

  DaemonProcess(const DaemonProcess&) = delete;
  DaemonProcess& operator=(const DaemonProcess&) = delete;

  /// Forks and execs the daemon, then blocks until it prints
  /// LISTENING <port> (stderr is inherited so daemon logs interleave with
  /// the harness's). Restartable: a prior dead child is cleaned up first.
  common::Status Start(const Options& options);

  /// SIGKILL + reap: the machine lost power.
  void Kill9();

  /// SIGTERM + reap: returns the daemon's exit code (0 = clean drain).
  common::Result<int> Terminate();

  bool running() const { return pid_ > 0; }
  int port() const { return port_; }

 private:
  void Reap(int signal);

  pid_t pid_ = -1;
  std::FILE* out_ = nullptr;
  int port_ = 0;
};

/// One chaos episode: boot a real daemon on scratch dirs, teach causal
/// models over the wire, stream multi-tenant telemetry with idempotent
/// APPENDSEQ writers, crash the daemon with kill -9 at seeded points
/// (and/or run it under a faultenv schedule), restart it on the same
/// dirs, resume each writer from HELLO's durable high-water timestamp,
/// and verify the crash-safety contract at the end:
///   - every streamed row is in the durable history EXACTLY once
///     (no acked-row loss, no double-ingest from resends),
///   - every acked TEACH survives every crash,
///   - DIAGNOSE_RANGE over the injected anomaly ranks the true cause
///     first,
///   - SIGTERM exits 0 even after faults/degradation.
struct ChaosOptions {
  std::string daemon_path;  ///< dbsherlockd binary (required)
  std::string work_dir;     ///< scratch root; wal/ + store/ created inside
  uint64_t seed = 1;        ///< kill points + retry jitter
  size_t num_tenants = 3;
  /// Anomaly classes round-robin across tenants; empty = all classes.
  std::vector<simulator::AnomalyKind> kinds;
  simulator::DatasetGenOptions gen;  ///< per-tenant stream shape
  double anomaly_duration_sec = 30.0;
  double anomaly_magnitude = 1.0;
  size_t train_sets_per_cause = 2;
  /// kill -9 events spread over the stream (0 = fault-schedule only).
  size_t kills = 2;
  /// Installed in the daemon via --fault-schedule (empty = no faults).
  std::string fault_schedule;
  /// Small segments tighten the unsealed-tail resend window.
  size_t seal_rows = 32;
  size_t queue_capacity = 256;
  /// Writer pacing; seed is overridden from `seed`.
  service::RetryPolicy retry;
  int connect_timeout_ms = 5000;
  int deadline_ms = 5000;
  /// Check DIAGNOSE_RANGE top-1 over each tenant's truth window.
  bool diagnose = true;

  ChaosOptions();
};

struct ChaosTenantOutcome {
  std::string tenant;
  std::string expected_cause;
  std::string top_cause;  // empty when diagnosis was skipped/failed
  bool top1_correct = false;
  size_t rows_sent = 0;    // dataset rows ultimately acked
  size_t resent_rows = 0;  // rows re-streamed after a crash (lost tail)
  size_t retries = 0;      // RETRY_AFTER responses honored
  size_t reconnects = 0;   // connection re-establishments mid-stream
  bool exactly_once = false;
  size_t missing_ts = 0;    // sent timestamps absent from history
  size_t duplicate_ts = 0;  // timestamps stored more than once
};

struct ChaosResult {
  /// True when every invariant held; `violations` lists each failure in
  /// human-readable form otherwise.
  bool ok = false;
  std::vector<std::string> violations;
  size_t kills = 0;
  /// Per restart: wall ms from restart start to the first re-acked row.
  std::vector<double> recovery_ms;
  uint64_t rows_acked = 0;
  uint64_t resent_rows = 0;
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  double shed_rate = 0.0;  // retries / (acked + retries)
  size_t models_taught = 0;
  size_t models_recovered = 0;  // taught causes present after last restart
  std::string health_state;     // final HEALTH state before shutdown
  int daemon_exit_code = -1;    // final SIGTERM exit code
  double wall_sec = 0.0;
  uint64_t seed = 0;
  std::string fault_schedule;
  std::vector<ChaosTenantOutcome> tenants;

  common::JsonValue ToJson() const;
};

/// Runs one episode. A Status error means harness infrastructure failed
/// (fork, bind, dataset generation); a violated crash-safety invariant is
/// reported in ChaosResult::violations with ok=false, not as an error.
common::Result<ChaosResult> RunChaosEpisode(const ChaosOptions& options);

}  // namespace dbsherlock::eval

#endif  // DBSHERLOCK_EVAL_CHAOS_H_
