#ifndef DBSHERLOCK_EVAL_SIMULATED_USER_H_
#define DBSHERLOCK_EVAL_SIMULATED_USER_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "core/model_repository.h"
#include "eval/experiment.h"

namespace dbsherlock::eval {

/// Competency tiers of the paper's user study (Table 3). Each tier maps to
/// how reliably a participant converts DBSherlock's predicate evidence into
/// the right multiple-choice answer.
enum class UserTier {
  kPreliminaryKnowledge,  // SQL / undergrad databases
  kUsageExperience,       // practical DB usage
  kResearchOrDba,         // DB research or DBA experience
};

std::string UserTierName(UserTier tier);

/// A simulated participant. The model: the participant scores each offered
/// cause by the confidence of that cause's causal model against the
/// question's dataset (that is the signal DBSherlock's predicates carry),
/// perturbs the scores with tier-dependent noise (less experienced readers
/// extract the signal less reliably), and answers the best-scoring option.
/// With no predicates shown (the baseline row), answers are uniform random.
struct SimulatedUserOptions {
  /// Noise stddev (confidence percentage points) per tier.
  double noise_preliminary = 28.0;
  double noise_usage = 24.0;
  double noise_research = 24.0;
};

/// One multiple-choice question: a dataset whose correct cause is
/// `correct`, with `choices` (correct + 3 distractors).
struct UserStudyQuestion {
  const simulator::GeneratedDataset* dataset = nullptr;
  std::string correct;
  std::vector<std::string> choices;
};

/// Answers a question; returns true when the participant picked correctly.
bool AnswerQuestion(const UserStudyQuestion& question,
                    const core::ModelRepository& repository,
                    const core::PredicateGenOptions& options, UserTier tier,
                    const SimulatedUserOptions& user_options,
                    common::Pcg32* rng);

}  // namespace dbsherlock::eval

#endif  // DBSHERLOCK_EVAL_SIMULATED_USER_H_
