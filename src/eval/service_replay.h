#ifndef DBSHERLOCK_EVAL_SERVICE_REPLAY_H_
#define DBSHERLOCK_EVAL_SERVICE_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "service/model_store.h"
#include "service/service.h"
#include "simulator/anomaly.h"
#include "simulator/dataset_gen.h"

namespace dbsherlock::eval {

/// End-to-end exerciser for dbsherlockd: boots a Service + TCP Server on
/// an ephemeral port, teaches one pre-trained causal model per anomaly
/// class over the wire, then drives N simulated tenants concurrently
/// through the real socket path — each streaming a generated dataset with
/// one injected anomaly — and checks that every tenant's anomaly is
/// diagnosed with the correct cause ranked first. Doubles as the service
/// benchmark (rows/sec, per-append wire latency, shed rate).
struct ServiceReplayOptions {
  size_t num_tenants = 8;
  /// Anomaly classes assigned round-robin to tenants; empty = all classes.
  std::vector<simulator::AnomalyKind> kinds;
  /// Dataset shape per tenant. The anomaly must stay well under 20% of
  /// the streamed rows for the detector's small-cluster rule, hence the
  /// long normal stretch.
  simulator::DatasetGenOptions gen;
  double anomaly_duration_sec = 40.0;
  double anomaly_magnitude = 1.0;
  /// Service shape. `store` is injected by the caller (RunServiceReplay
  /// overwrites it); monitor options are tuned for the streamed length.
  service::Service::Options service;
  /// Training datasets taught per anomaly class. TEACH goes through
  /// ModelRepository::Add, so >1 exercises the paper's merged models
  /// (Figure 8) — noticeably better margins on confusable cause pairs.
  size_t train_sets_per_cause = 2;
  /// Per-row retry budget when backpressured.
  int max_append_retries = 10000;

  ServiceReplayOptions();
};

/// One tenant's outcome.
struct TenantReplayOutcome {
  std::string tenant;
  std::string expected_cause;
  std::string top_cause;       // empty when no diagnosis was produced
  bool top1_correct = false;
  bool region_overlaps = false;  // reported region hits the ground truth
  size_t rows_sent = 0;
  size_t retries = 0;          // RETRY_AFTER responses honored
  size_t diagnoses = 0;
};

struct ServiceReplayResult {
  double wall_sec = 0.0;
  double rows_per_sec = 0.0;
  double mean_append_us = 0.0;
  double p99_append_us = 0.0;
  uint64_t rows_acked = 0;
  uint64_t retries = 0;       // total backpressure round-trips
  double shed_rate = 0.0;     // retries / (acked + retries)
  size_t diagnoses_total = 0;
  double diagnoses_per_sec = 0.0;
  size_t models_stored = 0;
  std::vector<TenantReplayOutcome> tenants;

  /// True when every tenant got >= 1 diagnosis with the correct cause
  /// ranked top-1 over an overlapping region.
  bool AllCorrect() const;

  common::JsonValue ToJson() const;
};

/// Runs the replay. `store` is the shared durable model store the service
/// ranks against (pre-trained models are taught through the wire and land
/// here). Fails on infrastructure errors (bind, connect, teach); a wrong
/// diagnosis is reported in the result, not as a Status.
common::Result<ServiceReplayResult> RunServiceReplay(
    const ServiceReplayOptions& options, service::DurableModelStore* store);

}  // namespace dbsherlock::eval

#endif  // DBSHERLOCK_EVAL_SERVICE_REPLAY_H_
