#ifndef DBSHERLOCK_SYNTHETIC_SEM_H_
#define DBSHERLOCK_SYNTHETIC_SEM_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "core/domain_knowledge.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::synthetic {

/// Generation parameters for the random linear-SEM causal graphs of
/// Appendix F. Defaults match the paper: k = 7 variables, 600 tuples
/// (10 minutes at 1-second intervals) with a 60-tuple abnormal block, root
/// causes drawn from N(10,10) normally and N(100,10) during the anomaly,
/// integer cause coefficients in [-10,10] \ {0}, and unit-normal error.
struct SemOptions {
  size_t num_variables = 7;
  double edge_probability = 0.35;
  size_t num_rows = 600;
  size_t abnormal_rows = 60;
  double normal_mean = 10.0;
  double normal_stddev = 10.0;
  double abnormal_mean = 100.0;
  double abnormal_stddev = 10.0;
  int max_coefficient = 10;
  /// Rules generated per root-cause attribute when building the synthetic
  /// domain knowledge.
  size_t rules_per_cause = 2;
};

/// One synthetic rule plus its ground-truth classification: the rule's
/// effect predicate *should* be pruned iff the effect variable is reachable
/// from the cause in the generating graph ("Actual Positive" in Table 8).
struct RuleExpectation {
  core::DomainRule rule;
  bool should_prune = false;
};

/// A generated SEM instance: the DAG, its data, the abnormal block, and
/// randomly generated domain knowledge with ground truth.
struct SemInstance {
  /// adjacency[i][j] == true means an edge V_i -> V_j (i < j always).
  std::vector<std::vector<bool>> adjacency;
  /// Cause coefficients aligned with adjacency (0 where no edge).
  std::vector<std::vector<double>> coefficients;
  /// Indices of the root-cause variables (root ancestors of the effect
  /// variable V_{k-1}).
  std::vector<size_t> root_causes;
  tsdata::Dataset data;  // attributes named "attr_0" ... "attr_{k-1}"
  tsdata::DiagnosisRegions regions;
  core::DomainKnowledge knowledge;
  std::vector<RuleExpectation> expectations;

  /// True when `to` is reachable from `from` along graph edges.
  bool Reachable(size_t from, size_t to) const;
};

/// Attribute name of variable i ("attr_3").
std::string SemAttributeName(size_t i);

/// Generates one instance. The graph always has at least one root-cause
/// variable (the effect variable is given an incoming edge if the random
/// draw left it isolated).
SemInstance GenerateSemInstance(const SemOptions& options,
                                common::Pcg32* rng);

}  // namespace dbsherlock::synthetic

#endif  // DBSHERLOCK_SYNTHETIC_SEM_H_
