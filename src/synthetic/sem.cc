#include "synthetic/sem.h"

#include <algorithm>

#include "common/strings.h"

namespace dbsherlock::synthetic {

std::string SemAttributeName(size_t i) {
  return common::StrFormat("attr_%zu", i);
}

bool SemInstance::Reachable(size_t from, size_t to) const {
  if (from == to) return true;
  std::vector<size_t> stack = {from};
  std::vector<bool> seen(adjacency.size(), false);
  seen[from] = true;
  while (!stack.empty()) {
    size_t v = stack.back();
    stack.pop_back();
    for (size_t w = 0; w < adjacency.size(); ++w) {
      if (!adjacency[v][w] || seen[w]) continue;
      if (w == to) return true;
      seen[w] = true;
      stack.push_back(w);
    }
  }
  return false;
}

namespace {

/// Nonzero integer coefficient in [-max, max].
double RandomCoefficient(common::Pcg32* rng, int max) {
  int c = 0;
  while (c == 0) c = rng->NextInt(-max, max);
  return static_cast<double>(c);
}

}  // namespace

SemInstance GenerateSemInstance(const SemOptions& options,
                                common::Pcg32* rng) {
  SemInstance inst;
  const size_t k = options.num_variables;
  inst.adjacency.assign(k, std::vector<bool>(k, false));
  inst.coefficients.assign(k, std::vector<double>(k, 0.0));

  // --- Random DAG over the topological order V_0 < ... < V_{k-1} ---------
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (rng->NextBernoulli(options.edge_probability)) {
        inst.adjacency[i][j] = true;
        inst.coefficients[i][j] =
            RandomCoefficient(rng, options.max_coefficient);
      }
    }
  }
  // V_{k-1} is the effect variable: it must have at least one incoming
  // edge, and by ordering it has no outgoing ones.
  size_t effect = k - 1;
  bool has_incoming = false;
  for (size_t i = 0; i < effect; ++i) has_incoming |= inst.adjacency[i][effect];
  if (!has_incoming) {
    size_t i = static_cast<size_t>(rng->NextBounded(
        static_cast<uint32_t>(effect)));
    inst.adjacency[i][effect] = true;
    inst.coefficients[i][effect] =
        RandomCoefficient(rng, options.max_coefficient);
  }

  // --- Root causes: root ancestors of the effect variable ----------------
  std::vector<bool> is_root(k, true);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (inst.adjacency[i][j]) is_root[j] = false;
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (is_root[i] && inst.Reachable(i, effect)) {
      inst.root_causes.push_back(i);
    }
  }

  // --- Data generation -----------------------------------------------------
  tsdata::Schema schema;
  for (size_t i = 0; i < k; ++i) {
    (void)schema.AddAttribute(
        {SemAttributeName(i), tsdata::AttributeKind::kNumeric});
  }
  inst.data = tsdata::Dataset(schema);

  size_t abnormal_rows = std::min(options.abnormal_rows, options.num_rows);
  size_t max_start = options.num_rows - abnormal_rows;
  size_t abnormal_start =
      max_start == 0
          ? 0
          : static_cast<size_t>(
                rng->NextBounded(static_cast<uint32_t>(max_start + 1)));

  std::vector<double> values(k);
  for (size_t row = 0; row < options.num_rows; ++row) {
    bool abnormal =
        row >= abnormal_start && row < abnormal_start + abnormal_rows;
    for (size_t i = 0; i < k; ++i) {
      bool is_root_cause =
          std::find(inst.root_causes.begin(), inst.root_causes.end(), i) !=
          inst.root_causes.end();
      if (is_root[i]) {
        // Roots are exogenous; root causes switch distribution inside the
        // abnormal block (contiguous and aligned across root causes).
        if (is_root_cause && abnormal) {
          values[i] = rng->NextGaussian(options.abnormal_mean,
                                        options.abnormal_stddev);
        } else {
          values[i] =
              rng->NextGaussian(options.normal_mean, options.normal_stddev);
        }
      } else {
        // Linear structural equation (Eq. (5) of Appendix F).
        double v = rng->NextGaussian();  // epsilon_i ~ N(0,1)
        for (size_t p = 0; p < i; ++p) {
          if (inst.adjacency[p][i]) v += inst.coefficients[p][i] * values[p];
        }
        values[i] = v;
      }
    }
    std::vector<tsdata::Cell> cells(values.begin(), values.end());
    (void)inst.data.AppendRow(static_cast<double>(row), cells);
  }
  inst.regions.abnormal.Add(static_cast<double>(abnormal_start),
                            static_cast<double>(abnormal_start + abnormal_rows));

  // --- Synthetic domain knowledge with ground truth ------------------------
  for (size_t cause : inst.root_causes) {
    size_t added = 0;
    // Walk candidate effects in a random order to diversify rules.
    std::vector<size_t> candidates;
    for (size_t j = 0; j < k; ++j) {
      if (j != cause) candidates.push_back(j);
    }
    rng->Shuffle(&candidates);
    for (size_t j : candidates) {
      if (added >= options.rules_per_cause) break;
      core::DomainRule rule{SemAttributeName(cause), SemAttributeName(j)};
      if (!inst.knowledge.AddRule(rule).ok()) continue;
      inst.expectations.push_back({rule, inst.Reachable(cause, j)});
      ++added;
    }
  }
  return inst;
}

}  // namespace dbsherlock::synthetic
