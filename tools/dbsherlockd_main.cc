// dbsherlockd: the DBSherlock online diagnosis daemon. Serves the wire
// protocol of service/wire.h over TCP: multi-tenant telemetry ingestion
// with bounded queues and RETRY_AFTER backpressure, background anomaly
// detection + diagnosis per tenant, and a durable (WAL + snapshot) store
// of causal models shared across tenants.
//
//   dbsherlockd serve --port 7379 --wal-dir /var/lib/dbsherlock
//
// Prints "LISTENING <port>" on stdout once the socket is ready (port 0
// binds an ephemeral port — scripts parse the line). SIGINT/SIGTERM stop
// the daemon cleanly: acked rows are drained, in-flight diagnoses finish,
// the WAL is intact. Exit codes match the dbsherlock CLI (0 ok, 2 usage,
// 3..9 one per StatusCode).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/faultenv.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "fleet/model_sync.h"
#include "fleet/router.h"
#include "service/model_store.h"
#include "service/server.h"
#include "service/service.h"

namespace {

using namespace dbsherlock;

/// Minimal --flag value argument map (same idiom as dbsherlock_main).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      std::string name = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[name] = argv[++i];
      } else {
        values_[name] = "true";
      }
    }
  }

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    auto parsed = common::ParseDouble(it->second);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--%s: %s\n", name.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(2);
    }
    return *parsed;
  }

  bool Has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
};

int ExitCodeFor(const common::Status& status) {
  switch (status.code()) {
    case common::StatusCode::kOk: return 0;
    case common::StatusCode::kInvalidArgument: return 3;
    case common::StatusCode::kNotFound: return 4;
    case common::StatusCode::kOutOfRange: return 5;
    case common::StatusCode::kFailedPrecondition: return 6;
    case common::StatusCode::kIoError: return 7;
    case common::StatusCode::kParseError: return 8;
    case common::StatusCode::kDeadlineExceeded: return 10;
    case common::StatusCode::kResourceExhausted: return 11;
    case common::StatusCode::kInternal: return 9;
  }
  return 1;
}

[[noreturn]] void Die(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(ExitCodeFor(status));
}

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: dbsherlockd serve [flags]\n"
      "       dbsherlockd route --shards host:port,... [flags]\n"
      "serve flags:\n"
      "  --host H              listen address (default 127.0.0.1)\n"
      "  --port P              listen port; 0 = ephemeral (default 7379)\n"
      "  --wal-dir DIR         durable model store directory (snapshot +\n"
      "                        WAL); omitted = volatile store\n"
      "  --no-fsync            skip per-append WAL fsync (benchmarks)\n"
      "  --store-dir DIR       per-tenant telemetry history root; enables\n"
      "                        QUERY / DIAGNOSE_RANGE and restart\n"
      "                        rehydration; omitted = window-only\n"
      "  --seal-rows N         rows per sealed segment (default 512)\n"
      "  --max-range-rows N    DIAGNOSE_RANGE window row cap; larger\n"
      "                        windows are refused with ResourceExhausted\n"
      "                        (default 500000, 0 = unlimited)\n"
      "  --retain-bytes N      per-tenant history byte budget (0 = off)\n"
      "  --retain-sec S        per-tenant history age limit (0 = off)\n"
      "  --max-tenants N       idle-LRU tenant cap (default 64)\n"
      "  --queue-capacity N    per-tenant ingest queue bound (default 1024)\n"
      "  --ingest-workers N    drain threads (default 2)\n"
      "  --diagnosis-workers N diagnosis threads (default 2)\n"
      "  --retry-after-ms N    backpressure delay hint (default 20)\n"
      "  --process-delay-us N  per-row drain stall for tests/benches "
      "(default 0)\n"
      "  --max-connections N   concurrent client cap; accepts past it are\n"
      "                        shed with RETRY_AFTER (default 64)\n"
      "  --idle-timeout-ms N   close connections idle this long (0 = off)\n"
      "  --max-line-bytes N    request line cap (default 1 MiB)\n"
      "  --io-mode M           connection handling: 'threads' (one thread\n"
      "                        per connection) or 'epoll' (edge-triggered\n"
      "                        event loop + handler pool; default threads)\n"
      "  --handler-threads N   epoll-mode handler pool width (default 4)\n"
      "  --peers host:port,... peer shards to pull causal models from via\n"
      "                        MODELSYNC (fleet replication)\n"
      "  --modelsync-interval-ms N\n"
      "                        delay between replication pulls (default\n"
      "                        1000; 0 disables the background puller)\n"
      "  --fault-schedule S    install a fault-injection schedule (see\n"
      "                        common/faultenv.h; also honors the\n"
      "                        DBSHERLOCK_FAULT_SCHEDULE env var)\n"
      "  --window-rows N       monitor sliding window (default 600)\n"
      "  --warmup-rows N       rows before first detection (default 120)\n"
      "  --detect-every N      detection cadence in rows (default 15)\n"
      "  --lambda L            min confidence for ranked causes\n"
      "  --metrics-out f.json  write the metrics snapshot on shutdown\n"
      "  --print-metrics       print the metrics snapshot on shutdown\n"
      "route flags:\n"
      "  --shards host:port,.. shard daemons, in ring order (required)\n"
      "  --host/--port         listen address (default 127.0.0.1:7380)\n"
      "  --vnodes N            virtual nodes per shard on the consistent-\n"
      "                        hash ring (default 64)\n"
      "  --handler-threads N   proxy handler pool width (default 8)\n"
      "  --max-connections N   client cap, shed with RETRY_AFTER (def 256)\n"
      "  --upstream-deadline-ms N  per-request shard deadline (def 5000)\n"
      "  --upstream-attempts N idempotent retry budget (default 3)\n"
      "  --down-cooldown-ms N  circuit-breaker cooldown after a shard\n"
      "                        failure (default 2000)\n"
      "  --fault-schedule, --idle-timeout-ms, --max-line-bytes,\n"
      "  --metrics-out, --print-metrics as for serve\n"
      "on start, prints \"LISTENING <port>\" on stdout; SIGINT/SIGTERM\n"
      "drain and exit 0\n"
      "exit codes: 0 ok, 2 usage, 3 invalid argument, 4 not found,\n"
      "  5 out of range, 6 failed precondition, 7 I/O error, 8 parse\n"
      "  error, 9 internal error, 10 deadline exceeded, 11 resource\n"
      "  exhausted\n");
  return 2;
}

/// Shared --metrics-out / --print-metrics shutdown handling.
int WriteMetricsOutputs(const Args& args) {
  if (args.Has("metrics-out")) {
    std::string path = args.Get("metrics-out");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 7;
    }
    std::string snapshot =
        common::MetricsRegistry::Global().SnapshotJson().Dump(2);
    std::fwrite(snapshot.data(), 1, snapshot.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  if (args.Has("print-metrics")) {
    std::fputs(common::MetricsRegistry::Global().SnapshotText().c_str(),
               stderr);
  }
  return 0;
}

int CmdServe(const Args& args) {
  // A typo'd schedule refuses to start rather than silently running clean.
  if (args.Has("fault-schedule")) {
    common::Status installed =
        common::faultenv::InstallSchedule(args.Get("fault-schedule"));
    if (!installed.ok()) Die(installed);
  } else {
    common::Status installed = common::faultenv::InstallFromEnv();
    if (!installed.ok()) Die(installed);
  }
  if (common::faultenv::Enabled()) {
    std::fprintf(stderr, "fault schedule active: %s\n",
                 common::faultenv::ActiveSpec().c_str());
  }

  service::DurableModelStore::Options store_options;
  store_options.dir = args.Get("wal-dir");
  store_options.fsync_each_append = !args.Has("no-fsync");
  auto store = service::DurableModelStore::Open(store_options);
  if (!store.ok()) Die(store.status());
  if (!store_options.dir.empty()) {
    const auto& rec = (*store)->recovery();
    std::fprintf(stderr,
                 "model store: %zu model(s) recovered (%zu snapshot, %zu "
                 "WAL replayed, %llu torn byte(s) discarded)\n",
                 (*store)->num_models(), rec.snapshot_models,
                 rec.wal_records_applied,
                 static_cast<unsigned long long>(rec.truncated_bytes));
  }

  service::Service::Options options;
  options.tenants.max_tenants =
      static_cast<size_t>(args.GetDouble("max-tenants", 64));
  options.tenants.monitor.window_rows =
      static_cast<size_t>(args.GetDouble("window-rows", 600));
  options.tenants.monitor.warmup_rows =
      static_cast<size_t>(args.GetDouble("warmup-rows", 120));
  options.tenants.monitor.detect_every =
      static_cast<size_t>(args.GetDouble("detect-every", 15));
  options.tenants.store.dir = args.Get("store-dir");
  options.tenants.store.seal_rows =
      static_cast<size_t>(args.GetDouble("seal-rows", 512));
  options.tenants.store.retain_bytes =
      static_cast<uint64_t>(args.GetDouble("retain-bytes", 0));
  options.tenants.store.retain_age_sec = args.GetDouble("retain-sec", 0);
  options.queue_capacity =
      static_cast<size_t>(args.GetDouble("queue-capacity", 1024));
  options.ingest_workers =
      static_cast<size_t>(args.GetDouble("ingest-workers", 2));
  options.diagnosis_workers =
      static_cast<size_t>(args.GetDouble("diagnosis-workers", 2));
  options.retry_after_ms =
      static_cast<int>(args.GetDouble("retry-after-ms", 20));
  // Test/bench hook: per-row drain stall, to make ingest CPU-bound work
  // visible on fast machines (0 = off).
  options.process_delay_us =
      static_cast<int>(args.GetDouble("process-delay-us", 0));
  options.min_confidence = args.GetDouble("lambda", 20.0);
  options.max_range_rows =
      static_cast<size_t>(args.GetDouble("max-range-rows", 500000));
  options.store = store->get();
  service::Service service(options);

  service::Server::Options server_options;
  server_options.host = args.Get("host", "127.0.0.1");
  server_options.port = static_cast<int>(args.GetDouble("port", 7379));
  server_options.max_connections =
      static_cast<size_t>(args.GetDouble("max-connections", 64));
  server_options.idle_timeout_ms =
      static_cast<int>(args.GetDouble("idle-timeout-ms", 0));
  server_options.max_line_bytes =
      static_cast<size_t>(args.GetDouble("max-line-bytes", 1 << 20));
  std::string io_mode = args.Get("io-mode", "threads");
  if (io_mode == "epoll") {
    server_options.io_mode = service::IoMode::kEpoll;
  } else if (io_mode != "threads") {
    std::fprintf(stderr, "--io-mode: want 'threads' or 'epoll'\n");
    return 2;
  }
  server_options.handler_threads =
      static_cast<size_t>(args.GetDouble("handler-threads", 4));
  server_options.service = &service;
  auto server = service::Server::Start(server_options);
  if (!server.ok()) Die(server.status());

  // Fleet replication: pull peers' causal-model corpora in the background
  // so every shard diagnoses with fleet-wide knowledge.
  std::unique_ptr<fleet::ModelSyncPuller> puller;
  if (args.Has("peers")) {
    fleet::ModelSyncPuller::Options sync_options;
    for (const std::string& peer :
         common::Split(args.Get("peers"), ',')) {
      if (!peer.empty()) sync_options.peers.push_back(peer);
    }
    sync_options.interval_ms =
        static_cast<int>(args.GetDouble("modelsync-interval-ms", 1000));
    sync_options.service = &service;
    auto started = fleet::ModelSyncPuller::Start(std::move(sync_options));
    if (!started.ok()) Die(started.status());
    puller = std::move(*started);
  }

  // Scripts (and the CTest e2e harness) block on this line.
  std::printf("LISTENING %d\n", (*server)->port());
  std::fflush(stdout);

  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  // Block the stop signals while testing g_stop, and atomically unblock
  // inside sigsuspend — the classic pattern that closes the
  // check-then-sleep race.
  sigset_t block, old;
  sigemptyset(&block);
  sigaddset(&block, SIGINT);
  sigaddset(&block, SIGTERM);
  sigprocmask(SIG_BLOCK, &block, &old);
  while (g_stop == 0) {
    sigsuspend(&old);
  }
  sigprocmask(SIG_SETMASK, &old, nullptr);

  std::fprintf(stderr, "shutting down: draining tenants...\n");
  if (puller != nullptr) puller->Stop();
  (*server)->Stop();
  service.Stop();
  std::fprintf(stderr,
               "done: %llu row(s) acked, %llu shed, %llu diagnosis(es), "
               "%zu model(s) stored\n",
               static_cast<unsigned long long>(service.total_acked()),
               static_cast<unsigned long long>(service.total_shed()),
               static_cast<unsigned long long>(service.total_diagnoses()),
               (*store)->num_models());

  return WriteMetricsOutputs(args);
}

int CmdRoute(const Args& args) {
  if (args.Has("fault-schedule")) {
    common::Status installed =
        common::faultenv::InstallSchedule(args.Get("fault-schedule"));
    if (!installed.ok()) Die(installed);
  } else {
    common::Status installed = common::faultenv::InstallFromEnv();
    if (!installed.ok()) Die(installed);
  }

  fleet::Router::Options options;
  options.host = args.Get("host", "127.0.0.1");
  options.port = static_cast<int>(args.GetDouble("port", 7380));
  for (const std::string& shard : common::Split(args.Get("shards"), ',')) {
    if (!shard.empty()) options.shards.push_back(shard);
  }
  if (options.shards.empty()) {
    std::fprintf(stderr, "route: --shards host:port,... is required\n");
    return 2;
  }
  options.vnodes_per_shard =
      static_cast<size_t>(args.GetDouble("vnodes", 64));
  options.handler_threads =
      static_cast<size_t>(args.GetDouble("handler-threads", 8));
  options.max_connections =
      static_cast<size_t>(args.GetDouble("max-connections", 256));
  options.idle_timeout_ms =
      static_cast<int>(args.GetDouble("idle-timeout-ms", 0));
  options.max_line_bytes =
      static_cast<size_t>(args.GetDouble("max-line-bytes", 1 << 20));
  options.upstream_deadline_ms =
      static_cast<int>(args.GetDouble("upstream-deadline-ms", 5000));
  options.max_upstream_attempts =
      static_cast<int>(args.GetDouble("upstream-attempts", 3));
  options.down_cooldown_ms =
      static_cast<int>(args.GetDouble("down-cooldown-ms", 2000));
  auto router = fleet::Router::Start(std::move(options));
  if (!router.ok()) Die(router.status());

  std::printf("LISTENING %d\n", (*router)->port());
  std::fflush(stdout);

  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  sigset_t block, old;
  sigemptyset(&block);
  sigaddset(&block, SIGINT);
  sigaddset(&block, SIGTERM);
  sigprocmask(SIG_BLOCK, &block, &old);
  while (g_stop == 0) {
    sigsuspend(&old);
  }
  sigprocmask(SIG_SETMASK, &old, nullptr);

  std::fprintf(stderr, "router shutting down\n");
  for (const auto& stats : (*router)->shard_stats()) {
    std::fprintf(stderr,
                 "  shard %s: %llu request(s), %llu retrie(s), %llu "
                 "failure(s)%s\n",
                 stats.address.c_str(),
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.retries),
                 static_cast<unsigned long long>(stats.failures),
                 stats.down ? " [down]" : "");
  }
  (*router)->Stop();
  return WriteMetricsOutputs(args);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "serve") return CmdServe(args);
  if (command == "route") return CmdRoute(args);
  return Usage();
}
