#!/usr/bin/env bash
# Runs the microbenchmark suite and records the results as JSON so the
# perf trajectory is tracked across PRs (compare BENCH_micro.json between
# commits). Usage:
#   tools/run_benchmarks.sh [output.json] [extra bench_micro_perf flags...]
# Env:
#   BUILD_DIR  build tree holding bench/bench_micro_perf (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_micro.json}"
shift || true

BIN="$BUILD_DIR/bench/bench_micro_perf"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" --benchmark_format=json "$@" > "$OUT"
echo "wrote $OUT"
