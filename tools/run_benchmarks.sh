#!/usr/bin/env bash
# Runs the microbenchmark suite and records the results as JSON so the
# perf trajectory is tracked across PRs (compare BENCH_micro.json between
# commits). Usage:
#   tools/run_benchmarks.sh [output.json] [extra bench_micro_perf flags...]
#   tools/run_benchmarks.sh --with-metrics [output.json] [extra flags...]
#   tools/run_benchmarks.sh --sanitize
#   tools/run_benchmarks.sh --robustness [output.json]
#   tools/run_benchmarks.sh --trace-overhead
#   tools/run_benchmarks.sh --service [output.json]
#   tools/run_benchmarks.sh --store [output.json]
# Modes:
#   --with-metrics  run the microbenchmarks, then run one instrumented
#                 pipeline pass (bench_pipeline_metrics) and embed its
#                 metrics snapshot + per-span stage summary into the same
#                 JSON report (keys "pipeline_metrics", "stage_summary").
#   --sanitize    configure a separate build tree with ASan+UBSan
#                 (DBSHERLOCK_SANITIZE=address+undefined), build, and run
#                 the full ctest suite under it. No JSON is written; the
#                 exit status is the verdict.
#   --robustness  run the hostile-telemetry corruption sweep and write the
#                 accuracy-vs-corruption curve (default BENCH_robustness.json).
#   --trace-overhead  verify the disabled-tracer overhead bound (<2% of a
#                 diagnosis); the exit status is the verdict.
#   --store       run the embedded time-series store benchmark (append
#                 throughput, scan latency vs range length, compression
#                 ratio vs raw CSV; default BENCH_store.json). Exit status
#                 is nonzero unless the ratio meets the <= 0.35x bound.
#   --service     run the dbsherlockd end-to-end replay (8 simulated
#                 tenants over the real socket path) and write throughput,
#                 p99 append latency, shed rate, and per-tenant diagnosis
#                 accuracy (default BENCH_service.json). Exit status is
#                 nonzero unless every tenant's cause ranks top-1.
# Env:
#   BUILD_DIR  build tree holding the bench binaries (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

if [[ "${1:-}" == "--sanitize" ]]; then
  SAN_DIR="${BUILD_DIR}-asan-ubsan"
  cmake -B "$SAN_DIR" -S . -DDBSHERLOCK_SANITIZE=address+undefined
  cmake --build "$SAN_DIR" -j
  ctest --test-dir "$SAN_DIR" --output-on-failure -j
  echo "sanitizer sweep passed ($SAN_DIR)"
  exit 0
fi

if [[ "${1:-}" == "--robustness" ]]; then
  OUT="${2:-BENCH_robustness.json}"
  BIN="$BUILD_DIR/bench/bench_corruption_robustness"
  if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
  "$BIN" --json_out "$OUT"
  exit 0
fi

if [[ "${1:-}" == "--service" ]]; then
  OUT="${2:-BENCH_service.json}"
  BIN="$BUILD_DIR/bench/bench_service"
  if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
  "$BIN" --json_out "$OUT"
  exit 0
fi

if [[ "${1:-}" == "--store" ]]; then
  OUT="${2:-BENCH_store.json}"
  BIN="$BUILD_DIR/bench/bench_store"
  if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
  "$BIN" --json_out "$OUT"
  exit 0
fi

if [[ "${1:-}" == "--trace-overhead" ]]; then
  BIN="$BUILD_DIR/bench/bench_trace_overhead"
  if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
  "$BIN"
  exit 0
fi

WITH_METRICS=0
if [[ "${1:-}" == "--with-metrics" ]]; then
  WITH_METRICS=1
  shift || true
fi

OUT="${1:-BENCH_micro.json}"
shift || true

BIN="$BUILD_DIR/bench/bench_micro_perf"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" --benchmark_format=json "$@" > "$OUT"
echo "wrote $OUT"

if [[ "$WITH_METRICS" == 1 ]]; then
  MBIN="$BUILD_DIR/bench/bench_pipeline_metrics"
  if [[ ! -x "$MBIN" ]]; then
    echo "error: $MBIN not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
  "$MBIN" --merge-into "$OUT"
  echo "attached metrics snapshot to $OUT"
fi
