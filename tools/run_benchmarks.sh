#!/usr/bin/env bash
# Runs the microbenchmark suite and records the results as JSON so the
# perf trajectory is tracked across PRs (compare BENCH_micro.json between
# commits). Usage:
#   tools/run_benchmarks.sh [--allow-debug] [output.json] [extra bench_micro_perf flags...]
#   tools/run_benchmarks.sh [--allow-debug] --with-metrics [output.json] [extra flags...]
#   tools/run_benchmarks.sh --sanitize
#   tools/run_benchmarks.sh [--allow-debug] --robustness [output.json]
#   tools/run_benchmarks.sh --trace-overhead
#   tools/run_benchmarks.sh [--allow-debug] --service [output.json]
#   tools/run_benchmarks.sh [--allow-debug] --store [output.json]
#   tools/run_benchmarks.sh [--allow-debug] --chaos [output.json]
#   tools/run_benchmarks.sh [--allow-debug] --query [output.json]
# Modes:
#   --with-metrics  run the microbenchmarks, then run one instrumented
#                 pipeline pass (bench_pipeline_metrics) and embed its
#                 metrics snapshot + per-span stage summary into the same
#                 JSON report (keys "pipeline_metrics", "stage_summary").
#   --sanitize    configure a separate build tree with ASan+UBSan
#                 (DBSHERLOCK_SANITIZE=address+undefined), build, and run
#                 the full ctest suite under it. No JSON is written; the
#                 exit status is the verdict.
#   --robustness  run the hostile-telemetry corruption sweep and write the
#                 accuracy-vs-corruption curve (default BENCH_robustness.json).
#   --trace-overhead  verify the disabled-tracer overhead bound (<2% of a
#                 diagnosis); the exit status is the verdict.
#   --store       run the embedded time-series store benchmark (append
#                 throughput, scan latency vs range length, compression
#                 ratio vs raw CSV, the retained-history scan curve with
#                 zone-map segment skip/decode counts, and a predicate-
#                 pushdown demo checked bit-identical against the full
#                 decode; default BENCH_store.json). Exit status is
#                 nonzero unless the ratio meets the <= 0.35x bound and
#                 the pushdown parity check passes.
#   --chaos       run the crash-chaos sweep: 25 seeded episodes of kill -9
#                 and injected I/O/network faults against the real daemon
#                 binary, asserting exactly-once ingest, durable models,
#                 and bounded recovery. Writes the recovery-time/shed-rate
#                 distributions plus each episode's seed and fault
#                 schedule (default BENCH_chaos.json). Exit status is
#                 nonzero if any invariant was violated.
#   --query       run the DQL pipeline sweep: parse/compile latency for a
#                 representative EXPLAIN WHERE statement (compile includes
#                 exact percentile resolution via zone-map bracketing),
#                 the discovery scan with pushdown vs the prune-free full
#                 decode, and end-to-end EXPLAINQ latency against a real
#                 daemon subprocess (default BENCH_query.json). Exit
#                 status is nonzero unless pushdown discovery decoded
#                 strictly fewer segments than the full scan.
#   --service     run the dbsherlockd end-to-end replay (8 simulated
#                 tenants over the real socket path) and write throughput,
#                 p99 append latency, shed rate, and per-tenant diagnosis
#                 accuracy, then the sharded-fleet scaling sweep (1000
#                 tenants through the consistent-hash router over 1/2/4
#                 epoll shards; "fleet" key in the same report; default
#                 BENCH_service.json). Exit status is nonzero unless every
#                 tenant's cause ranks top-1 and every fleet row lands.
#
# Build policy: an unconfigured BUILD_DIR is configured as Release and
# built here; an existing BUILD_DIR is reused as-is. BENCH_*.json is only
# written from an optimized build (Release/RelWithDebInfo/MinSizeRel per
# the tree's CMakeCache.txt) — debug numbers are not comparable across
# PRs, so recording them requires the explicit --allow-debug flag. Every
# emitted JSON carries the build type and the resolved SIMD ISA (context
# keys "dbsherlock_build_type"/"simd_isa" for bench_micro_perf, object key
# "build_info" for the other harnesses).
# Env:
#   BUILD_DIR  build tree holding the bench binaries (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

ALLOW_DEBUG=0
if [[ "${1:-}" == "--allow-debug" ]]; then
  ALLOW_DEBUG=1
  shift
fi

# Configures (Release) when the tree doesn't exist yet, then builds the
# requested bench target.
ensure_built() {
  local target="$1"
  if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    echo "configuring $BUILD_DIR as Release" >&2
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  fi
  cmake --build "$BUILD_DIR" -j --target "$target"
}

cached_build_type() {
  sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" | head -1
}

# Refuses to record benchmark JSON from a non-optimized tree unless
# --allow-debug was passed.
require_optimized_build() {
  local bt
  bt="$(cached_build_type)"
  case "$bt" in
    Release|RelWithDebInfo|MinSizeRel) return 0 ;;
  esac
  if [[ "$ALLOW_DEBUG" == 1 ]]; then
    echo "warning: recording benchmarks from a '$bt' build (--allow-debug)" >&2
    return 0
  fi
  echo "error: $BUILD_DIR is CMAKE_BUILD_TYPE='$bt', not an optimized build." >&2
  echo "Benchmark JSON from debug builds is not comparable across PRs." >&2
  echo "Either reconfigure (cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release)" >&2
  echo "or pass --allow-debug as the first argument to record it anyway." >&2
  exit 1
}

if [[ "${1:-}" == "--sanitize" ]]; then
  SAN_DIR="${BUILD_DIR}-asan-ubsan"
  cmake -B "$SAN_DIR" -S . -DDBSHERLOCK_SANITIZE=address+undefined
  cmake --build "$SAN_DIR" -j
  ctest --test-dir "$SAN_DIR" --output-on-failure -j
  echo "sanitizer sweep passed ($SAN_DIR)"
  exit 0
fi

if [[ "${1:-}" == "--robustness" ]]; then
  OUT="${2:-BENCH_robustness.json}"
  ensure_built bench_corruption_robustness
  require_optimized_build
  "$BUILD_DIR/bench/bench_corruption_robustness" --json_out "$OUT"
  exit 0
fi

if [[ "${1:-}" == "--service" ]]; then
  OUT="${2:-BENCH_service.json}"
  ensure_built bench_service
  require_optimized_build
  # The fleet sweep (router + 1/2/4 epoll shards, 1000 tenants) rides in
  # the same report under the "fleet" key.
  "$BUILD_DIR/bench/bench_service" --json_out "$OUT" --fleet_shards 1,2,4
  exit 0
fi

if [[ "${1:-}" == "--chaos" ]]; then
  OUT="${2:-BENCH_chaos.json}"
  ensure_built bench_chaos
  require_optimized_build
  "$BUILD_DIR/bench/bench_chaos" --json_out "$OUT"
  exit 0
fi

if [[ "${1:-}" == "--query" ]]; then
  OUT="${2:-BENCH_query.json}"
  ensure_built bench_query
  require_optimized_build
  "$BUILD_DIR/bench/bench_query" --json_out "$OUT"
  exit 0
fi

if [[ "${1:-}" == "--store" ]]; then
  OUT="${2:-BENCH_store.json}"
  ensure_built bench_store
  require_optimized_build
  "$BUILD_DIR/bench/bench_store" --json_out "$OUT"
  exit 0
fi

if [[ "${1:-}" == "--trace-overhead" ]]; then
  ensure_built bench_trace_overhead
  "$BUILD_DIR/bench/bench_trace_overhead"
  exit 0
fi

WITH_METRICS=0
if [[ "${1:-}" == "--with-metrics" ]]; then
  WITH_METRICS=1
  shift || true
fi

OUT="${1:-BENCH_micro.json}"
shift || true

ensure_built bench_micro_perf
require_optimized_build
BIN="$BUILD_DIR/bench/bench_micro_perf"
"$BIN" --print-build-info
"$BIN" --benchmark_format=json "$@" > "$OUT"
echo "wrote $OUT"

if [[ "$WITH_METRICS" == 1 ]]; then
  ensure_built bench_pipeline_metrics
  "$BUILD_DIR/bench/bench_pipeline_metrics" --merge-into "$OUT"
  echo "attached metrics snapshot to $OUT"
fi
