// The `dbsherlock` command-line tool: the full workflow of the paper's
// Figure 2 from a shell. Subcommands:
//
//   simulate  generate a telemetry CSV with an injected anomaly
//   plot      render an attribute as an ASCII (or SVG) chart
//   detect    find abnormal regions automatically (Section 7)
//   diagnose  explain an abnormal region (predicates + ranked causes)
//   teach     confirm a cause for a region and store/merge its causal model
//   models    list the causal models in a model file
//   client    drive a running dbsherlockd (append, query, diagnose-range)
//   store-inspect  print the manifest of an on-disk telemetry history dir
//
// Examples:
//   dbsherlock simulate --anomaly lock_contention --out incident.csv
//   dbsherlock plot --data incident.csv --attribute avg_latency_ms
//       --abnormal 60:120
//   dbsherlock diagnose --data incident.csv --abnormal 60:120
//       --models models.json
//   dbsherlock teach --data incident.csv --abnormal 60:120
//       --cause "Lock Contention" --action "spread hot district"
//       --models models.json

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "core/explainer.h"
#include "core/model_io.h"
#include "service/client.h"
#include "service/wire.h"
#include "simulator/dataset_gen.h"
#include "simulator/fault_injector.h"
#include "store/tenant_store.h"
#include "tsdata/data_quality.h"
#include "tsdata/dataset_io.h"
#include "viz/chart.h"
#include "viz/incident_report.h"

namespace {

using namespace dbsherlock;

/// Minimal --flag value argument map.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      std::string name = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[name] = argv[++i];
      } else {
        values_[name] = "true";
      }
    }
  }

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    auto parsed = common::ParseDouble(it->second);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--%s: %s\n", name.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(2);
    }
    return *parsed;
  }

  bool Has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
};

/// Exit code for a failed Status: one distinct code per StatusCode so
/// scripts can branch on the failure class without parsing stderr.
/// (0 = success, 1 = generic failure, 2 = usage; documented in README.)
int ExitCodeFor(const common::Status& status) {
  switch (status.code()) {
    case common::StatusCode::kOk: return 0;
    case common::StatusCode::kInvalidArgument: return 3;
    case common::StatusCode::kNotFound: return 4;
    case common::StatusCode::kOutOfRange: return 5;
    case common::StatusCode::kFailedPrecondition: return 6;
    case common::StatusCode::kIoError: return 7;
    case common::StatusCode::kParseError: return 8;
    case common::StatusCode::kDeadlineExceeded: return 10;
    case common::StatusCode::kResourceExhausted: return 11;
    case common::StatusCode::kInternal: return 9;
  }
  return 1;
}

[[noreturn]] void Die(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(ExitCodeFor(status));
}

/// Loads --data with the hostile-input flags shared by every data-reading
/// subcommand: --allow-unsorted ingests out-of-order/duplicate timestamps
/// instead of rejecting them, --repair runs the data-quality repair
/// pipeline (implies --allow-unsorted: a corrupted file is exactly what
/// repair exists for), and --quality-report prints the audit (as JSON with
/// --quality-report json).
tsdata::Dataset LoadData(const Args& args) {
  std::string path = args.Get("data");
  if (path.empty()) {
    std::fprintf(stderr, "error: --data <csv> is required\n");
    std::exit(2);
  }
  tsdata::DatasetCsvOptions csv_options;
  csv_options.allow_unsorted = args.Has("allow-unsorted") || args.Has("repair");
  auto dataset = tsdata::ReadDatasetFile(path, csv_options);
  if (!dataset.ok()) Die(dataset.status());

  if (args.Has("quality-report")) {
    auto report = tsdata::AuditDataset(*dataset);
    if (!report.ok()) Die(report.status());
    if (args.Get("quality-report") == "json") {
      std::printf("%s\n", report->ToJson().Dump(2).c_str());
    } else {
      std::fputs(report->ToString().c_str(), stdout);
    }
  }
  if (args.Has("repair")) {
    // The interactive --repair opts into spike masking (the library
    // default is invariant-restoring only; see QualityOptions): an
    // operator handing the CLI a corrupted file wants glitches gone, and
    // a single wild sample left in place would stretch min-max
    // normalization enough to squash every real predicate below theta.
    tsdata::QualityOptions quality;
    quality.max_spike_run = 2;
    auto repaired = tsdata::RepairDataset(*dataset, quality);
    if (!repaired.ok()) Die(repaired.status());
    if (repaired->summary.total_changes() > 0) {
      std::fprintf(stderr,
                   "repair: dropped %zu bad-timestamp + %zu duplicate rows, "
                   "reordered %zu, interpolated %zu cells, masked %zu Inf + "
                   "%zu spikes, left %zu NaN\n",
                   repaired->summary.rows_dropped_non_finite_ts,
                   repaired->summary.rows_dropped_duplicate_ts,
                   repaired->summary.rows_reordered,
                   repaired->summary.cells_interpolated,
                   repaired->summary.cells_masked_inf,
                   repaired->summary.cells_masked_spike,
                   repaired->summary.cells_left_nan);
    }
    return std::move(repaired->data);
  }
  return std::move(*dataset);
}

tsdata::DiagnosisRegions ParseRegions(const Args& args) {
  std::string spec = args.Get("abnormal");
  if (spec.empty()) {
    std::fprintf(stderr,
                 "error: --abnormal <start:end>[,<start:end>...] required\n");
    std::exit(2);
  }
  tsdata::DiagnosisRegions regions;
  for (const std::string& part : common::Split(spec, ',')) {
    std::vector<std::string> bounds = common::Split(part, ':');
    auto fail = [&]() {
      std::fprintf(stderr, "error: bad region '%s' (want start:end)\n",
                   part.c_str());
      std::exit(2);
    };
    if (bounds.size() != 2) fail();
    auto start = common::ParseDouble(bounds[0]);
    auto end = common::ParseDouble(bounds[1]);
    if (!start.ok() || !end.ok() || *end <= *start) fail();
    regions.abnormal.Add(*start, *end);
  }
  return regions;
}

core::ModelRepository LoadModelsIfAny(const Args& args) {
  std::string path = args.Get("models");
  if (path.empty()) return {};
  auto repo = core::LoadRepository(path);
  if (repo.ok()) return std::move(*repo);
  if (repo.status().code() == common::StatusCode::kIoError) {
    return {};  // not created yet; `teach` will write it
  }
  Die(repo.status());
}

int CmdSimulate(const Args& args) {
  std::string anomaly_id = args.Get("anomaly", "workload_spike");
  std::string out_path = args.Get("out", "dbsherlock_dataset.csv");
  double duration = args.GetDouble("duration", 60.0);
  uint64_t seed = static_cast<uint64_t>(args.GetDouble("seed", 42.0));

  const simulator::AnomalyKind* found = nullptr;
  for (const simulator::AnomalyKind& kind : simulator::AllAnomalyKinds()) {
    if (simulator::AnomalyKindId(kind) == anomaly_id) found = &kind;
  }
  if (found == nullptr) {
    std::fprintf(stderr, "unknown anomaly '%s'; options:\n",
                 anomaly_id.c_str());
    for (simulator::AnomalyKind kind : simulator::AllAnomalyKinds()) {
      std::fprintf(stderr, "  %-22s (%s)\n",
                   simulator::AnomalyKindId(kind).c_str(),
                   simulator::AnomalyKindName(kind).c_str());
    }
    return 2;
  }

  simulator::DatasetGenOptions options;
  options.seed = seed;
  simulator::GeneratedDataset run =
      simulator::GenerateAnomalyDataset(options, *found, duration);

  // --inject-faults corrupts the telemetry the way a hostile collector
  // would, for exercising --repair / --quality-report downstream. The
  // output may hold duplicate/out-of-order timestamps; reading it back
  // requires --allow-unsorted (or --repair).
  if (args.Has("inject-faults")) {
    simulator::FaultInjectorConfig faults;
    faults.corruption_rate = args.GetDouble("fault-rate", 0.05);
    faults.seed = static_cast<uint64_t>(args.GetDouble("fault-seed", 1234.0));
    auto faulted = simulator::InjectFaults(run.data, faults);
    if (!faulted.ok()) Die(faulted.status());
    run.data = std::move(faulted->data);
    std::printf("%s\n", faulted->counts.ToString().c_str());
  }

  common::Status status = tsdata::WriteDatasetFile(run.data, out_path);
  if (!status.ok()) Die(status);
  const tsdata::TimeRange& truth = run.regions.abnormal.ranges()[0];
  std::printf("Wrote %zu rows x %zu attributes to %s\n", run.data.num_rows(),
              run.data.num_attributes(), out_path.c_str());
  std::printf("Injected anomaly: %s at [%.0f, %.0f)\n", run.label.c_str(),
              truth.start, truth.end);
  return 0;
}

int CmdPlot(const Args& args) {
  tsdata::Dataset data = LoadData(args);
  std::string attribute = args.Get("attribute", "avg_latency_ms");
  tsdata::RegionSpec abnormal;
  if (args.Has("abnormal")) abnormal = ParseRegions(args).abnormal;

  if (args.Has("svg")) {
    viz::SvgChartOptions options;
    options.title = attribute;
    auto svg = viz::RenderSvgChart(data, {{attribute}}, abnormal, options);
    if (!svg.ok()) Die(svg.status());
    std::string path = args.Get("svg");
    FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fwrite(svg->data(), 1, svg->size(), f);
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
    return 0;
  }

  viz::AsciiChartOptions options;
  options.title = attribute;
  auto chart = viz::RenderAsciiChart(data, attribute, abnormal, options);
  if (!chart.ok()) Die(chart.status());
  std::fputs(chart->c_str(), stdout);
  return 0;
}

int CmdDetect(const Args& args) {
  tsdata::Dataset data = LoadData(args);
  core::AnomalyDetectorOptions options;
  core::DetectionResult result = core::DetectAnomalies(data, options);
  if (result.abnormal.empty()) {
    std::printf("No anomaly detected.\n");
    return 0;
  }
  std::printf("Features: %s\n",
              common::Join(result.selected_attributes, ", ").c_str());
  std::printf("Detected abnormal region(s):\n");
  for (const auto& range : result.abnormal.ranges()) {
    std::printf("  %.0f:%.0f\n", range.start, range.end);
  }
  return 0;
}

void PrintExplanation(const core::Explanation& explanation) {
  if (explanation.predicates.empty()) {
    std::printf("No attribute separates the regions.\n");
    return;
  }
  std::printf("Predicates:\n");
  for (const auto& diag : explanation.predicates) {
    std::printf("  %-55s (separation power %.2f)\n",
                diag.predicate.ToString().c_str(), diag.separation_power);
  }
  if (!explanation.causes.empty()) {
    std::printf("\nLikely causes:\n");
    for (const auto& cause : explanation.causes) {
      std::printf("  %-28s %.1f%%", cause.cause.c_str(), cause.confidence);
      if (!cause.suggested_action.empty()) {
        std::printf("   [last fix: %s]", cause.suggested_action.c_str());
      }
      std::printf("\n");
    }
  }
  if (!explanation.warnings.empty()) {
    std::printf("\nData-quality warnings:\n");
    for (const auto& warning : explanation.warnings) {
      std::printf("  %-28s %s\n", warning.attribute.c_str(),
                  warning.reason.c_str());
    }
  }
}

core::Explainer MakeExplainer(const Args& args) {
  core::Explainer::Options options;
  options.predicate_options.normalized_diff_threshold =
      args.GetDouble("theta", 0.2);
  options.predicate_options.num_partitions =
      static_cast<size_t>(args.GetDouble("partitions", 250.0));
  options.predicate_options.anomaly_distance_multiplier =
      args.GetDouble("delta", 10.0);
  // Clamp before the unsigned cast: negative-double-to-size_t is UB.
  options.predicate_options.parallelism =
      static_cast<size_t>(std::max(0.0, args.GetDouble("threads", 0.0)));
  options.confidence_threshold = args.GetDouble("lambda", 20.0);
  core::Explainer sherlock(options);
  // Note: keep the repository in a named variable; iterating
  // `LoadModelsIfAny(args).models()` directly would dangle (the range-for
  // temporary-lifetime fix only lands in C++23).
  core::ModelRepository loaded = LoadModelsIfAny(args);
  for (const core::CausalModel& m : loaded.models()) {
    sherlock.repository().AddUnmerged(m);
  }
  return sherlock;
}

int CmdDiagnose(const Args& args) {
  tsdata::Dataset data = LoadData(args);
  core::Explainer sherlock = MakeExplainer(args);
  core::Explanation explanation;
  if (args.Has("abnormal")) {
    explanation = sherlock.Diagnose(data, ParseRegions(args));
  } else {
    core::DetectionResult detected;
    explanation = sherlock.DiagnoseAuto(data, &detected);
    if (detected.abnormal.empty()) {
      std::printf("No anomaly detected; pass --abnormal start:end to force "
                  "a region.\n");
      return 0;
    }
    std::printf("Auto-detected abnormal region(s):");
    for (const auto& r : detected.abnormal.ranges()) {
      std::printf(" %.0f:%.0f", r.start, r.end);
    }
    std::printf("\n\n");
  }
  PrintExplanation(explanation);
  return 0;
}

int CmdTeach(const Args& args) {
  std::string cause = args.Get("cause");
  std::string models_path = args.Get("models");
  if (cause.empty() || models_path.empty()) {
    std::fprintf(stderr, "error: --cause and --models are required\n");
    return 2;
  }
  tsdata::Dataset data = LoadData(args);
  core::Explainer sherlock = MakeExplainer(args);
  core::Explanation explanation = sherlock.Diagnose(data, ParseRegions(args));
  if (explanation.predicates.empty()) {
    std::fprintf(stderr, "error: no predicates found; nothing to store\n");
    return 1;
  }
  sherlock.AcceptDiagnosis(cause, explanation, args.Get("action"));
  common::Status status =
      core::SaveRepository(sherlock.repository(), models_path);
  if (!status.ok()) Die(status);
  const core::CausalModel* model = sherlock.repository().Find(cause);
  std::printf("Stored causal model '%s' (%zu predicates, %d diagnoses) in "
              "%s\n",
              cause.c_str(), model->predicates.size(), model->num_sources,
              models_path.c_str());
  return 0;
}

int CmdReport(const Args& args) {
  std::string out_path = args.Get("out", "incident_report.html");
  tsdata::Dataset data = LoadData(args);
  tsdata::DiagnosisRegions regions = ParseRegions(args);
  core::Explainer sherlock = MakeExplainer(args);
  core::Explanation explanation = sherlock.Diagnose(data, regions);

  viz::IncidentReportOptions report_options;
  report_options.title = args.Get("title", "DBSherlock incident report");
  auto html =
      viz::RenderIncidentReport(data, regions, explanation, report_options);
  if (!html.ok()) Die(html.status());
  FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(html->data(), 1, html->size(), f);
  std::fclose(f);
  std::printf("Wrote %s (%zu predicates, %zu causes).\n", out_path.c_str(),
              explanation.predicates.size(), explanation.causes.size());
  return 0;
}

int CmdModels(const Args& args) {
  std::string path = args.Get("models");
  if (path.empty()) {
    std::fprintf(stderr, "error: --models <file> is required\n");
    return 2;
  }
  auto repo = core::LoadRepository(path);
  if (!repo.ok()) Die(repo.status());
  std::printf("%zu causal model(s) in %s\n", repo->size(), path.c_str());
  for (const core::CausalModel& m : repo->models()) {
    std::printf("\n%s  (%zu predicates, %d diagnoses%s%s)\n",
                m.cause.c_str(), m.predicates.size(), m.num_sources,
                m.suggested_action.empty() ? "" : ", action: ",
                m.suggested_action.c_str());
    for (const core::Predicate& p : m.predicates) {
      std::printf("  %s\n", p.ToString().c_str());
    }
  }
  return 0;
}

/// `dbsherlock client`: drive a running dbsherlockd over its wire protocol
/// (see src/service/wire.h and README "Running the daemon"). One action
/// per invocation:
///   --ping | --stats | --models | --modelsync [SEQ] | --health
///   --hello --tenant T --schema "cpu:num,mode:cat"
///   --append-csv f.csv --tenant T   (HELLOs with the CSV's schema, then
///                                    streams every row, honoring
///                                    RETRY_AFTER backpressure)
///   --teach m.json                  (teaches every model in the file)
///   --diagnoses --tenant T | --flush --tenant T
///   --raw "LINE"                    (send one raw request line)
int CmdClient(const Args& args) {
  std::string connect = args.Get("connect", "127.0.0.1:7379");
  size_t colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants host:port\n");
    return 2;
  }
  auto port = common::ParseInt64(connect.substr(colon + 1));
  if (!port.ok()) Die(port.status());
  service::Client::Options client_options;
  client_options.connect_timeout_ms =
      static_cast<int>(args.GetDouble("connect-timeout-ms", 0));
  client_options.deadline_ms =
      static_cast<int>(args.GetDouble("deadline-ms", 0));
  auto client = service::Client::Connect(
      connect.substr(0, colon), static_cast<int>(*port), client_options);
  if (!client.ok()) Die(client.status());

  if (args.Has("health")) {
    auto json = (*client)->Health();
    if (!json.ok()) Die(json.status());
    std::printf("%s\n", json->Dump(2).c_str());
    return 0;
  }
  if (args.Has("ping")) {
    common::Status status = (*client)->Ping();
    if (!status.ok()) Die(status);
    std::printf("pong\n");
    return 0;
  }
  if (args.Has("raw")) {
    auto response = (*client)->Call(args.Get("raw"));
    if (!response.ok()) Die(response.status());
    switch (response->kind) {
      case service::Response::Kind::kOk:
        std::printf("OK %s\n", response->detail.c_str());
        return 0;
      case service::Response::Kind::kRetryAfter:
        std::printf("RETRY_AFTER %d\n", response->retry_after_ms);
        return 0;
      case service::Response::Kind::kErr:
        Die(response->error);
    }
    return 9;
  }
  if (args.Has("stats") || args.Has("models")) {
    auto json = args.Has("stats") ? (*client)->Stats() : (*client)->Models();
    if (!json.ok()) Die(json.status());
    std::printf("%s\n", json->Dump(2).c_str());
    return 0;
  }
  if (args.Has("modelsync")) {
    // The replication pull a shard peer would make: model corpus with
    // store seq + CRC (see fleet/model_sync.h).
    auto since = common::ParseInt64(args.Get("modelsync", "0"));
    if (!since.ok() || *since < 0) {
      std::fprintf(stderr, "--modelsync wants a since-seq >= 0\n");
      return 2;
    }
    auto json = (*client)->ModelSync(static_cast<uint64_t>(*since));
    if (!json.ok()) Die(json.status());
    std::printf("%s\n", json->Dump(2).c_str());
    return 0;
  }
  if (args.Has("hello")) {
    auto schema = service::ParseSchemaSpec(args.Get("schema"));
    if (!schema.ok()) Die(schema.status());
    common::Status status = (*client)->Hello(args.Get("tenant"), *schema);
    if (!status.ok()) Die(status);
    std::printf("hello %s\n", args.Get("tenant").c_str());
    return 0;
  }
  if (args.Has("teach")) {
    auto repo = core::LoadRepository(args.Get("teach"));
    if (!repo.ok()) Die(repo.status());
    for (const core::CausalModel& model : repo->models()) {
      common::Status status = (*client)->Teach(model);
      if (!status.ok()) Die(status);
    }
    std::printf("taught %zu model(s)\n", repo->size());
    return 0;
  }
  if (args.Has("flush") || args.Has("diagnoses")) {
    std::string tenant = args.Get("tenant");
    if (args.Has("flush")) {
      common::Status status = (*client)->Flush(tenant);
      if (!status.ok()) Die(status);
      if (!args.Has("diagnoses")) {
        std::printf("flushed %s\n", tenant.c_str());
        return 0;
      }
    }
    auto json = (*client)->Diagnoses(tenant);
    if (!json.ok()) Die(json.status());
    std::printf("%s\n", json->Dump(2).c_str());
    return 0;
  }
  if (args.Has("append-csv")) {
    std::string tenant = args.Get("tenant");
    std::string path = args.Get("append-csv");
    // Stream the file in bounded batches instead of materializing the
    // whole dataset: each batch is re-parsed with the real CSV parser
    // (header + batch lines), so quoting/typing match ReadDatasetFile
    // while memory stays O(batch). Arbitrarily long replay files work.
    constexpr size_t kBatchRows = 512;
    std::ifstream in(path);
    if (!in) {
      Die(common::Status::IoError("cannot read " + path));
    }
    std::string header;
    if (!std::getline(in, header)) {
      Die(common::Status::ParseError(path + ": empty file"));
    }
    bool said_hello = false;
    size_t total_rows = 0;
    size_t retries = 0;
    bool done = false;
    while (!done) {
      std::string text = header + "\n";
      size_t batch_rows = 0;
      std::string line;
      while (batch_rows < kBatchRows && std::getline(in, line)) {
        if (common::Trim(line).empty()) continue;
        text += line;
        text += '\n';
        ++batch_rows;
      }
      if (batch_rows < kBatchRows) done = true;
      if (batch_rows == 0) break;
      // Cross-batch ordering is the server's job; within a batch the
      // parser still rejects garbage timestamps.
      tsdata::DatasetCsvOptions csv_options;
      csv_options.allow_unsorted = true;
      auto batch = tsdata::DatasetFromCsv(text, csv_options);
      if (!batch.ok()) Die(batch.status());
      if (!said_hello) {
        common::Status status = (*client)->Hello(tenant, batch->schema());
        if (!status.ok()) Die(status);
        said_hello = true;
      }
      for (size_t row = 0; row < batch->num_rows(); ++row) {
        std::vector<tsdata::Cell> cells;
        cells.reserve(batch->schema().num_attributes());
        for (size_t a = 0; a < batch->schema().num_attributes(); ++a) {
          const tsdata::Column& column = batch->column(a);
          if (column.kind() == tsdata::AttributeKind::kNumeric) {
            cells.emplace_back(column.numeric(row));
          } else {
            cells.emplace_back(column.CategoryName(column.code(row)));
          }
        }
        common::Status status =
            (*client)->AppendRetrying(tenant, batch->timestamp(row), cells,
                                      /*max_retries=*/10000, &retries);
        if (!status.ok()) Die(status);
      }
      total_rows += batch->num_rows();
    }
    if (!said_hello) {
      Die(common::Status::ParseError(path + ": no data rows"));
    }
    std::printf("appended %zu row(s) to %s (%zu backpressure retries)\n",
                total_rows, tenant.c_str(), retries);
    return 0;
  }
  if (args.Has("explain")) {
    std::string tenant = args.Get("tenant");
    std::string statement = args.Get("explain");
    if (common::Trim(statement).empty()) {
      std::fprintf(stderr,
                   "--explain wants a DQL statement, e.g. "
                   "\"EXPLAIN WHERE latency > p99 BETWEEN 100 160\"\n");
      return 2;
    }
    std::string format = args.Get("report", "md");
    if (format != "md" && format != "json") {
      std::fprintf(stderr, "--report wants md or json\n");
      return 2;
    }
    auto json = (*client)->Explain(tenant, statement);
    if (!json.ok()) Die(json.status());
    if (format == "json") {
      std::printf("%s\n", json->Dump(2).c_str());
      return 0;
    }
    auto markdown = json->GetString("markdown");
    if (!markdown.ok()) Die(markdown.status());
    std::printf("%s\n", markdown->c_str());
    return 0;
  }
  if (args.Has("query") || args.Has("diagnose-range")) {
    std::string tenant = args.Get("tenant");
    bool query = args.Has("query");
    std::string spec = query ? args.Get("query") : args.Get("diagnose-range");
    std::vector<std::string> parts = common::Split(spec, ':');
    if (parts.size() != 2) {
      std::fprintf(stderr, "--%s wants T0:T1 (seconds)\n",
                   query ? "query" : "diagnose-range");
      return 2;
    }
    auto t0 = common::ParseDouble(parts[0]);
    if (!t0.ok()) Die(t0.status());
    auto t1 = common::ParseDouble(parts[1]);
    if (!t1.ok()) Die(t1.status());
    auto json = query ? (*client)->Query(tenant, *t0, *t1, args.Get("where"))
                      : (*client)->DiagnoseRange(tenant, *t0, *t1);
    if (!json.ok()) Die(json.status());
    if (query && args.Has("csv-out")) {
      // Peel the CSV payload out of the JSON envelope for shell pipelines.
      auto csv = json->GetString("csv");
      if (!csv.ok()) Die(csv.status());
      std::printf("%s", csv->c_str());
      return 0;
    }
    std::printf("%s\n", json->Dump(2).c_str());
    return 0;
  }
  std::fprintf(stderr,
               "client: pick one of --ping --hello --append-csv --teach "
               "--diagnoses --flush --query --diagnose-range --explain "
               "--stats --models --modelsync --health --raw\n");
  return 2;
}

/// `dbsherlock store-inspect`: open a tenant's on-disk telemetry history
/// directory (one dir per tenant under dbsherlockd's --store-dir) and
/// print its recovery report, schema, and segment manifest. Opening runs
/// the store's normal crash recovery, so a torn tail left by kill -9 is
/// truncated here exactly as the daemon would on restart. --dump prints
/// every stored row as CSV instead.
int CmdStoreInspect(const Args& args) {
  std::string dir = args.Get("dir");
  if (dir.empty()) {
    std::fprintf(stderr, "error: --dir <tenant history dir> is required\n");
    return 2;
  }
  store::TenantStore::Options options;
  options.dir = dir;  // empty schema: adopt whatever is on disk
  auto open = store::TenantStore::Open(options);
  if (!open.ok()) Die(open.status());
  store::TenantStore& tenant_store = **open;

  if (args.Has("dump")) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    auto all = tenant_store.Scan(-kInf, kInf);
    if (!all.ok()) Die(all.status());
    std::fputs(tsdata::DatasetToCsv(*all).c_str(), stdout);
    return 0;
  }

  const store::RecoveryReport& rec = tenant_store.recovery();
  std::printf("%s: %zu segment(s), %llu sealed row(s), %llu byte(s)\n",
              dir.c_str(), tenant_store.num_segments(),
              static_cast<unsigned long long>(tenant_store.sealed_rows()),
              static_cast<unsigned long long>(tenant_store.sealed_bytes()));
  std::printf(
      "recovery: %zu segment(s) ok, %zu dropped (%llu torn byte(s))\n",
      rec.segments_recovered, rec.segments_dropped,
      static_cast<unsigned long long>(rec.bytes_dropped));
  std::printf("schema: %s\n",
              service::FormatSchemaSpec(tenant_store.schema()).c_str());
  if (tenant_store.compression_ratio() > 0.0) {
    std::printf("compression: %.3fx of raw CSV\n",
                tenant_store.compression_ratio());
  }
  const bool show_zones = args.Has("zones");
  const tsdata::Schema& schema = tenant_store.schema();
  for (const store::SegmentInfo& seg : tenant_store.Manifest()) {
    std::printf("  seg %08llu  rows %8llu  bytes %8llu  [%.3f, %.3f]  %s\n",
                static_cast<unsigned long long>(seg.seq),
                static_cast<unsigned long long>(seg.rows),
                static_cast<unsigned long long>(seg.bytes), seg.min_ts,
                seg.max_ts, seg.path.c_str());
    if (!show_zones) continue;
    // Per-attribute zone maps (what the scan planner prunes against).
    for (size_t i = 0; i < seg.zones.attrs.size(); ++i) {
      const store::AttrZone& zone = seg.zones.attrs[i];
      std::string name = i < schema.num_attributes()
                             ? schema.attribute(i).name
                             : common::StrFormat("attr%zu", i);
      if (zone.non_nan_count == 0) {
        std::printf("      zone %-20s  all-NaN\n", name.c_str());
      } else if (zone.min > zone.max) {
        // Categorical column: counted, but no numeric range to prune on.
        std::printf("      zone %-20s  no numeric range  rows %llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(zone.non_nan_count));
      } else {
        std::printf(
            "      zone %-20s  [%.6g, %.6g]  non_nan %llu  finite %llu\n",
            name.c_str(), zone.min, zone.max,
            static_cast<unsigned long long>(zone.non_nan_count),
            static_cast<unsigned long long>(zone.finite_count));
      }
    }
  }
  return 0;
}

common::Status WriteTextFile(const std::string& path,
                             const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return common::Status::IoError("cannot write " + path);
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return common::Status::OK();
}

/// Pre-registers the pipeline's well-known counters so a metrics snapshot
/// always carries the full taxonomy: a 0 means "never happened" while an
/// absent key would be ambiguous with "not instrumented" — and subsystems
/// this command never touched (e.g. the streaming monitor during a batch
/// diagnose) still show up for scripts diffing snapshots across runs.
void PreRegisterPipelineMetrics() {
  static const char* const kCounters[] = {
      "explainer.diagnoses",
      "detect.runs",
      "predgen.predicates_emitted",
      "predgen.attributes_skipped_quality",
      "repository.models_scored",
      "parallel.tasks_submitted",
      "partition_cache.hits",
      "partition_cache.misses",
      "partition_cache.entries_built",
      "partition_cache.evictions",
      "streaming_monitor.rows_appended",
      "streaming_monitor.rows_dropped_late",
      "streaming_monitor.rows_dropped_duplicate",
      "streaming_monitor.rows_dropped_non_finite",
      "streaming_monitor.detections_run",
      "streaming_monitor.alerts_raised",
  };
  for (const char* name : kCounters) {
    common::MetricsRegistry::Global().GetCounter(name);
  }
}

/// Observability flags, accepted by every subcommand (DESIGN.md §9):
///   --trace-out f.json   record spans for the whole run, write a
///                        chrome://tracing file (plus a per-span summary
///                        table on stderr)
///   --metrics-out f.json write the process metrics snapshot as JSON
///   --print-metrics      print the flat metrics snapshot to stderr
/// Reports are written after the command finishes, win or lose, so a
/// failing diagnosis still leaves its trace behind.
int EmitObservability(const Args& args, int command_rc) {
  int rc = command_rc;
  if (args.Has("trace-out")) {
    common::Tracer& tracer = common::Tracer::Global();
    tracer.Disable();
    common::Status status =
        WriteTextFile(args.Get("trace-out"), tracer.ExportChromeJson());
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      if (rc == 0) rc = ExitCodeFor(status);
    } else {
      std::fprintf(stderr, "trace: %zu span(s) -> %s (%zu dropped)\n",
                   tracer.events_recorded() - tracer.events_dropped(),
                   args.Get("trace-out").c_str(), tracer.events_dropped());
      std::fputs(tracer.SummaryText().c_str(), stderr);
    }
  }
  if (args.Has("metrics-out")) {
    common::Status status =
        WriteTextFile(args.Get("metrics-out"),
                      common::MetricsRegistry::Global().SnapshotJson().Dump(2));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      if (rc == 0) rc = ExitCodeFor(status);
    } else {
      std::fprintf(stderr, "metrics: snapshot -> %s\n",
                   args.Get("metrics-out").c_str());
    }
  }
  if (args.Has("print-metrics")) {
    std::fputs(common::MetricsRegistry::Global().SnapshotText().c_str(),
               stderr);
  }
  return rc;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: dbsherlock <command> [flags]\n"
      "commands:\n"
      "  simulate  --anomaly <id> [--duration N] [--seed S] [--out f.csv]\n"
      "            [--inject-faults [--fault-rate R] [--fault-seed S]]\n"
      "  plot      --data f.csv --attribute <name> [--abnormal a:b]\n"
      "            [--svg out.svg]\n"
      "  detect    --data f.csv\n"
      "  diagnose  --data f.csv [--abnormal a:b[,c:d]] [--models m.json]\n"
      "            [--theta T] [--delta D] [--partitions R] [--lambda L]\n"
      "            [--threads N]  (0 = one per core, 1 = serial)\n"
      "  teach     --data f.csv --abnormal a:b --cause NAME --models m.json\n"
      "            [--action TEXT]\n"
      "  report    --data f.csv --abnormal a:b [--models m.json]\n"
      "            [--out report.html] [--title TEXT]\n"
      "  models    --models m.json\n"
      "  client    --connect host:port  (drive a running dbsherlockd)\n"
      "            [--connect-timeout-ms N] [--deadline-ms N]  (0 = wait\n"
      "              forever; a missed deadline exits 10)\n"
      "            --ping | --stats | --models | --modelsync [SEQ] |\n"
      "            --health | --raw \"LINE\"\n"
      "            | --hello --tenant T --schema \"a:num,b:cat\"\n"
      "            | --append-csv f.csv --tenant T  (streams in bounded\n"
      "              batches, honoring RETRY_AFTER backpressure)\n"
      "            | --teach m.json | --diagnoses --tenant T\n"
      "            | --flush --tenant T\n"
      "            | --query T0:T1 --tenant T [--csv-out]\n"
      "              [--where \"attr>=v;attr<=v\"]  (zone-map pushdown)\n"
      "            | --diagnose-range T0:T1 --tenant T\n"
      "            | --explain \"DQL\" --tenant T [--report md|json]\n"
      "              (e.g. \"EXPLAIN WHERE latency > p99 BETWEEN 100 160\n"
      "              RANK BY confidence TOP 3\"; md prints the incident\n"
      "              report, json the full structured object)\n"
      "  store-inspect --dir DIR  (tenant history dir: recovery report,\n"
      "            schema, segment manifest; --dump prints rows as CSV;\n"
      "            --zones prints per-attribute zone maps per segment)\n"
      "data flags (plot/detect/diagnose/teach/report):\n"
      "  --allow-unsorted  ingest duplicate/out-of-order timestamps\n"
      "  --repair          run the data-quality repair pipeline after load\n"
      "                    (implies --allow-unsorted)\n"
      "  --quality-report [json]  print the data-quality audit\n"
      "observability flags (all commands):\n"
      "  --trace-out f.json    record pipeline spans, write a\n"
      "                        chrome://tracing file + summary on stderr\n"
      "  --metrics-out f.json  write the metrics snapshot (counters,\n"
      "                        gauges, latency histograms) as JSON\n"
      "  --print-metrics       print the flat metrics snapshot to stderr\n"
      "exit codes: 0 ok, 2 usage, 3 invalid argument, 4 not found,\n"
      "  5 out of range, 6 failed precondition, 7 I/O error, 8 parse\n"
      "  error, 9 internal error, 10 deadline exceeded, 11 resource\n"
      "  exhausted\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args(argc, argv, 2);
  // Tracing must be live before the command runs; it is torn down (and the
  // files are written) in EmitObservability.
  if (args.Has("trace-out")) dbsherlock::common::Tracer::Global().Enable();
  if (args.Has("metrics-out") || args.Has("print-metrics")) {
    PreRegisterPipelineMetrics();
  }
  int rc;
  if (command == "simulate") rc = CmdSimulate(args);
  else if (command == "plot") rc = CmdPlot(args);
  else if (command == "detect") rc = CmdDetect(args);
  else if (command == "diagnose") rc = CmdDiagnose(args);
  else if (command == "teach") rc = CmdTeach(args);
  else if (command == "report") rc = CmdReport(args);
  else if (command == "models") rc = CmdModels(args);
  else if (command == "client") rc = CmdClient(args);
  else if (command == "store-inspect") rc = CmdStoreInspect(args);
  else return Usage();
  return EmitObservability(args, rc);
}
