// Continuous monitoring: telemetry streams into a StreamingMonitor row by
// row (as DBSeer's collectors would deliver it); the monitor watches a
// sliding window, detects the I/O storm as it happens, and raises an alert
// that already carries the diagnosis — because the causal model from last
// month's identical incident was preloaded.
//
//   ./build/examples/live_monitoring

#include <cstdio>

#include "core/streaming_monitor.h"
#include "simulator/dataset_gen.h"
#include "simulator/metric_schema.h"

int main() {
  using namespace dbsherlock;

  // --- Last month: an I/O saturation incident was diagnosed and taught ---
  simulator::DatasetGenOptions options;
  options.seed = 101;
  simulator::GeneratedDataset history = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kIoSaturation, 60.0);
  core::Explainer teacher;
  core::Explanation past = teacher.Diagnose(history.data, history.regions);
  teacher.AcceptDiagnosis("I/O Saturation", past,
                          "kill the runaway backup job on the data volume");

  // --- Today: live telemetry with a fresh I/O storm at t=400 -------------
  simulator::DatasetGenOptions today = options;
  today.seed = 102;
  today.normal_duration_sec = 600.0;
  simulator::GeneratedDataset live = simulator::GenerateAnomalyDataset(
      today, simulator::AnomalyKind::kIoSaturation, 60.0);

  core::StreamingMonitor monitor(live.data.schema(), {});
  for (const core::CausalModel& model : teacher.repository().models()) {
    monitor.explainer().repository().AddUnmerged(model);
  }

  std::printf("Streaming %zu seconds of telemetry into the monitor "
              "(true anomaly at [%.0f, %.0f))...\n",
              live.data.num_rows(), live.regions.abnormal.ranges()[0].start,
              live.regions.abnormal.ranges()[0].end);

  size_t alerts = 0;
  for (size_t row = 0; row < live.data.num_rows(); ++row) {
    std::vector<tsdata::Cell> cells;
    for (size_t c = 0; c < live.data.num_attributes(); ++c) {
      const tsdata::Column& col = live.data.column(c);
      if (col.kind() == tsdata::AttributeKind::kNumeric) {
        cells.emplace_back(col.numeric(row));
      } else {
        cells.emplace_back(col.CategoryName(col.code(row)));
      }
    }
    auto alert = monitor.Append(live.data.timestamp(row), cells);
    if (!alert.has_value()) continue;
    ++alerts;
    std::printf("\n*** ALERT #%zu at t=%.0f: anomaly in [%.0f, %.0f)\n",
                alerts, alert->raised_at, alert->region.start,
                alert->region.end);
    if (alert->explanation.causes.empty()) {
      // No stored model clears the confidence bar: likely a workload
      // fluctuation or something new — triage manually.
      std::printf("    no known cause matches; raw predicates only\n");
    }
    for (const auto& cause : alert->explanation.causes) {
      std::printf("    likely cause: %-18s %.1f%%\n", cause.cause.c_str(),
                  cause.confidence);
      if (!cause.suggested_action.empty()) {
        std::printf("    last fix:     %s\n",
                    cause.suggested_action.c_str());
      }
    }
    size_t shown = 0;
    for (const auto& diag : alert->explanation.predicates) {
      if (++shown > 4) break;
      std::printf("    evidence:     %s\n",
                  diag.predicate.ToString().c_str());
    }
  }
  if (alerts == 0) {
    std::printf("\nNo alerts raised (unexpected for this scenario).\n");
  }
  return 0;
}
