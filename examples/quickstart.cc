// Quickstart: simulate an OLTP server that suffers a lock-contention storm,
// mark the slow window as abnormal, and ask DBSherlock to explain it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/explainer.h"
#include "simulator/dataset_gen.h"

int main() {
  using namespace dbsherlock;

  // 1. Produce two minutes of normal TPC-C-like telemetry with a 60-second
  //    lock-contention anomaly in the middle. In a real deployment this
  //    table would come from DBSeer's per-second logs (Section 2.1).
  simulator::DatasetGenOptions options;
  options.seed = 2016;
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kLockContention, 60.0);
  std::printf("Simulated %zu seconds of telemetry with %zu attributes.\n",
              run.data.num_rows(), run.data.num_attributes());

  // 2. The DBA saw the latency spike between t=60 and t=120 and selects it
  //    as the abnormal region (the rest of the plot is implicitly normal).
  tsdata::DiagnosisRegions regions;
  regions.abnormal.Add(60.0, 120.0);

  // 3. Diagnose.
  core::Explainer sherlock;
  core::Explanation explanation = sherlock.Diagnose(run.data, regions);

  std::printf("\nDBSherlock generated %zu predicates:\n",
              explanation.predicates.size());
  for (const auto& diag : explanation.predicates) {
    std::printf("  %-55s (separation power %.2f)\n",
                diag.predicate.ToString().c_str(), diag.separation_power);
  }

  // 4. The DBA recognizes the lock pile-up and tells DBSherlock; the
  //    accepted predicates become a causal model for future diagnoses.
  sherlock.AcceptDiagnosis("Lock Contention", explanation);
  std::printf("\nStored causal model 'Lock Contention' with %zu predicates.\n",
              sherlock.repository().models()[0].predicates.size());

  // 5. Next week the same thing happens; DBSherlock now names the cause.
  simulator::DatasetGenOptions next_week = options;
  next_week.seed = 2017;
  simulator::GeneratedDataset recurrence = simulator::GenerateAnomalyDataset(
      next_week, simulator::AnomalyKind::kLockContention, 45.0);
  core::Explanation second =
      sherlock.Diagnose(recurrence.data, recurrence.regions);
  std::printf("\nOn a new dataset, likely causes (confidence >= %.0f%%):\n",
              sherlock.options().confidence_threshold);
  for (const auto& cause : second.causes) {
    std::printf("  %-25s %.1f%%\n", cause.cause.c_str(), cause.confidence);
  }
  return 0;
}
