// Preprocessing + visualization (components (2) and (3) of the paper's
// Figure 2): start from *raw* logs — irregular /proc samples, a cumulative
// DBMS counter, a timestamped query log, a config-state stream — align
// them into the per-second statistics table, plot the latency, and
// diagnose the visible spike.
//
//   ./build/examples/preprocess_and_plot

#include <cstdio>

#include "common/random.h"
#include "core/explainer.h"
#include "tsdata/align.h"
#include "viz/chart.h"

int main() {
  using namespace dbsherlock;
  common::Pcg32 rng(2016);

  // --- Raw collection: what DBSeer's agents would have logged -----------
  // A CPU gauge sampled every ~700 ms, a *cumulative* lock-wait counter
  // sampled every ~2 s, a query log, and the flush-policy state stream.
  tsdata::RawCounterSeries cpu;
  cpu.name = "os_cpu_usage";
  cpu.aggregation = tsdata::Aggregation::kMean;

  tsdata::RawCounterSeries lock_waits;
  lock_waits.name = "lock_waits";
  lock_waits.aggregation = tsdata::Aggregation::kRate;

  std::vector<tsdata::QueryLogEntry> query_log;

  const double total = 240.0;
  const double ab_start = 120.0, ab_end = 180.0;
  double cumulative_waits = 0.0;
  for (double t = 0.0; t < total; t += 0.7) {
    bool ab = t >= ab_start && t < ab_end;
    cpu.samples.push_back(
        {t, (ab ? 30.0 : 45.0) + rng.NextGaussian(0.0, 3.0)});
  }
  for (double t = 0.0; t < total; t += 2.0) {
    bool ab = t >= ab_start && t < ab_end;
    cumulative_waits += ab ? rng.NextDouble(800.0, 1200.0)
                           : rng.NextDouble(5.0, 25.0);
    lock_waits.samples.push_back({t, cumulative_waits});
  }
  for (double t = 0.0; t < total; t += 1.0) {
    bool ab = t >= ab_start && t < ab_end;
    int queries = ab ? 40 : 300;  // throughput collapses under contention
    for (int q = 0; q < queries; q += 25) {
      double latency = ab ? rng.NextDouble(300.0, 900.0)
                          : rng.NextDouble(4.0, 15.0);
      query_log.push_back({t + rng.NextDouble(), latency,
                           rng.NextBernoulli(0.7) ? "SELECT" : "UPDATE"});
    }
  }
  tsdata::RawStateSeries policy;
  policy.name = "flush_policy";
  policy.samples = {{0.0, "adaptive"}};

  // --- Preprocess: summarize + align at 1-second intervals ---------------
  auto aligned = tsdata::AlignLogs({cpu, lock_waits}, query_log, {policy});
  if (!aligned.ok()) {
    std::fprintf(stderr, "alignment failed: %s\n",
                 aligned.status().ToString().c_str());
    return 1;
  }
  std::printf("Aligned %zu raw streams into %zu rows x %zu attributes.\n\n",
              static_cast<size_t>(3 + 1), aligned->num_rows(),
              aligned->num_attributes());

  // --- Visualize: the latency plot a DBA would inspect -------------------
  tsdata::RegionSpec abnormal;
  abnormal.Add(ab_start, ab_end);
  viz::AsciiChartOptions chart_options;
  chart_options.title = "avg_latency_ms (aligned from the raw query log)";
  chart_options.width = 96;
  chart_options.height = 12;
  auto chart = viz::RenderAsciiChart(*aligned, "avg_latency_ms", abnormal,
                                     chart_options);
  if (chart.ok()) std::fputs(chart->c_str(), stdout);

  // --- Diagnose the selected region ---------------------------------------
  tsdata::DiagnosisRegions regions;
  regions.abnormal = abnormal;
  core::Explainer sherlock;
  core::Explanation ex = sherlock.Diagnose(*aligned, regions);
  std::printf("\nDBSherlock's explanation:\n");
  for (const auto& diag : ex.predicates) {
    std::printf("  %-45s (separation power %.2f)\n",
                diag.predicate.ToString().c_str(), diag.separation_power);
  }
  return 0;
}
