// Automatic anomaly detection (Section 7 of the paper): no user-marked
// region at all. DBSherlock selects high-potential attributes with a median
// filter, clusters the rows with DBSCAN, flags the small clusters as the
// anomaly, and explains it — then we compare against the ground truth.
//
//   ./build/examples/auto_detect

#include <cstdio>

#include "core/explainer.h"
#include "simulator/dataset_gen.h"

int main() {
  using namespace dbsherlock;

  // A 10-minute window of normal traffic with a 60-second I/O storm the
  // DBA has not noticed yet.
  simulator::DatasetGenOptions options;
  options.seed = 7;
  options.normal_duration_sec = 600.0;
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kIoSaturation, 60.0);
  const tsdata::TimeRange truth = run.regions.abnormal.ranges()[0];
  std::printf("Telemetry: %zu seconds; true anomaly at [%.0f, %.0f).\n",
              run.data.num_rows(), truth.start, truth.end);

  core::Explainer sherlock;
  core::DetectionResult detection;
  core::Explanation explanation = sherlock.DiagnoseAuto(run.data, &detection);

  std::printf("\nDetector selected %zu attributes (eps = %.4f):\n",
              detection.selected_attributes.size(), detection.epsilon);
  for (const auto& name : detection.selected_attributes) {
    std::printf("  %s\n", name.c_str());
  }

  std::printf("\nDetected abnormal region(s):\n");
  for (const auto& range : detection.abnormal.ranges()) {
    std::printf("  [%.0f, %.0f)\n", range.start, range.end);
  }

  size_t inside = 0;
  for (size_t row : detection.abnormal_rows) {
    if (truth.Contains(run.data.timestamp(row))) ++inside;
  }
  if (!detection.abnormal_rows.empty()) {
    std::printf("Overlap with ground truth: %.0f%% of %zu flagged rows.\n",
                100.0 * static_cast<double>(inside) /
                    static_cast<double>(detection.abnormal_rows.size()),
                detection.abnormal_rows.size());
  }

  std::printf("\nTop explanatory predicates:\n");
  size_t shown = 0;
  for (const auto& diag : explanation.predicates) {
    if (++shown > 8) break;
    std::printf("  %-50s (separation power %.2f)\n",
                diag.predicate.ToString().c_str(), diag.separation_power);
  }
  return 0;
}
