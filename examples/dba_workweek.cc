// A week in the life of a DBA with DBSherlock: several incidents get
// diagnosed and fed back as causal models (merging models of the same
// cause, Section 6.2); by Friday a compound incident is named directly
// from the accumulated knowledge.
//
//   ./build/examples/dba_workweek

#include <cstdio>

#include "core/explainer.h"
#include "core/model_io.h"
#include "simulator/dataset_gen.h"

namespace {

using namespace dbsherlock;

simulator::GeneratedDataset Incident(simulator::AnomalyKind kind,
                                     uint64_t seed, double duration) {
  simulator::DatasetGenOptions options;
  options.seed = seed;
  return simulator::GenerateAnomalyDataset(options, kind, duration);
}

}  // namespace

int main() {
  using namespace dbsherlock;
  core::Explainer sherlock;

  // --- Monday through Thursday: incidents are diagnosed manually, with
  // DBSherlock's predicates as clues, and the confirmed causes fed back.
  struct Day {
    const char* name;
    simulator::AnomalyKind kind;
    uint64_t seed;
    double duration;
  };
  const Day week[] = {
      {"Monday", simulator::AnomalyKind::kWorkloadSpike, 11, 50.0},
      {"Tuesday", simulator::AnomalyKind::kNetworkCongestion, 12, 65.0},
      {"Wednesday", simulator::AnomalyKind::kWorkloadSpike, 13, 35.0},
      {"Thursday", simulator::AnomalyKind::kIoSaturation, 14, 70.0},
  };
  for (const Day& day : week) {
    simulator::GeneratedDataset run =
        Incident(day.kind, day.seed, day.duration);
    core::Explanation ex = sherlock.Diagnose(run.data, run.regions);
    std::printf("%-10s %-22s -> %2zu predicates", day.name,
                simulator::AnomalyKindName(day.kind).c_str(),
                ex.predicates.size());
    if (!ex.causes.empty()) {
      std::printf("; DBSherlock already suggests '%s' (%.0f%%)",
                  ex.causes[0].cause.c_str(), ex.causes[0].confidence);
    }
    std::printf("\n");
    // The DBA confirms the true cause; same-cause models merge.
    sherlock.AcceptDiagnosis(simulator::AnomalyKindName(day.kind), ex);
  }

  std::printf("\nCausal models in the repository:\n");
  for (const auto& model : sherlock.repository().models()) {
    std::printf("  %-22s %zu predicates (from %d diagnoses)\n",
                model.cause.c_str(), model.predicates.size(),
                model.num_sources);
  }

  // --- Friday: a compound incident (spike + network trouble at once).
  simulator::DatasetGenOptions options;
  options.seed = 15;
  simulator::GeneratedDataset friday = simulator::GenerateCompoundDataset(
      options,
      {simulator::AnomalyKind::kWorkloadSpike,
       simulator::AnomalyKind::kNetworkCongestion},
      60.0);
  core::Explanation ex = sherlock.Diagnose(friday.data, friday.regions);
  std::printf("\nFriday     %s\n", friday.label.c_str());
  std::printf("Likely causes (confidence above the %.0f%% threshold):\n",
              sherlock.options().confidence_threshold);
  for (const auto& cause : ex.causes) {
    std::printf("  %-22s %.1f%%\n", cause.cause.c_str(), cause.confidence);
  }
  if (ex.causes.empty()) {
    std::printf("  (none above threshold; predicates shown instead)\n");
    std::printf("  %s\n", ex.PredicatesToString().c_str());
  }

  // --- Persist the accumulated knowledge for next week --------------------
  std::string path = "/tmp/dbsherlock_workweek_models.json";
  common::Status saved = core::SaveRepository(sherlock.repository(), path);
  if (saved.ok()) {
    auto reloaded = core::LoadRepository(path);
    std::printf("\nSaved %zu causal models to %s (reload check: %s).\n",
                sherlock.repository().size(), path.c_str(),
                reloaded.ok() && reloaded->size() == sherlock.repository().size()
                    ? "ok"
                    : "FAILED");
  }
  return 0;
}
