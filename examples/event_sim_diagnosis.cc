// Diagnosing the transaction-level engine's telemetry: every transaction
// in this run is individually simulated (2PL locks, CPU cores, disk
// channels), a lock-contention storm is injected, and DBSherlock explains
// the resulting latency spike from the engine's own metrics — showing the
// library operates on any aligned telemetry, not just the bundled
// flow-level schema.
//
//   ./build/examples/event_sim_diagnosis

#include <cstdio>

#include "core/explainer.h"
#include "simulator/event_sim.h"
#include "viz/chart.h"

int main() {
  using namespace dbsherlock;

  simulator::EventSimConfig config;
  simulator::EventSimulator engine(config, 2016);

  simulator::AnomalyEvent storm;
  storm.kind = simulator::AnomalyKind::kLockContention;
  storm.start_sec = 60.0;
  storm.duration_sec = 45.0;

  std::printf("Executing ~%d seconds of transactions (every statement, "
              "lock and I/O simulated)...\n", 150);
  std::vector<simulator::EventMetrics> rows = engine.Run(150.0, {storm});
  tsdata::Dataset data = simulator::EventMetricsToDataset(rows);

  tsdata::RegionSpec abnormal;
  abnormal.Add(storm.start_sec, storm.end_sec());
  viz::AsciiChartOptions chart_options;
  chart_options.title = "avg_latency_ms (transaction-level engine)";
  chart_options.width = 96;
  chart_options.height = 10;
  auto chart =
      viz::RenderAsciiChart(data, "avg_latency_ms", abnormal, chart_options);
  if (chart.ok()) std::fputs(chart->c_str(), stdout);

  tsdata::DiagnosisRegions regions;
  regions.abnormal = abnormal;
  core::Explainer::Options options;
  options.apply_domain_knowledge = false;  // schema has no MySQL/Linux attrs
  core::Explainer sherlock(options);
  core::Explanation ex = sherlock.Diagnose(data, regions);

  std::printf("\nDBSherlock's explanation of the spike:\n");
  for (const auto& diag : ex.predicates) {
    std::printf("  %-40s (separation power %.2f)\n",
                diag.predicate.ToString().c_str(), diag.separation_power);
  }
  std::printf("\nThe lock_wait predicates point straight at the 2PL pile-up "
              "the engine actually executed.\n");
  return 0;
}
