// Command-line diagnosis of an arbitrary telemetry CSV: the adoption path
// for data that did not come from the bundled simulator. The CSV layout is
// the one DatasetToCsv writes: a `timestamp` first column, one column per
// attribute, categorical columns marked with an `@cat` header suffix.
//
//   # Export a sample dataset, then diagnose it:
//   ./build/examples/diagnose_csv --demo out.csv
//   ./build/examples/diagnose_csv out.csv 60 120
//
// Arguments: <csv-path> <abnormal-start-sec> <abnormal-end-sec>
// (the rest of the timeline is treated as normal).

#include <cstdio>
#include <cstring>

#include "common/strings.h"
#include "core/explainer.h"
#include "simulator/dataset_gen.h"
#include "tsdata/dataset_io.h"

namespace {

using namespace dbsherlock;

int WriteDemo(const char* path) {
  simulator::DatasetGenOptions options;
  options.seed = 99;
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kDatabaseBackup, 60.0);
  common::Status status = tsdata::WriteDatasetFile(run.data, path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Wrote %zu rows to %s (anomaly: Database Backup in "
              "[60, 120)).\nDiagnose it with:\n  diagnose_csv %s 60 120\n",
              run.data.num_rows(), path, path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbsherlock;

  if (argc == 3 && std::strcmp(argv[1], "--demo") == 0) {
    return WriteDemo(argv[2]);
  }
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <csv-path> <abnormal-start> <abnormal-end>\n"
                 "       %s --demo <csv-path>\n",
                 argv[0], argv[0]);
    return 2;
  }

  auto dataset = tsdata::ReadDatasetFile(argv[1]);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto start = common::ParseDouble(argv[2]);
  auto end = common::ParseDouble(argv[3]);
  if (!start.ok() || !end.ok() || *end <= *start) {
    std::fprintf(stderr, "error: invalid abnormal region boundaries\n");
    return 2;
  }

  tsdata::DiagnosisRegions regions;
  regions.abnormal.Add(*start, *end);

  core::Explainer::Options options;
  // Generic CSVs may not have the MySQL/Linux attribute names; rules that
  // reference absent attributes are simply never triggered, so the default
  // knowledge base is safe to keep.
  core::Explainer sherlock(options);
  core::Explanation ex = sherlock.Diagnose(*dataset, regions);

  std::printf("%zu rows, %zu attributes; abnormal region [%.0f, %.0f).\n",
              dataset->num_rows(), dataset->num_attributes(), *start, *end);
  if (ex.predicates.empty()) {
    std::printf("No attribute separates the regions (try a lower theta or "
                "check the region boundaries).\n");
    return 0;
  }
  std::printf("\nExplanatory predicates:\n");
  for (const auto& diag : ex.predicates) {
    std::printf("  %-55s (separation power %.2f)\n",
                diag.predicate.ToString().c_str(), diag.separation_power);
  }
  return 0;
}
