// Figure 12 (Appendix D): sensitivity to the configurable parameters.
//
// (a) Number of partitions R in {125, 250, 500, 1000, 2000}: average
//     confidence of the correct merged model and total computation time.
// (b) Anomaly distance multiplier delta in {0.1, 0.5, 1, 5, 10}: average
//     confidence.
// (c) Normalized difference threshold theta in {0.01, 0.05, 0.1, 0.2,
//     0.4}: average confidence and number of generated predicates.
//
// Protocol per parameter value: 10 training datasets per class build a
// merged model; its confidence is measured on the held-out dataset
// (leave-one-out over all 11 rotations).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

struct SweepPoint {
  double avg_confidence = 0.0;
  double avg_predicates = 0.0;
  double elapsed_sec = 0.0;
};

SweepPoint RunPoint(const eval::Corpus& corpus,
                    const core::PredicateGenOptions& options,
                    const core::DomainKnowledge& knowledge) {
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();
  auto start = std::chrono::steady_clock::now();

  double conf_sum = 0.0;
  double pred_sum = 0.0;
  size_t count = 0;
  for (size_t test_idx = 0; test_idx < per_class; ++test_idx) {
    std::vector<std::vector<size_t>> train(num_classes);
    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t i = 0; i < per_class; ++i) {
        if (i != test_idx) train[c].push_back(i);
      }
    }
    core::ModelRepository repo =
        eval::BuildMergedRepository(corpus, train, options, &knowledge);
    for (size_t c = 0; c < num_classes; ++c) {
      const core::CausalModel* correct = repo.Find(corpus.ClassName(c));
      if (correct == nullptr) continue;
      conf_sum +=
          eval::ConfidenceOn(*correct, corpus.by_class[c][test_idx], options);
      pred_sum += static_cast<double>(correct->predicates.size());
      ++count;
    }
  }
  SweepPoint point;
  point.avg_confidence = conf_sum / static_cast<double>(count);
  point.avg_predicates = pred_sum / static_cast<double>(count);
  point.elapsed_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return point;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  flags.Validate();

  bench::PrintBanner(
      "Figure 12", "DBSherlock SIGMOD'16, Appendix D",
      "Parameter sensitivity: number of partitions R (a), anomaly distance "
      "multiplier delta (b), normalized difference threshold theta (c). "
      "Defaults {R, delta, theta} = {250, 10, 0.2}.");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();

  core::PredicateGenOptions defaults;
  defaults.num_partitions = 250;
  defaults.anomaly_distance_multiplier = 10.0;
  defaults.normalized_diff_threshold = 0.2;

  std::printf("\n(a) Number of partitions (R)\n");
  bench::TablePrinter ta({"R", "Avg confidence (%)", "Computation time (s)"},
                         {8, 20, 22});
  ta.PrintHeader();
  for (size_t r : {125u, 250u, 500u, 1000u, 2000u}) {
    core::PredicateGenOptions options = defaults;
    options.num_partitions = r;
    SweepPoint p = RunPoint(corpus, options, knowledge);
    ta.PrintRow({std::to_string(r), bench::Pct(p.avg_confidence),
                 bench::Num(p.elapsed_sec)});
  }

  std::printf("\n(b) Anomaly distance multiplier (delta)\n");
  bench::TablePrinter tb({"delta", "Avg confidence (%)"}, {8, 20});
  tb.PrintHeader();
  for (double d : {0.1, 0.5, 1.0, 5.0, 10.0}) {
    core::PredicateGenOptions options = defaults;
    options.anomaly_distance_multiplier = d;
    SweepPoint p = RunPoint(corpus, options, knowledge);
    tb.PrintRow({bench::Num(d, 1), bench::Pct(p.avg_confidence)});
  }

  std::printf("\n(c) Normalized difference threshold (theta)\n");
  bench::TablePrinter tc(
      {"theta", "Avg confidence (%)", "Avg # predicates"}, {8, 20, 18});
  tc.PrintHeader();
  for (double t : {0.01, 0.05, 0.1, 0.2, 0.4}) {
    core::PredicateGenOptions options = defaults;
    options.normalized_diff_threshold = t;
    SweepPoint p = RunPoint(corpus, options, knowledge);
    tc.PrintRow({bench::Num(t), bench::Pct(p.avg_confidence),
                 bench::Num(p.avg_predicates, 1)});
  }

  std::printf("\n(Paper: R beyond 1000 costs time without confidence gains; "
              "delta > 1 favors specific predicates and higher confidence; "
              "large theta prunes predicates, and theta = 0.4 over-prunes.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
