// dbsherlockd service benchmark: boots the daemon engine + TCP frontend on
// an ephemeral port and replays N simulated tenants concurrently through
// the real socket path (HELLO / APPEND with retry-on-backpressure / FLUSH /
// DIAGNOSES), each streaming one generated dataset with an injected
// anomaly. Reports ingest throughput, per-append wire latency (mean/p99),
// shed rate, diagnosis throughput, and per-tenant top-1 correctness, and
// optionally writes the whole report as JSON (BENCH_service.json).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "eval/service_replay.h"
#include "fleet/fleet_replay.h"
#include "fleet/router.h"
#include "service/server.h"

namespace {

using namespace dbsherlock;

/// One fleet scaling point: S in-process shards (epoll servers over real
/// Services), a consistent-hash router in front, and a many-tenant
/// APPENDSEQ replay through the router. Per-row drain work
/// (`delay_us` per appended row, one ingest worker per shard) makes the
/// shard the bottleneck, so rows/sec measures how well the router spreads
/// tenants — the number the acceptance bound (4 shards >= 3x 1 shard)
/// reads. The small queue bound keeps every point under RETRY_AFTER
/// overload so p99 append includes real backpressure waits.
struct FleetBenchConfig {
  size_t tenants = 1000;
  size_t rows_per_tenant = 10;
  size_t attributes = 4;
  size_t client_threads = 32;
  size_t queue_capacity = 8;
  int delay_us = 5000;
  int retry_after_ms = 20;
};

struct FleetPoint {
  size_t shards = 0;
  fleet::FleetReplayResult replay;
};

common::Result<fleet::FleetReplayResult> RunFleetPoint(
    const FleetBenchConfig& config, size_t num_shards) {
  std::vector<std::unique_ptr<service::DurableModelStore>> stores;
  std::vector<std::unique_ptr<service::Service>> services;
  std::vector<std::unique_ptr<service::Server>> servers;
  std::vector<std::string> addresses;
  for (size_t s = 0; s < num_shards; ++s) {
    auto store = service::DurableModelStore::Open({});  // volatile
    if (!store.ok()) return store.status();
    stores.push_back(std::move(*store));

    service::Service::Options options;
    options.tenants.max_tenants = config.tenants + 8;
    options.queue_capacity = config.queue_capacity;
    options.ingest_workers = 1;
    options.process_delay_us = config.delay_us;
    options.retry_after_ms = config.retry_after_ms;
    options.store = stores.back().get();
    services.push_back(std::make_unique<service::Service>(options));

    service::Server::Options server_options;
    server_options.port = 0;
    server_options.io_mode = service::IoMode::kEpoll;
    server_options.handler_threads = 2;
    server_options.max_connections = config.client_threads + 16;
    server_options.service = services.back().get();
    auto server = service::Server::Start(server_options);
    if (!server.ok()) return server.status();
    servers.push_back(std::move(*server));
    addresses.push_back(
        common::StrFormat("127.0.0.1:%d", servers.back()->port()));
  }

  fleet::Router::Options router_options;
  router_options.port = 0;
  router_options.shards = addresses;
  router_options.handler_threads = config.client_threads;
  router_options.max_connections = config.client_threads + 16;
  auto router = fleet::Router::Start(std::move(router_options));
  if (!router.ok()) return router.status();

  fleet::FleetReplayOptions replay_options;
  replay_options.port = (*router)->port();
  replay_options.tenants = config.tenants;
  replay_options.rows_per_tenant = config.rows_per_tenant;
  replay_options.attributes = config.attributes;
  replay_options.client_threads = config.client_threads;
  auto result = fleet::RunFleetReplay(replay_options);

  // Placement sanity: a skewed ring would fake poor scaling.
  for (const auto& stats : (*router)->shard_stats()) {
    std::fprintf(stderr, "  [shard %s] %llu request(s), %llu retrie(s)\n",
                 stats.address.c_str(),
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.retries));
  }

  (*router)->Stop();
  for (auto& server : servers) server->Stop();
  for (auto& service : services) service->Stop();
  return result;
}

common::JsonValue FleetPointJson(const FleetBenchConfig& config,
                                 const FleetPoint& point) {
  common::JsonValue::Object out;
  out["shards"] = static_cast<double>(point.shards);
  out["tenants"] = static_cast<double>(config.tenants);
  out["rows_per_tenant"] = static_cast<double>(config.rows_per_tenant);
  out["rows_acked"] = static_cast<double>(point.replay.rows_acked);
  out["rows_failed"] = static_cast<double>(point.replay.rows_failed);
  out["retries"] = static_cast<double>(point.replay.retries);
  out["wall_seconds"] = point.replay.wall_seconds;
  out["rows_per_sec"] = point.replay.rows_per_sec;
  out["p50_append_ms"] = point.replay.p50_append_ms;
  out["p99_append_ms"] = point.replay.p99_append_ms;
  out["max_append_ms"] = point.replay.max_append_ms;
  return common::JsonValue(std::move(out));
}

/// Runs the sweep, prints the scaling table, and returns the points
/// (empty on error, which is printed).
std::vector<FleetPoint> RunFleetSweep(const FleetBenchConfig& config,
                                      const std::vector<size_t>& shard_counts) {
  bench::TablePrinter table({"Shards", "Rows/sec", "Speedup", "p50 ms",
                             "p99 ms", "Retries", "Acked"},
                            {7, 12, 8, 9, 9, 9, 9});
  table.PrintHeader();
  std::vector<FleetPoint> points;
  double base = 0.0;
  for (size_t shards : shard_counts) {
    auto replay = RunFleetPoint(config, shards);
    if (!replay.ok()) {
      std::fprintf(stderr, "fleet point (%zu shards) failed: %s\n", shards,
                   replay.status().ToString().c_str());
      return {};
    }
    if (base == 0.0) base = replay->rows_per_sec;
    table.PrintRow({std::to_string(shards), bench::Num(replay->rows_per_sec, 0),
                    bench::Num(base > 0 ? replay->rows_per_sec / base : 0, 2),
                    bench::Num(replay->p50_append_ms, 2),
                    bench::Num(replay->p99_append_ms, 2),
                    std::to_string(replay->retries),
                    std::to_string(replay->rows_acked)});
    points.push_back(FleetPoint{shards, std::move(*replay)});
  }
  return points;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int64_t tenants = flags.Int("tenants", 8, "concurrent simulated tenants");
  int64_t seed = flags.Int("seed", 20260805, "dataset generation seed");
  int64_t queue_capacity =
      flags.Int("queue_capacity", 1024, "per-tenant ingest queue bound");
  int64_t ingest_workers = flags.Int("ingest_workers", 4, "drain threads");
  int64_t diagnosis_workers =
      flags.Int("diagnosis_workers", 2, "diagnosis threads");
  double normal_sec = flags.Double(
      "normal_sec", 300.0, "seconds of normal telemetry per tenant");
  double anomaly_sec =
      flags.Double("anomaly_sec", 40.0, "injected anomaly duration");
  std::string wal_dir = flags.String(
      "wal_dir", "", "model store directory (empty = volatile store)");
  std::string json_out = flags.String(
      "json_out", "", "write the report as JSON to this path");
  int64_t fleet_single = flags.Int(
      "shards", 0,
      "run ONLY the sharded-fleet replay with this many shards (router + "
      "epoll shards in-process); 0 = normal single-daemon replay");
  std::string fleet_shards = flags.String(
      "fleet_shards", "",
      "after the normal replay, run the fleet scaling sweep at these "
      "shard counts (e.g. 1,2,4) and embed it in the JSON report");
  int64_t fleet_tenants =
      flags.Int("fleet_tenants", 1000, "tenants in the fleet replay");
  int64_t fleet_rows = flags.Int("fleet_rows", 10,
                                 "APPENDSEQ rows per tenant (fleet replay)");
  int64_t fleet_clients =
      flags.Int("fleet_clients", 32, "fleet replay client connections");
  int64_t fleet_delay_us = flags.Int(
      "fleet_delay_us", 5000,
      "artificial per-row drain work on each shard (1 ingest worker), so "
      "rows/sec measures shard-count scaling");
  int64_t fleet_retry_after_ms = flags.Int(
      "fleet_retry_after_ms", 20,
      "shard backpressure hint; larger = fewer retry round-trips");
  int64_t fleet_queue = flags.Int(
      "fleet_queue", 8,
      "per-tenant queue bound in the fleet replay (small = overload, so "
      "p99 append includes RETRY_AFTER waits)");
  flags.Validate();

  FleetBenchConfig fleet_config;
  fleet_config.tenants = static_cast<size_t>(fleet_tenants);
  fleet_config.rows_per_tenant = static_cast<size_t>(fleet_rows);
  fleet_config.client_threads = static_cast<size_t>(fleet_clients);
  fleet_config.queue_capacity = static_cast<size_t>(fleet_queue);
  fleet_config.delay_us = static_cast<int>(fleet_delay_us);
  fleet_config.retry_after_ms = static_cast<int>(fleet_retry_after_ms);

  if (fleet_single > 0) {
    bench::PrintBanner(
        "Fleet replay", "dbsherlockd route + shards",
        "Many tenants streaming APPENDSEQ through the consistent-hash "
        "router; rows/sec scaling and append latency under overload.");
    std::vector<FleetPoint> points = RunFleetSweep(
        fleet_config, {static_cast<size_t>(fleet_single)});
    if (points.empty()) return 1;
    if (!json_out.empty()) {
      std::ofstream out(json_out);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
        return 1;
      }
      common::JsonValue::Object report;
      report["mode"] = std::string("fleet");
      common::JsonValue::Array array;
      for (const FleetPoint& p : points)
        array.push_back(FleetPointJson(fleet_config, p));
      report["fleet"] = common::JsonValue(std::move(array));
      report["build_info"] = bench::BuildInfoJson();
      out << common::JsonValue(std::move(report)).Dump(2) << "\n";
      std::printf("wrote %s\n", json_out.c_str());
    }
    return points.back().replay.rows_failed == 0 ? 0 : 1;
  }

  bench::PrintBanner(
      "Service replay", "dbsherlockd end-to-end",
      "N tenants streaming over the socket path; throughput, append "
      "latency, backpressure, and diagnosis correctness.");

  eval::ServiceReplayOptions options;
  options.num_tenants = static_cast<size_t>(tenants);
  options.gen.seed = static_cast<uint64_t>(seed);
  options.gen.normal_duration_sec = normal_sec;
  options.anomaly_duration_sec = anomaly_sec;
  options.service.queue_capacity = static_cast<size_t>(queue_capacity);
  options.service.ingest_workers = static_cast<size_t>(ingest_workers);
  options.service.diagnosis_workers = static_cast<size_t>(diagnosis_workers);

  service::DurableModelStore::Options store_options;
  store_options.dir = wal_dir;
  auto store = service::DurableModelStore::Open(store_options);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  auto result = eval::RunServiceReplay(options, store->get());
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  bench::TablePrinter table(
      {"Tenant", "Expected", "Top cause", "Top-1", "Overlap", "Rows",
       "Retries"},
      {10, 22, 22, 7, 9, 8, 9});
  table.PrintHeader();
  for (const eval::TenantReplayOutcome& t : result->tenants) {
    table.PrintRow({t.tenant, t.expected_cause, t.top_cause,
                    t.top1_correct ? "yes" : "NO",
                    t.region_overlaps ? "yes" : "NO",
                    std::to_string(t.rows_sent),
                    std::to_string(t.retries)});
  }
  std::printf(
      "\nrows/sec %.0f   append mean %.1f us   p99 %.1f us   shed rate "
      "%.4f\n",
      result->rows_per_sec, result->mean_append_us, result->p99_append_us,
      result->shed_rate);
  std::printf("diagnoses %zu (%.2f/sec)   models stored %zu   wall %.2f s\n",
              result->diagnoses_total, result->diagnoses_per_sec,
              result->models_stored, result->wall_sec);
  std::printf("all tenants correct: %s\n",
              result->AllCorrect() ? "yes" : "NO");

  std::vector<FleetPoint> fleet_points;
  bool fleet_ok = true;
  if (!fleet_shards.empty()) {
    std::printf("\nFleet scaling sweep (%lld tenants, %lld rows/tenant, "
                "%lld us/row drain):\n",
                static_cast<long long>(fleet_tenants),
                static_cast<long long>(fleet_rows),
                static_cast<long long>(fleet_delay_us));
    std::vector<size_t> counts;
    for (const std::string& field : common::Split(fleet_shards, ',')) {
      auto n = common::ParseInt64(field);
      if (!n.ok() || *n <= 0) {
        std::fprintf(stderr, "--fleet_shards: bad count '%s'\n",
                     field.c_str());
        return 2;
      }
      counts.push_back(static_cast<size_t>(*n));
    }
    fleet_points = RunFleetSweep(fleet_config, counts);
    fleet_ok = !fleet_points.empty();
    for (const FleetPoint& p : fleet_points) {
      if (p.replay.rows_failed != 0) fleet_ok = false;
    }
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 1;
    }
    common::JsonValue report = result->ToJson();
    if (!fleet_points.empty()) {
      common::JsonValue::Array array;
      for (const FleetPoint& p : fleet_points)
        array.push_back(FleetPointJson(fleet_config, p));
      report.as_object()["fleet"] = common::JsonValue(std::move(array));
    }
    report.as_object()["build_info"] = bench::BuildInfoJson();
    out << report.Dump(2) << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return result->AllCorrect() && fleet_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
