// dbsherlockd service benchmark: boots the daemon engine + TCP frontend on
// an ephemeral port and replays N simulated tenants concurrently through
// the real socket path (HELLO / APPEND with retry-on-backpressure / FLUSH /
// DIAGNOSES), each streaming one generated dataset with an injected
// anomaly. Reports ingest throughput, per-append wire latency (mean/p99),
// shed rate, diagnosis throughput, and per-tenant top-1 correctness, and
// optionally writes the whole report as JSON (BENCH_service.json).

#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "eval/service_replay.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int64_t tenants = flags.Int("tenants", 8, "concurrent simulated tenants");
  int64_t seed = flags.Int("seed", 20260805, "dataset generation seed");
  int64_t queue_capacity =
      flags.Int("queue_capacity", 1024, "per-tenant ingest queue bound");
  int64_t ingest_workers = flags.Int("ingest_workers", 4, "drain threads");
  int64_t diagnosis_workers =
      flags.Int("diagnosis_workers", 2, "diagnosis threads");
  double normal_sec = flags.Double(
      "normal_sec", 300.0, "seconds of normal telemetry per tenant");
  double anomaly_sec =
      flags.Double("anomaly_sec", 40.0, "injected anomaly duration");
  std::string wal_dir = flags.String(
      "wal_dir", "", "model store directory (empty = volatile store)");
  std::string json_out = flags.String(
      "json_out", "", "write the report as JSON to this path");
  flags.Validate();

  bench::PrintBanner(
      "Service replay", "dbsherlockd end-to-end",
      "N tenants streaming over the socket path; throughput, append "
      "latency, backpressure, and diagnosis correctness.");

  eval::ServiceReplayOptions options;
  options.num_tenants = static_cast<size_t>(tenants);
  options.gen.seed = static_cast<uint64_t>(seed);
  options.gen.normal_duration_sec = normal_sec;
  options.anomaly_duration_sec = anomaly_sec;
  options.service.queue_capacity = static_cast<size_t>(queue_capacity);
  options.service.ingest_workers = static_cast<size_t>(ingest_workers);
  options.service.diagnosis_workers = static_cast<size_t>(diagnosis_workers);

  service::DurableModelStore::Options store_options;
  store_options.dir = wal_dir;
  auto store = service::DurableModelStore::Open(store_options);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  auto result = eval::RunServiceReplay(options, store->get());
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  bench::TablePrinter table(
      {"Tenant", "Expected", "Top cause", "Top-1", "Overlap", "Rows",
       "Retries"},
      {10, 22, 22, 7, 9, 8, 9});
  table.PrintHeader();
  for (const eval::TenantReplayOutcome& t : result->tenants) {
    table.PrintRow({t.tenant, t.expected_cause, t.top_cause,
                    t.top1_correct ? "yes" : "NO",
                    t.region_overlaps ? "yes" : "NO",
                    std::to_string(t.rows_sent),
                    std::to_string(t.retries)});
  }
  std::printf(
      "\nrows/sec %.0f   append mean %.1f us   p99 %.1f us   shed rate "
      "%.4f\n",
      result->rows_per_sec, result->mean_append_us, result->p99_append_us,
      result->shed_rate);
  std::printf("diagnoses %zu (%.2f/sec)   models stored %zu   wall %.2f s\n",
              result->diagnoses_total, result->diagnoses_per_sec,
              result->models_stored, result->wall_sec);
  std::printf("all tenants correct: %s\n",
              result->AllCorrect() ? "yes" : "NO");

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 1;
    }
    common::JsonValue report = result->ToJson();
    report.as_object()["build_info"] = bench::BuildInfoJson();
    out << report.Dump(2) << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return result->AllCorrect() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
