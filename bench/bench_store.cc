// Embedded time-series store benchmark (run_benchmarks.sh --store):
// streams simulator telemetry through a TenantStore and reports append
// throughput (rows/s, including automatic seals), scan latency as the
// requested range grows, the on-disk compression ratio against the raw
// CSV encoding of the same rows, the retained-history scan curve (a
// fixed window scanned as history grows: zone-map pushdown keeps the
// cost flat while a full decode grows linearly — DESIGN.md §14), and a
// predicate-pushdown demo whose output is checked bit-identical against
// the prune-free full-decode scan. Optionally writes the report as JSON
// (BENCH_store.json); the exit status is nonzero when the compression
// ratio misses the <= 0.35x acceptance bound from DESIGN.md §11 or the
// pushdown parity check fails.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "simulator/dataset_gen.h"
#include "store/tenant_store.h"
#include "tsdata/dataset_io.h"

namespace {

using namespace dbsherlock;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int64_t rows = flags.Int("rows", 20000, "telemetry rows to stream");
  int64_t seal_rows = flags.Int("seal_rows", 512, "segment seal threshold");
  int64_t seed = flags.Int("seed", 20260805, "simulator seed");
  int64_t fsync = flags.Int("fsync", 0, "fsync on seal (0/1)");
  int64_t scan_iters = flags.Int("scan_iters", 20, "scans per range length");
  std::string dir = flags.String(
      "dir", "", "store directory (empty = fresh tmp dir, removed after)");
  std::string json_out = flags.String(
      "json_out", "", "write the report as JSON to this path");
  flags.Validate();

  bench::PrintBanner(
      "Store", "DESIGN.md §11",
      "Append throughput, scan latency vs range length, and compression "
      "ratio of the segment codec on simulator telemetry.");

  bool scratch = dir.empty();
  if (scratch) {
    dir = "/tmp/dbsherlock_bench_store_" + std::to_string(getpid());
    std::string cleanup = "rm -rf '" + dir + "'";
    (void)std::system(cleanup.c_str());
  }

  // One simulated second per row: the anomaly keeps the traces from being
  // trivially constant, so the ratio reflects realistic telemetry.
  simulator::DatasetGenOptions gen;
  gen.normal_duration_sec = static_cast<double>(rows);
  gen.seed = static_cast<uint64_t>(seed);
  auto generated = simulator::GenerateAnomalyDataset(
      gen, simulator::AnomalyKind::kCpuSaturation,
      /*anomaly_duration_sec=*/60.0);
  const tsdata::Dataset& data = generated.data;
  if (data.num_rows() < 100) {
    std::fprintf(stderr, "error: simulator produced %zu rows\n",
                 data.num_rows());
    return 1;
  }

  store::TenantStore::Options options;
  options.dir = dir;
  options.schema = data.schema();
  options.seal_rows = static_cast<size_t>(seal_rows);
  options.fsync_on_seal = fsync != 0;
  auto store = store::TenantStore::Open(options);
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.status().ToString().c_str());
    return 1;
  }

  // --- Append throughput (automatic seals included) -------------------
  std::vector<tsdata::Cell> cells(data.num_attributes());
  auto t0 = std::chrono::steady_clock::now();
  for (size_t r = 0; r < data.num_rows(); ++r) {
    for (size_t a = 0; a < cells.size(); ++a) {
      const tsdata::Column& column = data.column(a);
      if (data.schema().attribute(a).kind ==
          tsdata::AttributeKind::kNumeric) {
        cells[a] = column.numeric(r);
      } else {
        cells[a] = column.CategoryName(column.code(r));
      }
    }
    common::Status status =
        (*store)->Append(data.timestamp(r), cells);
    if (!status.ok()) {
      std::fprintf(stderr, "error: append row %zu: %s\n", r,
                   status.ToString().c_str());
      return 1;
    }
  }
  double append_sec = SecondsSince(t0);
  t0 = std::chrono::steady_clock::now();
  common::Status sealed = (*store)->Seal();
  if (!sealed.ok()) {
    std::fprintf(stderr, "error: %s\n", sealed.ToString().c_str());
    return 1;
  }
  double seal_sec = SecondsSince(t0);
  double append_rows_per_sec =
      static_cast<double>(data.num_rows()) / (append_sec + seal_sec);

  // --- Compression vs the raw CSV of the same rows --------------------
  uint64_t raw_bytes = tsdata::DatasetToCsv(data).size();
  uint64_t disk_bytes = (*store)->sealed_bytes();
  double ratio = (*store)->compression_ratio();

  std::printf("\nrows %zu   segments %zu   append %.0f rows/s\n",
              data.num_rows(), (*store)->num_segments(),
              append_rows_per_sec);
  std::printf("raw csv %llu B   on disk %llu B   compression %.3fx\n",
              static_cast<unsigned long long>(raw_bytes),
              static_cast<unsigned long long>(disk_bytes), ratio);

  // --- Scan latency vs range length -----------------------------------
  double first_ts = data.timestamp(0);
  double last_ts = data.timestamp(data.num_rows() - 1);
  bench::TablePrinter table({"Range rows", "Mean ms", "Scan rows/s"},
                            {12, 10, 14});
  std::printf("\n");
  table.PrintHeader();
  common::JsonValue::Array scan_rows_json;
  for (size_t range : {60u, 600u, 6000u}) {
    if (range > data.num_rows()) break;
    // Start mid-history so every scan stitches across segment boundaries.
    double scan_t0 = first_ts + (last_ts - first_ts) * 0.25;
    double scan_t1 = scan_t0 + static_cast<double>(range);
    double total_sec = 0.0;
    size_t rows_out = 0;
    for (int64_t i = 0; i < scan_iters; ++i) {
      auto start = std::chrono::steady_clock::now();
      auto slice = (*store)->Scan(scan_t0, scan_t1);
      total_sec += SecondsSince(start);
      if (!slice.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     slice.status().ToString().c_str());
        return 1;
      }
      rows_out = slice->num_rows();
    }
    double mean_ms = 1000.0 * total_sec / static_cast<double>(scan_iters);
    double scan_rows_per_sec =
        static_cast<double>(rows_out) * static_cast<double>(scan_iters) /
        total_sec;
    table.PrintRow({std::to_string(rows_out), bench::Num(mean_ms, 3),
                    bench::Num(scan_rows_per_sec, 0)});
    common::JsonValue::Object entry;
    entry["range_rows"] = static_cast<double>(rows_out);
    entry["mean_ms"] = mean_ms;
    entry["rows_per_sec"] = scan_rows_per_sec;
    scan_rows_json.push_back(common::JsonValue(std::move(entry)));
  }

  // --- Retained-history scan curve (zone-map pushdown) ----------------
  // Rebuild the history incrementally in a second scratch store and scan
  // the SAME fixed early window after each growth step. With pushdown the
  // planner skips every segment outside the window (time zones), so the
  // decoded-segment count — and the latency — stays flat as retained
  // bytes grow; the prune-free full decode grows with the history.
  common::JsonValue::Array curve_json;
  {
    std::string curve_dir = dir + "_curve";
    std::string cleanup = "rm -rf '" + curve_dir + "'";
    (void)std::system(cleanup.c_str());
    store::TenantStore::Options curve_options = options;
    curve_options.dir = curve_dir;
    auto curve_store = store::TenantStore::Open(curve_options);
    if (!curve_store.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   curve_store.status().ToString().c_str());
      return 1;
    }
    double window_t0 = first_ts;
    double window_t1 = first_ts + 600.0;
    bench::TablePrinter curve_table(
        {"Retained rows", "Retained B", "Push ms", "Full ms", "Skip",
         "Decode"},
        {14, 12, 10, 10, 6, 7});
    std::printf("\nretained-history scan of the fixed window [%.0f, %.0f)\n",
                window_t0, window_t1);
    curve_table.PrintHeader();
    const double fractions[] = {0.125, 0.25, 0.5, 0.75, 1.0};
    size_t appended = 0;
    for (double fraction : fractions) {
      size_t target = static_cast<size_t>(
          fraction * static_cast<double>(data.num_rows()));
      for (; appended < target; ++appended) {
        for (size_t a = 0; a < cells.size(); ++a) {
          const tsdata::Column& column = data.column(a);
          if (data.schema().attribute(a).kind ==
              tsdata::AttributeKind::kNumeric) {
            cells[a] = column.numeric(appended);
          } else {
            cells[a] = column.CategoryName(column.code(appended));
          }
        }
        common::Status status =
            (*curve_store)->Append(data.timestamp(appended), cells);
        if (!status.ok()) {
          std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
          return 1;
        }
      }
      common::Status step_sealed = (*curve_store)->Seal();
      if (!step_sealed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     step_sealed.ToString().c_str());
        return 1;
      }

      store::ScanOptions push;
      push.t0 = window_t0;
      push.t1 = window_t1;
      store::ScanStats push_stats;
      double push_sec = 0.0;
      for (int64_t i = 0; i < scan_iters; ++i) {
        auto start = std::chrono::steady_clock::now();
        auto slice = (*curve_store)->ScanWithOptions(push, &push_stats);
        push_sec += SecondsSince(start);
        if (!slice.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       slice.status().ToString().c_str());
          return 1;
        }
      }
      store::ScanOptions full = push;
      full.prune = false;
      store::ScanStats full_stats;
      double full_sec = 0.0;
      for (int64_t i = 0; i < scan_iters; ++i) {
        auto start = std::chrono::steady_clock::now();
        auto slice = (*curve_store)->ScanWithOptions(full, &full_stats);
        full_sec += SecondsSince(start);
        if (!slice.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       slice.status().ToString().c_str());
          return 1;
        }
      }
      double push_ms = 1000.0 * push_sec / static_cast<double>(scan_iters);
      double full_ms = 1000.0 * full_sec / static_cast<double>(scan_iters);
      uint64_t skipped = push_stats.segments_skipped_time +
                         push_stats.segments_skipped_zone;
      uint64_t retained = (*curve_store)->sealed_bytes();
      curve_table.PrintRow(
          {std::to_string(appended), std::to_string(retained),
           bench::Num(push_ms, 3), bench::Num(full_ms, 3),
           std::to_string(skipped),
           std::to_string(push_stats.segments_decoded)});
      common::JsonValue::Object point;
      point["retained_rows"] = static_cast<double>(appended);
      point["retained_bytes"] = static_cast<double>(retained);
      point["pushdown_mean_ms"] = push_ms;
      point["full_decode_mean_ms"] = full_ms;
      point["segments"] = static_cast<double>(push_stats.segments_total);
      point["segments_skipped"] = static_cast<double>(skipped);
      point["segments_decoded"] =
          static_cast<double>(push_stats.segments_decoded);
      curve_json.push_back(common::JsonValue(std::move(point)));
    }
    (void)std::system(cleanup.c_str());
  }

  // --- Predicate pushdown vs full decode (parity checked) -------------
  // A WHERE bound selecting only the anomaly's saturated-CPU rows: most
  // segments' zone maps exclude the bound, so the planner skips them
  // without I/O. The pruned result must be bit-identical to the
  // prune-free full decode.
  bool parity_ok = true;
  common::JsonValue::Object pushdown_json;
  {
    std::string bound_attr;
    for (size_t a = 0; a < data.num_attributes(); ++a) {
      if (data.schema().attribute(a).kind ==
          tsdata::AttributeKind::kNumeric) {
        bound_attr = data.schema().attribute(a).name;
        if (bound_attr == "os_cpu_usage") break;
      }
    }
    if (bound_attr.empty()) {
      std::fprintf(stderr, "error: no numeric attribute for pushdown\n");
      return 1;
    }
    const tsdata::Column& column =
        data.column(*data.schema().IndexOf(bound_attr));
    double lo = column.numeric(0), hi = column.numeric(0);
    for (size_t r = 1; r < data.num_rows(); ++r) {
      lo = std::min(lo, column.numeric(r));
      hi = std::max(hi, column.numeric(r));
    }
    double bound_lo = lo + 0.95 * (hi - lo);

    store::ScanOptions push;
    push.bounds.push_back({bound_attr, bound_lo,
                           std::numeric_limits<double>::infinity()});
    store::ScanStats push_stats;
    auto start = std::chrono::steady_clock::now();
    auto pruned = (*store)->ScanWithOptions(push, &push_stats);
    double push_ms = 1000.0 * SecondsSince(start);
    store::ScanOptions full = push;
    full.prune = false;
    store::ScanStats full_stats;
    start = std::chrono::steady_clock::now();
    auto everything = (*store)->ScanWithOptions(full, &full_stats);
    double full_ms = 1000.0 * SecondsSince(start);
    if (!pruned.ok() || !everything.ok()) {
      std::fprintf(stderr, "error: pushdown scan failed\n");
      return 1;
    }
    parity_ok = tsdata::DatasetToCsv(*pruned) ==
                tsdata::DatasetToCsv(*everything);
    std::printf(
        "\npushdown %s >= %.3f: %llu/%llu segment(s) zone-skipped, "
        "%zu row(s), %.3f ms vs %.3f ms full decode, parity %s\n",
        bound_attr.c_str(), bound_lo,
        static_cast<unsigned long long>(push_stats.segments_skipped_zone),
        static_cast<unsigned long long>(push_stats.segments_total),
        pruned->num_rows(), push_ms, full_ms, parity_ok ? "ok" : "FAIL");
    pushdown_json["attribute"] = bound_attr;
    pushdown_json["bound_lo"] = bound_lo;
    pushdown_json["segments_total"] =
        static_cast<double>(push_stats.segments_total);
    pushdown_json["segments_skipped_zone"] =
        static_cast<double>(push_stats.segments_skipped_zone);
    pushdown_json["segments_decoded"] =
        static_cast<double>(push_stats.segments_decoded);
    pushdown_json["rows_out"] = static_cast<double>(pruned->num_rows());
    pushdown_json["pushdown_ms"] = push_ms;
    pushdown_json["full_decode_ms"] = full_ms;
    pushdown_json["parity_ok"] = parity_ok;
  }

  constexpr double kRatioBound = 0.35;
  bool ratio_ok = ratio > 0.0 && ratio <= kRatioBound;
  std::printf("\ncompression bound <= %.2fx: %s\n", kRatioBound,
              ratio_ok ? "pass" : "FAIL");

  if (!json_out.empty()) {
    common::JsonValue::Object report;
    report["rows"] = static_cast<double>(data.num_rows());
    report["seal_rows"] = static_cast<double>(seal_rows);
    report["segments"] = static_cast<double>((*store)->num_segments());
    report["append_rows_per_sec"] = append_rows_per_sec;
    report["raw_csv_bytes"] = static_cast<double>(raw_bytes);
    report["disk_bytes"] = static_cast<double>(disk_bytes);
    report["compression_ratio"] = ratio;
    report["compression_bound"] = kRatioBound;
    report["scans"] = common::JsonValue(std::move(scan_rows_json));
    report["retained_scan_curve"] = common::JsonValue(std::move(curve_json));
    report["pushdown"] = common::JsonValue(std::move(pushdown_json));
    report["build_info"] = bench::BuildInfoJson();
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 1;
    }
    out << common::JsonValue(std::move(report)).Dump(2) << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }

  if (scratch) {
    std::string cleanup = "rm -rf '" + dir + "'";
    (void)std::system(cleanup.c_str());
  }
  return (ratio_ok && parity_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
