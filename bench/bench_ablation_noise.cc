// Ablation: robustness of the two explanation approaches to telemetry
// noise. DESIGN.md calls out the simulator's realism knobs (multiplicative
// measurement noise and transient micro-hiccups) as ablation targets: this
// bench sweeps them and reports the average predicate F1 of DBSherlock's
// merged models vs the PerfXplain baseline, plus DBSherlock's top-1 cause
// accuracy. DBSherlock's partition filtering is designed exactly for this
// noise (Section 4.3), so its accuracy should decay far more slowly.

#include <cstdio>
#include <vector>

#include "baselines/perfxplain.h"
#include "bench_util.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

struct SweepResult {
  double dbs_f1 = 0.0;
  double px_f1 = 0.0;
  double top1 = 0.0;
};

SweepResult RunConfig(double metric_noise, double hiccup_probability,
                      uint64_t seed) {
  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  gen.server.metric_noise = metric_noise;
  gen.server.hiccup_probability = hiccup_probability;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();
  const size_t test_idx = per_class - 1;  // train on the rest

  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();

  core::ModelRepository repo;
  double dbs_f1 = 0.0, px_f1 = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    core::CausalModel merged;
    bool first = true;
    std::vector<baselines::PerfXplain::LabeledDataset> train_sets;
    for (size_t i = 0; i < per_class; ++i) {
      if (i == test_idx) continue;
      core::CausalModel next = eval::BuildCausalModel(
          corpus.by_class[c][i], corpus.ClassName(c), options, &knowledge);
      if (first) {
        merged = std::move(next);
        first = false;
      } else {
        auto m = core::MergeCausalModels(merged, next);
        if (m.ok() && !m->predicates.empty()) merged = std::move(*m);
      }
      train_sets.push_back(
          {&corpus.by_class[c][i].data, &corpus.by_class[c][i].regions});
    }
    repo.AddUnmerged(merged);

    const simulator::GeneratedDataset& test = corpus.by_class[c][test_idx];
    dbs_f1 += eval::EvaluatePredicates(merged.predicates, test.data,
                                       test.regions)
                  .f1;
    baselines::PerfXplain px(baselines::PerfXplain::Options{});
    if (px.TrainOnMany(train_sets).ok()) {
      px_f1 += eval::EvaluateFlags(px.FlagRows(test.data), test.data,
                                   test.regions)
                   .f1;
    }
  }

  size_t top1 = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    eval::RankingOutcome outcome = eval::RankAgainst(
        repo, corpus.by_class[c][test_idx], corpus.ClassName(c), options);
    if (outcome.CorrectInTopK(1)) ++top1;
  }

  SweepResult out;
  out.dbs_f1 = 100.0 * dbs_f1 / static_cast<double>(num_classes);
  out.px_f1 = 100.0 * px_f1 / static_cast<double>(num_classes);
  out.top1 = 100.0 * static_cast<double>(top1) /
             static_cast<double>(num_classes);
  return out;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42, "corpus seed"));
  flags.Validate();

  bench::PrintBanner(
      "Noise ablation", "repo-specific; motivated by Sections 3-4",
      "Predicate F1 (DBSherlock vs PerfXplain) and DBSherlock top-1 cause "
      "accuracy as telemetry noise and hiccup rate grow.");

  bench::TablePrinter table({"Metric noise", "Hiccup rate", "DBS F1 (%)",
                             "PX F1 (%)", "DBS top-1 (%)"},
                            {14, 13, 12, 12, 15});
  table.PrintHeader();
  struct Config {
    double noise;
    double hiccups;
  };
  const std::vector<Config> configs = {
      {0.02, 0.00}, {0.05, 0.06}, {0.10, 0.12}, {0.20, 0.25}, {0.30, 0.40},
  };
  for (const Config& config : configs) {
    SweepResult r = RunConfig(config.noise, config.hiccups, seed);
    table.PrintRow({bench::Num(config.noise), bench::Num(config.hiccups),
                    bench::Pct(r.dbs_f1), bench::Pct(r.px_f1),
                    bench::Pct(r.top1)});
  }
  std::printf("\n(Expected shape: both degrade with noise; DBSherlock's "
              "partition filtering keeps its F1 and ranking accuracy "
              "falling much more slowly than PerfXplain's pairwise "
              "comparisons.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
