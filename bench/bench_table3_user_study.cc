// Table 3 (Section 8.8): the user study, reproduced with simulated
// participants.
//
// Each participant answers 10 multiple-choice questions; a question shows
// one dataset's anomaly (with DBSherlock's predicates as evidence) and four
// candidate causes (the correct one plus three random distractors). The
// simulated participant scores the candidates by how well each cause's
// causal model fits the evidence and answers with tier-dependent noise;
// the baseline row answers uniformly at random (no predicates shown).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"
#include "eval/simulated_user.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  int64_t participants =
      flags.Int("participants", 20, "participants per tier");
  int64_t questions = flags.Int("questions", 10, "questions per participant");
  flags.Validate();

  bench::PrintBanner(
      "Table 3", "DBSherlock SIGMOD'16, Section 8.8",
      "Simulated user study: average correct answers out of 10 "
      "multiple-choice diagnosis questions, by competency tier.");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  const size_t num_classes = corpus.num_classes();

  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();
  core::ModelRepository repo;
  for (size_t c = 0; c < num_classes; ++c) {
    for (const auto& ds : corpus.by_class[c]) {
      repo.Add(eval::BuildCausalModel(ds, corpus.ClassName(c), options,
                                      &knowledge));
    }
  }

  common::Pcg32 rng(seed, 0x7ab1e3);
  eval::SimulatedUserOptions user_options;

  // Build the question bank: one dataset per class (held out by seed), 4
  // choices each.
  auto make_question = [&](common::Pcg32* q_rng) {
    size_t c = q_rng->NextBounded(static_cast<uint32_t>(num_classes));
    size_t i = q_rng->NextBounded(
        static_cast<uint32_t>(corpus.by_class[c].size()));
    eval::UserStudyQuestion q;
    q.dataset = &corpus.by_class[c][i];
    q.correct = corpus.ClassName(c);
    q.choices.push_back(q.correct);
    while (q.choices.size() < 4) {
      size_t d = q_rng->NextBounded(static_cast<uint32_t>(num_classes));
      std::string name = corpus.ClassName(d);
      if (std::find(q.choices.begin(), q.choices.end(), name) ==
          q.choices.end()) {
        q.choices.push_back(name);
      }
    }
    q_rng->Shuffle(&q.choices);
    return q;
  };

  bench::TablePrinter table(
      {"Background", "# participants", "Avg correct (of 10)"},
      {34, 16, 20});
  table.PrintHeader();

  // Baseline: random guessing over 4 choices.
  table.PrintRow({"Baseline (No Predicates)", "N/A",
                  bench::Num(static_cast<double>(questions) / 4.0, 1)});

  const std::vector<std::pair<eval::UserTier, int64_t>> tiers = {
      {eval::UserTier::kPreliminaryKnowledge, participants},
      {eval::UserTier::kUsageExperience, (participants * 3) / 4},
      {eval::UserTier::kResearchOrDba, (participants * 2) / 3},
  };
  for (const auto& [tier, count] : tiers) {
    double total_correct = 0.0;
    for (int64_t p = 0; p < count; ++p) {
      for (int64_t qn = 0; qn < questions; ++qn) {
        eval::UserStudyQuestion q = make_question(&rng);
        if (eval::AnswerQuestion(q, repo, options, tier, user_options,
                                 &rng)) {
          total_correct += 1.0;
        }
      }
    }
    table.PrintRow({eval::UserTierName(tier), std::to_string(count),
                    bench::Num(total_correct / static_cast<double>(count),
                               1)});
  }
  std::printf("\n(Paper: baseline 2.5, preliminary 7.5, usage 7.8, "
              "research/DBA 7.8 out of 10.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
