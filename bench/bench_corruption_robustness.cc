// Hostile-telemetry robustness: accuracy vs metric-stream corruption.
//
// For every anomaly class a test dataset is corrupted by the fault
// injector at increasing corruption rates (dropped / duplicated /
// reordered rows, NaN/Inf/spike cells, stuck and disappearing attributes,
// clock skew), then diagnosed three times: raw (graceful degradation
// only), after the invariant-restoring data-quality repair pipeline, and
// after repair with opt-in spike masking (the CLI's --repair). Reports
// mean predicate precision/recall/F1 and causal-model top-1 accuracy per
// rate and arm, and optionally writes the full curve as JSON
// (BENCH_robustness.json).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eval/robustness.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "dataset generation seed"));
  uint64_t fault_seed = static_cast<uint64_t>(
      flags.Int("fault_seed", 1234, "fault injector seed"));
  std::string rates_csv = flags.String(
      "rates", "0,0.02,0.05,0.1", "comma-separated corruption rates");
  std::string json_out = flags.String(
      "json_out", "", "write the full sweep as JSON to this path");
  flags.Validate();

  bench::PrintBanner(
      "Robustness sweep", "hostile-telemetry hardening",
      "Diagnosis accuracy vs corruption rate, raw vs repaired input, over "
      "all anomaly classes.");

  eval::RobustnessOptions options;
  options.gen.seed = seed;
  options.faults.seed = fault_seed;
  options.predicate_options.normalized_diff_threshold = 0.05;
  options.corruption_rates.clear();
  size_t pos = 0;
  while (pos < rates_csv.size()) {
    size_t comma = rates_csv.find(',', pos);
    if (comma == std::string::npos) comma = rates_csv.size();
    options.corruption_rates.push_back(
        std::stod(rates_csv.substr(pos, comma - pos)));
    pos = comma + 1;
  }

  eval::RobustnessResult result = eval::RunRobustnessSweep(options);

  bench::TablePrinter table(
      {"Rate", "Arm", "Precision", "Recall", "F1", "Top-1 (%)", "Ranked (%)"},
      {8, 10, 11, 11, 11, 11, 11});
  table.PrintHeader();
  for (double rate : options.corruption_rates) {
    for (const char* arm : {"raw", "repaired", "despiked"}) {
      std::vector<const eval::RobustnessCell*> cells =
          result.AtRate(rate, arm);
      if (cells.empty()) continue;
      double precision = 0, recall = 0, f1 = 0;
      size_t top1 = 0, nonempty = 0;
      for (const eval::RobustnessCell* cell : cells) {
        precision += cell->accuracy.precision;
        recall += cell->accuracy.recall;
        f1 += cell->accuracy.f1;
        if (cell->correct_rank == 1) ++top1;
        if (cell->ranked_nonempty) ++nonempty;
      }
      double n = static_cast<double>(cells.size());
      table.PrintRow(
          {bench::Pct(100.0 * rate), arm, bench::Num(precision / n),
           bench::Num(recall / n), bench::Num(f1 / n),
           bench::Pct(100.0 * static_cast<double>(top1) / n),
           bench::Pct(100.0 * static_cast<double>(nonempty) / n)});
    }
  }
  std::printf(
      "\n(Rate 0 rows are the clean baseline: the raw and repaired arms "
      "must match it exactly; the despiked arm may deviate slightly — "
      "spike masking is lossy on clean data, which is why it is opt-in. "
      "Every arm must keep Ranked at 100%%: corruption may cost accuracy "
      "but never the ability to produce a ranked diagnosis.)\n");

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 1;
    }
    common::JsonValue report = result.ToJson();
    report.as_object()["build_info"] = bench::BuildInfoJson();
    out << report.Dump(2) << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
