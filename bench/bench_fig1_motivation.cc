// Figure 1 (Section 1): the paper's motivating observation — a workload
// spike, a burst of poorly written queries, and a network hiccup all
// produce nearly the same average-latency plot, yet need entirely
// different remedies. This bench quantifies it: pairwise shape similarity
// of the latency series across the three causes (after per-series
// normalization), followed by the *distinct* predicates DBSherlock derives
// for each — the paper's introduction in one table.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/explainer.h"
#include "simulator/dataset_gen.h"

namespace {

using namespace dbsherlock;

/// Min-max-normalized, median-smoothed latency series of a run (the
/// smoothing suppresses per-second hiccups so the comparison is between
/// the *shapes* a DBA sees on the dashboard).
std::vector<double> NormalizedLatency(const simulator::GeneratedDataset& run) {
  auto col = run.data.ColumnByName("avg_latency_ms");
  std::vector<double> smoothed =
      common::SlidingMedian((*col)->numeric_values(), 9);
  return common::MinMaxNormalize(smoothed);
}

/// Pearson correlation of two equal-length series.
double Correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  double ma = common::Mean(a), mb = common::Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  double denom = std::sqrt(va * vb);
  return denom > 0.0 ? cov / denom : 0.0;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42, "RNG seed"));
  flags.Validate();

  bench::PrintBanner(
      "Figure 1", "DBSherlock SIGMOD'16, Section 1",
      "Three different causes produce nearly the same latency plot; "
      "DBSherlock's predicates still tell them apart.");

  const std::vector<simulator::AnomalyKind> kinds = {
      simulator::AnomalyKind::kWorkloadSpike,
      simulator::AnomalyKind::kPoorlyWrittenQuery,
      simulator::AnomalyKind::kNetworkCongestion,
  };
  // The same anomaly window and background stream for all three, so the
  // only difference is the cause itself.
  std::vector<simulator::GeneratedDataset> runs;
  for (simulator::AnomalyKind kind : kinds) {
    simulator::DatasetGenOptions options;
    options.seed = seed;
    runs.push_back(simulator::GenerateAnomalyDataset(options, kind, 60.0));
  }

  std::printf("\nPairwise correlation of the normalized avg-latency "
              "series:\n");
  bench::TablePrinter corr({"Pair", "Correlation"}, {48, 12});
  corr.PrintHeader();
  for (size_t i = 0; i < runs.size(); ++i) {
    for (size_t j = i + 1; j < runs.size(); ++j) {
      double r = Correlation(NormalizedLatency(runs[i]),
                             NormalizedLatency(runs[j]));
      corr.PrintRow({runs[i].label + " vs " + runs[j].label,
                     bench::Num(r)});
    }
  }
  std::printf("(High correlations: the plots alone cannot tell the causes "
              "apart — the DBA's Figure 1 predicament.)\n");

  std::printf("\nTop DBSherlock predicates per cause (the signals the "
              "paper's introduction names):\n");
  for (const auto& run : runs) {
    core::Explainer sherlock;
    core::Explanation ex = sherlock.Diagnose(run.data, run.regions);
    std::printf("\n%s:\n", run.label.c_str());
    size_t shown = 0;
    for (const auto& diag : ex.predicates) {
      if (diag.predicate.attribute == "avg_latency_ms" ||
          diag.predicate.attribute == "p99_latency_ms") {
        continue;  // the symptom itself, not a distinguishing signal
      }
      if (++shown > 4) break;
      std::printf("  %-50s (power %.2f)\n",
                  diag.predicate.ToString().c_str(),
                  diag.separation_power);
    }
  }
  std::printf("\n(Paper: spike -> lock waits + running threads; poor "
              "queries -> next-row reads + DBMS CPU; network -> fewer "
              "packets than usual.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
