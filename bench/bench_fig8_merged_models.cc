// Figure 8 (Section 8.5): effectiveness of merged causal models.
//
// (a) Margin of confidence, single (1 training dataset) vs merged
//     (5 training datasets) models, per anomaly class.
// (b) Percentage of correct explanations when the top-1 / top-2 causes are
//     shown, per class, using merged models.
// (c) Accuracy vs the number of datasets merged into each model (1..5).
//
// Protocol follows the paper: ~50% of each class's datasets (5 of 11) are
// randomly assigned to training, models are merged per class, confidence
// is computed on the remaining 6 datasets; repeated `rounds` times
// (paper: 50 rounds => 300 explanations per class). Merged models use
// theta = 0.05 (more initial predicates maximize the effect of merging);
// single models use theta = 0.2.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  int64_t rounds = flags.Int("rounds", 50, "random train/test rounds");
  double theta_merged =
      flags.Double("theta_merged", 0.05, "theta for merged models");
  double theta_single =
      flags.Double("theta_single", 0.2, "theta for single models");
  int64_t threads =
      flags.Int("threads", 0, "diagnosis parallelism (0=auto, 1=serial)");
  flags.Validate();

  bench::PrintBanner(
      "Figure 8", "DBSherlock SIGMOD'16, Section 8.5",
      "Merged causal models: margin vs single models (a), top-k accuracy "
      "(b), and accuracy vs number of merged datasets (c).");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();
  const size_t train_count = 5;

  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();
  core::PredicateGenOptions merged_options;
  merged_options.normalized_diff_threshold = theta_merged;
  merged_options.parallelism = static_cast<size_t>(threads);
  core::PredicateGenOptions single_options;
  single_options.normalized_diff_threshold = theta_single;
  single_options.parallelism = static_cast<size_t>(threads);

  common::Pcg32 rng(seed, 0xf18);

  // --- Accumulators -------------------------------------------------------
  std::vector<double> single_margin(num_classes, 0.0);
  std::vector<double> merged_margin(num_classes, 0.0);
  std::vector<size_t> merged_top1(num_classes, 0);
  std::vector<size_t> merged_top2(num_classes, 0);
  std::vector<size_t> tested(num_classes, 0);
  // (c): accuracy by number of merged datasets (1..train_count).
  std::vector<size_t> top1_by_k(train_count, 0);
  std::vector<size_t> top2_by_k(train_count, 0);
  std::vector<size_t> total_by_k(train_count, 0);

  for (int64_t round = 0; round < rounds; ++round) {
    std::vector<std::vector<size_t>> train =
        eval::RandomTrainSplit(num_classes, per_class, train_count, &rng);

    // Per-class merged models at every training-set size 1..train_count,
    // plus single models (first training dataset, theta = 0.2).
    std::vector<core::ModelRepository> merged_at_k(train_count);
    core::ModelRepository single_repo;
    for (size_t c = 0; c < num_classes; ++c) {
      single_repo.AddUnmerged(
          eval::BuildCausalModel(corpus.by_class[c][train[c][0]],
                                 corpus.ClassName(c), single_options,
                                 &knowledge));
      core::CausalModel accumulated;
      for (size_t k = 0; k < train_count; ++k) {
        core::CausalModel next = eval::BuildCausalModel(
            corpus.by_class[c][train[c][k]], corpus.ClassName(c),
            merged_options, &knowledge);
        if (k == 0) {
          accumulated = std::move(next);
        } else {
          auto merged = core::MergeCausalModels(accumulated, next);
          if (merged.ok() && !merged->predicates.empty()) {
            accumulated = std::move(*merged);
          }
        }
        merged_at_k[k].AddUnmerged(accumulated);
      }
    }

    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t idx : eval::TestIndices(train[c], per_class)) {
        const simulator::GeneratedDataset& test = corpus.by_class[c][idx];
        eval::RankingOutcome single = eval::RankAgainst(
            single_repo, test, corpus.ClassName(c), single_options);
        single_margin[c] += single.margin;

        eval::RankingOutcome merged =
            eval::RankAgainst(merged_at_k[train_count - 1], test,
                              corpus.ClassName(c), merged_options);
        merged_margin[c] += merged.margin;
        if (merged.CorrectInTopK(1)) ++merged_top1[c];
        if (merged.CorrectInTopK(2)) ++merged_top2[c];
        ++tested[c];

        for (size_t k = 0; k < train_count; ++k) {
          eval::RankingOutcome at_k = eval::RankAgainst(
              merged_at_k[k], test, corpus.ClassName(c), merged_options);
          if (at_k.CorrectInTopK(1)) ++top1_by_k[k];
          if (at_k.CorrectInTopK(2)) ++top2_by_k[k];
          ++total_by_k[k];
        }
      }
    }
  }

  // --- (a) ---------------------------------------------------------------
  std::printf("\n(a) Margin of confidence: single vs merged models\n");
  bench::TablePrinter ta({"Test case", "Single (1 dataset)",
                          "Merged (5 datasets)"},
                         {24, 20, 20});
  ta.PrintHeader();
  for (size_t c = 0; c < num_classes; ++c) {
    double n = static_cast<double>(tested[c]);
    ta.PrintRow({corpus.ClassName(c), bench::Pct(single_margin[c] / n),
                 bench::Pct(merged_margin[c] / n)});
  }

  // --- (b) ---------------------------------------------------------------
  std::printf("\n(b) Correct explanations with merged models (%% of %zu "
              "explanations per class)\n",
              tested[0]);
  bench::TablePrinter tb({"Test case", "Top-1 shown (%)", "Top-2 shown (%)"},
                         {24, 17, 17});
  tb.PrintHeader();
  double top1_total = 0.0, top2_total = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    double n = static_cast<double>(tested[c]);
    double t1 = 100.0 * static_cast<double>(merged_top1[c]) / n;
    double t2 = 100.0 * static_cast<double>(merged_top2[c]) / n;
    top1_total += t1;
    top2_total += t2;
    tb.PrintRow({corpus.ClassName(c), bench::Pct(t1), bench::Pct(t2)});
  }
  std::printf("Average: top-1 %.1f%%, top-2 %.1f%%  (paper: 98.0%%, 99.7%%)\n",
              top1_total / static_cast<double>(num_classes),
              top2_total / static_cast<double>(num_classes));

  // --- (c) ---------------------------------------------------------------
  std::printf("\n(c) Accuracy vs number of datasets merged per model\n");
  bench::TablePrinter tc({"Datasets", "Top-1 shown (%)", "Top-2 shown (%)"},
                         {12, 17, 17});
  tc.PrintHeader();
  for (size_t k = 0; k < train_count; ++k) {
    double n = static_cast<double>(total_by_k[k]);
    tc.PrintRow({std::to_string(k + 1),
                 bench::Pct(100.0 * static_cast<double>(top1_by_k[k]) / n),
                 bench::Pct(100.0 * static_cast<double>(top2_by_k[k]) / n)});
  }
  std::printf("(Paper: reaches ~95%% top-1 with two datasets, 99%% top-2.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
