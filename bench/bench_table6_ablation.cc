// Table 6 (Appendix D): contribution of the individual algorithm steps.
//
// The single-model protocol of Figure 7 is repeated with variants of the
// predicate-generation algorithm that skip Partition Filtering and/or
// Filling the Gaps, reporting the overall average margin of confidence and
// the top-1 accuracy of each variant.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

struct VariantResult {
  double avg_margin = 0.0;
  double top1_pct = 0.0;
};

VariantResult RunVariant(const eval::Corpus& corpus,
                         const core::PredicateGenOptions& options,
                         const core::DomainKnowledge& knowledge) {
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();
  double margin_sum = 0.0;
  size_t top1 = 0, total = 0;
  for (size_t round = 0; round < per_class; ++round) {
    core::ModelRepository repo;
    for (size_t c = 0; c < num_classes; ++c) {
      repo.AddUnmerged(eval::BuildCausalModel(corpus.by_class[c][round],
                                              corpus.ClassName(c), options,
                                              &knowledge));
    }
    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t i = 0; i < per_class; ++i) {
        if (i == round) continue;
        eval::RankingOutcome outcome = eval::RankAgainst(
            repo, corpus.by_class[c][i], corpus.ClassName(c), options);
        margin_sum += outcome.margin;
        if (outcome.CorrectInTopK(1)) ++top1;
        ++total;
      }
    }
  }
  VariantResult out;
  out.avg_margin = margin_sum / static_cast<double>(total);
  out.top1_pct =
      100.0 * static_cast<double>(top1) / static_cast<double>(total);
  return out;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  flags.Validate();

  bench::PrintBanner(
      "Table 6", "DBSherlock SIGMOD'16, Appendix D",
      "Ablation of the predicate-generation steps: skipping Partition "
      "Filtering and/or Filling the Gaps.");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();

  struct Variant {
    std::string label;
    bool filtering;
    bool gap_filling;
  };
  const std::vector<Variant> variants = {
      {"Original (all 5 steps)", true, true},
      {"Without Filling the Gaps", true, false},
      {"Without Partition Filtering", false, true},
      {"Without Filling the Gaps & Partition Filtering", false, false},
  };

  bench::TablePrinter table(
      {"Algorithm", "Avg margin of confidence", "Top-1 cause (%)"},
      {48, 26, 18});
  table.PrintHeader();
  for (const Variant& v : variants) {
    core::PredicateGenOptions options;
    options.normalized_diff_threshold = 0.2;
    options.enable_filtering = v.filtering;
    options.enable_gap_filling = v.gap_filling;
    VariantResult result = RunVariant(corpus, options, knowledge);
    table.PrintRow({v.label, bench::Num(result.avg_margin, 1),
                    bench::Pct(result.top1_pct)});
  }
  std::printf("\n(Paper: 37.4 / 94.6%% with all steps; 9.3 / 10.1%% without "
              "gap filling; 0.7 / 0%% without filtering; 0 / 0%% without "
              "both.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
