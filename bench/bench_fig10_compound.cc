// Figure 10 (Section 8.7): explaining compound situations.
//
// Six compound cases (two or three anomalies active simultaneously) are
// generated; per-class causal models are built by merging the models from
// every dataset of that class (as the paper does for this experiment), and
// the top-3 ranked causes are compared against the set of true causes. We
// report the ratio of true causes recovered in the top-3 and the average
// F1-measure of the correct models' predicates.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_util.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;
using simulator::AnomalyKind;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  int64_t repeats = flags.Int("repeats", 5, "compound datasets per case");
  flags.Validate();

  bench::PrintBanner(
      "Figure 10", "DBSherlock SIGMOD'16, Section 8.7",
      "Compound anomalies: ratio of correct causes in the top-3 shown, and "
      "average F1 of the correct causes' predicates.");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  const size_t num_classes = corpus.num_classes();

  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();

  // Merge every dataset of each class into that class's model.
  core::ModelRepository repo;
  for (size_t c = 0; c < num_classes; ++c) {
    for (const auto& ds : corpus.by_class[c]) {
      repo.Add(eval::BuildCausalModel(ds, corpus.ClassName(c), options,
                                      &knowledge));
    }
  }

  const std::vector<std::vector<AnomalyKind>> cases = {
      {AnomalyKind::kCpuSaturation, AnomalyKind::kIoSaturation,
       AnomalyKind::kNetworkCongestion},
      {AnomalyKind::kWorkloadSpike, AnomalyKind::kFlushLogTable},
      {AnomalyKind::kWorkloadSpike, AnomalyKind::kTableRestore},
      {AnomalyKind::kWorkloadSpike, AnomalyKind::kCpuSaturation},
      {AnomalyKind::kWorkloadSpike, AnomalyKind::kIoSaturation},
      {AnomalyKind::kWorkloadSpike, AnomalyKind::kNetworkCongestion},
  };

  bench::TablePrinter table({"Compound case", "Correct in top-3 (%)",
                             "Avg F1 of correct causes (%)"},
                            {44, 22, 30});
  table.PrintHeader();

  double overall_ratio = 0.0;
  for (const auto& kinds : cases) {
    double recovered = 0.0;
    double possible = 0.0;
    double f1_sum = 0.0;
    size_t f1_count = 0;
    for (int64_t rep = 0; rep < repeats; ++rep) {
      simulator::DatasetGenOptions opts = gen;
      opts.seed = seed * 977 + static_cast<uint64_t>(rep) * 13 +
                  static_cast<uint64_t>(kinds.size());
      simulator::GeneratedDataset compound =
          simulator::GenerateCompoundDataset(opts, kinds, 60.0);

      tsdata::LabeledRows rows =
          SplitRows(compound.data, compound.regions);
      std::vector<core::RankedCause> ranked = repo.Rank(
          compound.data, rows, options,
          -std::numeric_limits<double>::infinity());
      size_t top_k = std::min<size_t>(3, ranked.size());

      for (AnomalyKind kind : kinds) {
        std::string name = simulator::AnomalyKindName(kind);
        possible += 1.0;
        for (size_t i = 0; i < top_k; ++i) {
          if (ranked[i].cause == name) {
            recovered += 1.0;
            break;
          }
        }
        const core::CausalModel* model = repo.Find(name);
        if (model != nullptr) {
          eval::PredicateAccuracy acc = eval::EvaluatePredicates(
              model->predicates, compound.data, compound.regions);
          f1_sum += acc.f1;
          ++f1_count;
        }
      }
    }
    double ratio = 100.0 * recovered / possible;
    overall_ratio += ratio;
    table.PrintRow({simulator::CompoundLabel(kinds), bench::Pct(ratio),
                    bench::Pct(100.0 * f1_sum /
                               static_cast<double>(f1_count))});
  }
  std::printf("\nAverage ratio of correct causes: %.1f%%\n",
              overall_ratio / static_cast<double>(cases.size()));
  std::printf("(Paper: explanations contain more than two-thirds of the "
              "correct causes on average; 'Workload Spike + Network "
              "Congestion' is the hard case.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
