// DQL pipeline benchmark (run_benchmarks.sh --query): parse and compile
// latency for a representative EXPLAIN WHERE statement (compile includes
// exact percentile resolution via zone-map bracketing), the discovery
// scan with pushdown vs the prune-free full decode over the same window,
// and end-to-end EXPLAINQ latency against a real `dbsherlockd serve`
// subprocess. Optionally writes the report as JSON (BENCH_query.json).
// The exit status is nonzero unless pushdown discovery decoded strictly
// fewer segments than the full scan while matching the same rows — the
// DESIGN.md §16 acceptance bound.

#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "common/json.h"
#include "eval/query_sweep.h"

#ifndef DBSHERLOCK_DAEMON_PATH
#define DBSHERLOCK_DAEMON_PATH ""
#endif

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int64_t rows = flags.Int("rows", 20000, "stored history rows");
  int64_t seal_rows = flags.Int("seal_rows", 256, "segment seal threshold");
  int64_t seed = flags.Int("seed", 20260808, "simulator seed");
  int64_t parse_iters = flags.Int("parse_iters", 2000, "Parse() iterations");
  int64_t compile_iters =
      flags.Int("compile_iters", 200, "Compile() iterations");
  int64_t scan_iters = flags.Int("scan_iters", 10, "scan repetitions");
  int64_t e2e_queries = flags.Int(
      "e2e_queries", 40, "EXPLAINQ calls over the socket (0 = skip)");
  std::string json_out = flags.String(
      "json_out", "", "write the report as JSON to this path");
  flags.Validate();

  bench::PrintBanner(
      "Query", "DESIGN.md §16",
      "DQL front-end latency, discovery pushdown vs full decode, and "
      "end-to-end EXPLAINQ latency over the socket.");

  eval::QuerySweepOptions options;
  options.rows = static_cast<size_t>(rows);
  options.seal_rows = static_cast<size_t>(seal_rows);
  options.seed = static_cast<uint64_t>(seed);
  options.parse_iters = static_cast<size_t>(parse_iters);
  options.compile_iters = static_cast<size_t>(compile_iters);
  options.scan_iters = static_cast<size_t>(scan_iters);
  options.e2e_queries = static_cast<size_t>(e2e_queries);
  options.daemon_binary = DBSHERLOCK_DAEMON_PATH;

  auto result = eval::RunQuerySweep(options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("statement: %s\n\n", result->statement.c_str());
  std::printf("parse     mean %8.2f us   p99 %8.2f us\n",
              result->parse_us_mean, result->parse_us_p99);
  std::printf("compile   mean %8.2f us   p99 %8.2f us   "
              "(quantile decoded %zu/%zu segments)\n",
              result->compile_us_mean, result->compile_us_p99,
              result->quantile_segments_decoded,
              result->quantile_segments_total);
  std::printf("discovery pushdown %zu/%zu segments in %.3f ms; "
              "full decode %zu/%zu in %.3f ms; %llu rows matched\n",
              result->pushdown_segments_decoded, result->segments_total,
              result->pushdown_ms, result->fullscan_segments_decoded,
              result->segments_total, result->fullscan_ms,
              static_cast<unsigned long long>(result->matched_rows));
  if (result->e2e_queries > 0) {
    std::printf("EXPLAINQ  p50 %8.3f ms   p99 %8.3f ms   (%zu queries)\n",
                result->e2e_p50_ms, result->e2e_p99_ms, result->e2e_queries);
  }

  if (!json_out.empty()) {
    common::JsonValue report = result->ToJson();
    report.as_object()["build_info"] = bench::BuildInfoJson();
    std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
    out << report.Dump(2) << "\n";
    std::printf("\nwrote %s\n", json_out.c_str());
  }

  // Acceptance: region discovery must ride the zone maps, not decode
  // the world.
  if (result->pushdown_segments_decoded >=
      result->fullscan_segments_decoded) {
    std::fprintf(stderr,
                 "FAIL: pushdown decoded %zu segments, full scan %zu — "
                 "zone-map pruning did nothing\n",
                 result->pushdown_segments_decoded,
                 result->fullscan_segments_decoded);
    return 1;
  }
  std::printf("\npushdown bound met: %zu < %zu segments decoded\n",
              result->pushdown_segments_decoded,
              result->fullscan_segments_decoded);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
