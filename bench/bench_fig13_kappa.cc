// Figure 13 (Appendix D): sensitivity of the independence-test threshold.
//
// The Appendix F synthetic setup is swept over kappa_t in {0, 0.05, ...,
// 0.3}; for each threshold we report the F1-measure of the pruning
// decisions (positive = "prune this secondary symptom") against the
// ground-truth causal graph.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/predicate_generator.h"
#include "synthetic/sem.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42, "RNG seed"));
  int64_t graphs = flags.Int("graphs", 1000, "random causal graphs");
  flags.Validate();

  bench::PrintBanner(
      "Figure 13", "DBSherlock SIGMOD'16, Appendix D",
      "F1-measure of secondary-symptom pruning vs the independence-test "
      "threshold kappa_t (synthetic SEM data).");

  common::Pcg32 rng(seed, 0x5e4);
  synthetic::SemOptions sem_options;
  core::PredicateGenOptions pred_options;
  core::IndependenceTestOptions test_options;

  const std::vector<double> thresholds = {0.0,  0.05, 0.1, 0.15,
                                          0.2,  0.25, 0.3};
  std::vector<common::BinaryClassificationCounts> counts(thresholds.size());

  for (int64_t g = 0; g < graphs; ++g) {
    synthetic::SemInstance inst =
        synthetic::GenerateSemInstance(sem_options, &rng);
    core::PredicateGenResult result =
        core::GeneratePredicates(inst.data, inst.regions, pred_options);
    for (const synthetic::RuleExpectation& exp : inst.expectations) {
      if (result.Find(exp.rule.cause_attribute) == nullptr ||
          result.Find(exp.rule.effect_attribute) == nullptr) {
        continue;
      }
      double kappa = core::DomainKnowledge::ComputeKappa(
          inst.data, exp.rule.cause_attribute, exp.rule.effect_attribute,
          test_options);
      for (size_t t = 0; t < thresholds.size(); ++t) {
        bool pruned = kappa >= thresholds[t];
        counts[t].Add(pruned, exp.should_prune);
      }
    }
  }

  bench::TablePrinter table({"kappa_t", "F1-measure (%)", "Precision (%)",
                             "Recall (%)"},
                            {10, 16, 15, 12});
  table.PrintHeader();
  for (size_t t = 0; t < thresholds.size(); ++t) {
    table.PrintRow({bench::Num(thresholds[t]),
                    bench::Pct(100.0 * counts[t].F1()),
                    bench::Pct(100.0 * counts[t].Precision()),
                    bench::Pct(100.0 * counts[t].Recall())});
  }
  std::printf("\n(Paper: kappa_t = 0.15 gives the highest average "
              "F1-measure.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
