// Crash-chaos sweep for dbsherlockd (run_benchmarks.sh --chaos): runs a
// battery of seeded chaos episodes (eval/chaos.h) against the real daemon
// binary — kill -9 mid-stream, injected I/O faults (torn WAL appends,
// failed segment fsyncs), and injected network faults (connection resets)
// — and asserts the crash-safety contract on every one: zero acked-row
// loss, zero double-ingest, acked models durable, clean SIGTERM. Reports
// the recovery-time and shed-rate distributions across the sweep and
// writes them (with each episode's seed + fault schedule) to
// BENCH_chaos.json. Also measures the disabled-faultenv wrapper overhead
// against raw write(2) so "unmeasurable when off" stays an enforced
// property, not a promise.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/faultenv.h"
#include "eval/chaos.h"

#ifndef DBSHERLOCK_DAEMON_PATH
#define DBSHERLOCK_DAEMON_PATH "dbsherlockd"
#endif

namespace {

using namespace dbsherlock;

/// The fault dimensions the sweep rotates through; %llu is stamped with
/// the episode seed so every schedule is deterministic yet distinct.
const char* const kScheduleTemplates[] = {
    "",  // pure kill -9: crash recovery with a healthy disk and network
    "seed=%llu;srv.send=reset@0.02",
    "seed=%llu;seg.fsync=enospc@0.25,limit=4",
    "seed=%llu;wal.write=torn@0.5,limit=2",
    "seed=%llu;srv.send=reset@0.01;seg.fsync=enospc@0.2,limit=3;"
    "wal.write=torn@0.5,limit=2",
};

std::string ScheduleFor(size_t episode, uint64_t seed) {
  const char* tmpl =
      kScheduleTemplates[episode %
                         (sizeof(kScheduleTemplates) /
                          sizeof(kScheduleTemplates[0]))];
  char buf[256];
  std::snprintf(buf, sizeof(buf), tmpl,
                static_cast<unsigned long long>(seed));
  return buf;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = p * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

common::JsonValue DistributionJson(const std::vector<double>& values) {
  common::JsonValue::Object out;
  out["count"] = static_cast<double>(values.size());
  if (!values.empty()) {
    double sum = 0.0;
    for (double v : values) sum += v;
    out["mean"] = sum / static_cast<double>(values.size());
    out["p50"] = Percentile(values, 0.50);
    out["p95"] = Percentile(values, 0.95);
    out["max"] = *std::max_element(values.begin(), values.end());
  }
  return common::JsonValue(std::move(out));
}

/// Times `rounds` small writes to /dev/null through the faultenv wrapper
/// (schedule disabled) vs raw write(2). Returns wrapper/raw; ~1.0 means
/// the disabled path costs one relaxed atomic load, as designed.
double DisabledOverheadRatio(int rounds) {
  int fd = ::open("/dev/null", O_WRONLY | O_CLOEXEC);
  if (fd < 0) return 0.0;
  common::faultenv::Clear();
  char byte = 'x';
  auto time_loop = [&](auto&& op) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < rounds; ++i) op();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  // Warm both paths, then interleave to share any clock/cache drift.
  (void)time_loop([&] { (void)::write(fd, &byte, 1); });
  double raw = time_loop([&] { (void)::write(fd, &byte, 1); });
  double wrapped = time_loop(
      [&] { (void)common::faultenv::Write("bench.off", fd, &byte, 1); });
  ::close(fd);
  return raw > 0.0 ? wrapped / raw : 0.0;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int64_t episodes = flags.Int("episodes", 25, "chaos episodes to run");
  int64_t seed = flags.Int("seed", 20260808, "base episode seed");
  int64_t tenants = flags.Int("tenants", 2, "tenants per episode");
  int64_t kills = flags.Int("kills", 1, "kill -9 events per episode");
  double normal_sec = flags.Double(
      "normal_sec", 90.0, "seconds of normal telemetry per tenant");
  double anomaly_sec =
      flags.Double("anomaly_sec", 30.0, "injected anomaly duration");
  std::string daemon = flags.String(
      "daemon", DBSHERLOCK_DAEMON_PATH, "dbsherlockd binary to crash");
  std::string work_root = flags.String(
      "work_root", "/tmp", "scratch root for per-episode wal/store dirs");
  std::string json_out = flags.String(
      "json_out", "", "write the report as JSON to this path");
  flags.Validate();

  bench::PrintBanner(
      "Chaos sweep", "dbsherlockd crash-safety",
      "Seeded kill -9 + fault-schedule episodes against the real daemon; "
      "exactly-once ingest, durable models, bounded recovery.");

  std::vector<double> recovery_ms;
  std::vector<double> shed_rates;
  std::vector<std::string> failures;
  common::JsonValue::Array episode_reports;
  uint64_t rows_acked = 0, resent = 0, retries = 0, reconnects = 0;
  size_t passed = 0;

  bench::TablePrinter table(
      {"Ep", "Seed", "Schedule", "Kills", "Recov ms", "Shed", "OK"},
      {4, 10, 44, 6, 10, 7, 4});
  table.PrintHeader();

  auto sweep_t0 = std::chrono::steady_clock::now();
  for (int64_t e = 0; e < episodes; ++e) {
    uint64_t episode_seed = static_cast<uint64_t>(seed) + 101 * e;
    eval::ChaosOptions options;
    options.daemon_path = daemon;
    options.work_dir = work_root + "/dbsherlock_chaos_bench_" +
                       std::to_string(::getpid()) + "_" +
                       std::to_string(e);
    options.seed = episode_seed;
    options.num_tenants = static_cast<size_t>(tenants);
    options.kills = static_cast<size_t>(kills);
    options.gen.seed = episode_seed * 2 + 1;
    options.gen.normal_duration_sec = normal_sec;
    options.anomaly_duration_sec = anomaly_sec;
    options.train_sets_per_cause = 1;
    options.seal_rows = 16;
    options.fault_schedule = ScheduleFor(static_cast<size_t>(e),
                                         episode_seed);

    auto result = eval::RunChaosEpisode(options);
    if (!result.ok()) {
      failures.push_back("episode " + std::to_string(e) + " harness: " +
                         result.status().ToString());
      table.PrintRow({std::to_string(e), std::to_string(episode_seed),
                      options.fault_schedule, "-", "-", "-", "ERR"});
      continue;
    }
    double worst_recovery = 0.0;
    for (double ms : result->recovery_ms) {
      recovery_ms.push_back(ms);
      worst_recovery = std::max(worst_recovery, ms);
    }
    shed_rates.push_back(result->shed_rate);
    rows_acked += result->rows_acked;
    resent += result->resent_rows;
    retries += result->retries;
    reconnects += result->reconnects;
    if (result->ok) {
      ++passed;
    } else {
      for (const std::string& v : result->violations) {
        failures.push_back("episode " + std::to_string(e) + ": " + v);
      }
    }
    table.PrintRow({std::to_string(e), std::to_string(episode_seed),
                    options.fault_schedule.empty()
                        ? "(kill -9 only)"
                        : options.fault_schedule,
                    std::to_string(result->kills),
                    bench::Num(worst_recovery, 1),
                    bench::Num(result->shed_rate, 4),
                    result->ok ? "yes" : "NO"});
    episode_reports.push_back(result->ToJson());
  }
  double wall_sec = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - sweep_t0)
                        .count();

  double overhead = DisabledOverheadRatio(200000);

  std::printf("\nepisodes %lld   passed %zu   acked rows %llu   resent "
              "%llu   retries %llu   reconnects %llu\n",
              static_cast<long long>(episodes), passed,
              static_cast<unsigned long long>(rows_acked),
              static_cast<unsigned long long>(resent),
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(reconnects));
  std::printf("recovery ms: p50 %.1f  p95 %.1f  max %.1f   shed rate: "
              "p50 %.4f  max %.4f\n",
              Percentile(recovery_ms, 0.5), Percentile(recovery_ms, 0.95),
              recovery_ms.empty()
                  ? 0.0
                  : *std::max_element(recovery_ms.begin(),
                                      recovery_ms.end()),
              Percentile(shed_rates, 0.5),
              shed_rates.empty()
                  ? 0.0
                  : *std::max_element(shed_rates.begin(),
                                      shed_rates.end()));
  std::printf("disabled faultenv overhead: %.3fx raw write(2)   wall %.1f "
              "s\n",
              overhead, wall_sec);
  for (const std::string& f : failures) {
    std::printf("VIOLATION %s\n", f.c_str());
  }

  if (!json_out.empty()) {
    common::JsonValue::Object report;
    report["episodes"] = static_cast<double>(episodes);
    report["passed"] = static_cast<double>(passed);
    report["base_seed"] = static_cast<double>(seed);
    report["rows_acked"] = static_cast<double>(rows_acked);
    report["resent_rows"] = static_cast<double>(resent);
    report["retries"] = static_cast<double>(retries);
    report["reconnects"] = static_cast<double>(reconnects);
    report["recovery_ms"] = DistributionJson(recovery_ms);
    report["shed_rate"] = DistributionJson(shed_rates);
    report["disabled_overhead_ratio"] = overhead;
    report["wall_sec"] = wall_sec;
    common::JsonValue::Array failure_list;
    for (const std::string& f : failures) failure_list.push_back(f);
    report["violations"] = common::JsonValue(std::move(failure_list));
    report["episode_reports"] = common::JsonValue(std::move(episode_reports));
    report["build_info"] = bench::BuildInfoJson();
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 1;
    }
    out << common::JsonValue(std::move(report)).Dump(2) << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return failures.empty() && passed == static_cast<size_t>(episodes) ? 0
                                                                     : 1;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
