// Table 8 (Appendix F): pruning secondary symptoms on synthetic SEM data.
//
// Random linear causal graphs (k = 7 variables) generate datasets with a
// known ground-truth causal structure; synthetic domain-knowledge rules are
// generated per root cause. For every rule whose two attributes both carry
// extracted predicates, the independence-test decision (prune / keep) is
// compared against the graph's ground truth (prune iff the effect is
// actually reachable from the cause), yielding the confusion matrix.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/predicate_generator.h"
#include "eval/experiment.h"
#include "synthetic/sem.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42, "RNG seed"));
  int64_t graphs = flags.Int(
      "graphs", 2000,
      "random causal graphs (paper: 10000; default scaled for speed)");
  double kappa_t =
      flags.Double("kappa_t", 0.15, "independence test threshold");
  flags.Validate();

  bench::PrintBanner(
      "Table 8", "DBSherlock SIGMOD'16, Appendix F",
      "Confusion matrix of secondary-symptom pruning on synthetic "
      "linear-SEM causal graphs.");
  std::printf("Running %lld random graphs (use --graphs 10000 for the "
              "paper's full scale).\n\n",
              static_cast<long long>(graphs));

  common::Pcg32 rng(seed, 0x5e3);
  synthetic::SemOptions sem_options;
  core::PredicateGenOptions pred_options;
  core::IndependenceTestOptions test_options;
  test_options.kappa_threshold = kappa_t;

  // Confusion counts over rule decisions.
  uint64_t pruned_positive = 0, pruned_negative = 0;
  uint64_t kept_positive = 0, kept_negative = 0;

  for (int64_t g = 0; g < graphs; ++g) {
    synthetic::SemInstance inst =
        synthetic::GenerateSemInstance(sem_options, &rng);
    core::PredicateGenResult result = core::GeneratePredicates(
        inst.data, inst.regions, pred_options);
    auto has_predicate = [&](const std::string& attr) {
      return result.Find(attr) != nullptr;
    };
    for (const synthetic::RuleExpectation& exp : inst.expectations) {
      if (!has_predicate(exp.rule.cause_attribute) ||
          !has_predicate(exp.rule.effect_attribute)) {
        continue;  // no pruning decision to make
      }
      double kappa = core::DomainKnowledge::ComputeKappa(
          inst.data, exp.rule.cause_attribute, exp.rule.effect_attribute,
          test_options);
      bool pruned = kappa >= test_options.kappa_threshold;
      if (pruned && exp.should_prune) ++pruned_positive;
      if (pruned && !exp.should_prune) ++pruned_negative;
      if (!pruned && exp.should_prune) ++kept_positive;
      if (!pruned && !exp.should_prune) ++kept_negative;
    }
  }

  uint64_t actual_positive = pruned_positive + kept_positive;
  uint64_t actual_negative = pruned_negative + kept_negative;
  auto pct = [](uint64_t x, uint64_t total) {
    return total == 0 ? bench::Pct(0.0)
                      : bench::Pct(100.0 * static_cast<double>(x) /
                                   static_cast<double>(total));
  };

  bench::TablePrinter table(
      {"Domain Knowledge Test", "Actual Positive (%)", "Actual Negative (%)"},
      {24, 21, 21});
  table.PrintHeader();
  table.PrintRow({"Pruned", pct(pruned_positive, actual_positive),
                  pct(pruned_negative, actual_negative)});
  table.PrintRow({"Not Pruned", pct(kept_positive, actual_positive),
                  pct(kept_negative, actual_negative)});

  uint64_t predicted_positive = pruned_positive + pruned_negative;
  double precision = predicted_positive == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(pruned_positive) /
                               static_cast<double>(predicted_positive);
  double recall = actual_positive == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(pruned_positive) /
                            static_cast<double>(actual_positive);
  std::printf("\nDecisions made: %llu  |  precision %.1f%%, recall %.1f%%\n",
              static_cast<unsigned long long>(actual_positive +
                                              actual_negative),
              precision, recall);
  std::printf("(Paper's Table 8: prunes 91.6%% of true secondary symptoms "
              "while keeping 99.1%% of independent attributes.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
