// Figure 7 (Section 8.3): accuracy of single causal models.
//
// For each round r in 0..10, one causal model per anomaly class is built
// from that class's r-th dataset (theta = 0.2, single training dataset).
// The ten competing models are then ranked on every dataset not used for
// training; per class we report the average margin of confidence of the
// correct model (its confidence minus the best incorrect confidence) and
// the average F1-measure of the correct model's predicates over tuples.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed = static_cast<uint64_t>(
      flags.Int("seed", 42, "corpus generation seed"));
  double theta = flags.Double("theta", 0.2, "normalized difference threshold");
  int64_t partitions = flags.Int("partitions", 250, "R, number of partitions");
  int64_t threads =
      flags.Int("threads", 0, "diagnosis parallelism (0=auto, 1=serial)");
  flags.Validate();

  bench::PrintBanner(
      "Figure 7", "DBSherlock SIGMOD'16, Section 8.3",
      "Margin of confidence and F1-measure of the correct single causal "
      "model, per anomaly class (110 TPC-C datasets, leave-one-in).");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();

  core::PredicateGenOptions options;
  options.normalized_diff_threshold = theta;
  options.num_partitions = static_cast<size_t>(partitions);
  options.parallelism = static_cast<size_t>(threads);
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();

  std::vector<double> margin_sum(num_classes, 0.0);
  std::vector<double> f1_sum(num_classes, 0.0);
  std::vector<size_t> counts(num_classes, 0);
  size_t correct_top1 = 0;
  size_t total_rankings = 0;

  for (size_t round = 0; round < per_class; ++round) {
    core::ModelRepository repo;
    for (size_t c = 0; c < num_classes; ++c) {
      repo.AddUnmerged(eval::BuildCausalModel(corpus.by_class[c][round],
                                              corpus.ClassName(c), options,
                                              &knowledge));
    }
    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t i = 0; i < per_class; ++i) {
        if (i == round) continue;  // used for training
        const simulator::GeneratedDataset& test = corpus.by_class[c][i];
        eval::RankingOutcome outcome =
            eval::RankAgainst(repo, test, corpus.ClassName(c), options);
        margin_sum[c] += outcome.margin;
        if (outcome.CorrectInTopK(1)) ++correct_top1;
        ++total_rankings;

        const core::CausalModel* correct = repo.Find(corpus.ClassName(c));
        if (correct != nullptr) {
          eval::PredicateAccuracy acc = eval::EvaluatePredicates(
              correct->predicates, test.data, test.regions);
          f1_sum[c] += acc.f1;
        }
        ++counts[c];
      }
    }
  }

  bench::TablePrinter table(
      {"Test case", "Margin of confidence (%)", "F1-measure (%)"},
      {24, 26, 18});
  table.PrintHeader();
  double margin_total = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    double margin = margin_sum[c] / static_cast<double>(counts[c]);
    double f1 = 100.0 * f1_sum[c] / static_cast<double>(counts[c]);
    margin_total += margin;
    table.PrintRow({corpus.ClassName(c), bench::Pct(margin), bench::Pct(f1)});
  }
  std::printf("\nAverage margin of confidence: %.1f%%\n",
              margin_total / static_cast<double>(num_classes));
  std::printf("Correct cause ranked first:   %.1f%% of %zu rankings\n",
              100.0 * static_cast<double>(correct_top1) /
                  static_cast<double>(total_rankings),
              total_rankings);
  std::printf("(Paper: correct model highest in all 10 classes; average "
              "margin 13.5%%.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
