#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/simd/simd.h"
#include "common/strings.h"

namespace dbsherlock::bench {

const char* BuildType() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

common::JsonValue BuildInfoJson() {
  namespace simd = dbsherlock::common::simd;
  common::JsonValue::Object info;
  info["build_type"] = BuildType();
  info["simd_isa"] = simd::IsaName(simd::ActiveIsa());
  info["simd_best_isa"] = simd::IsaName(simd::BestSupportedIsa());
  return common::JsonValue(std::move(info));
}

Flags::Flags(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      args_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args_.emplace_back(arg, argv[++i]);
    } else {
      args_.emplace_back(arg, "true");
    }
  }
  consumed_.assign(args_.size(), false);
}

const std::string* Flags::Lookup(const std::string& name) {
  for (size_t i = 0; i < args_.size(); ++i) {
    if (args_[i].first == name) {
      consumed_[i] = true;
      return &args_[i].second;
    }
  }
  return nullptr;
}

int64_t Flags::Int(const std::string& name, int64_t default_value,
                   const std::string& help) {
  registered_.push_back({name, help, std::to_string(default_value)});
  const std::string* v = Lookup(name);
  if (v == nullptr) return default_value;
  auto parsed = common::ParseInt64(*v);
  if (!parsed.ok()) {
    std::fprintf(stderr, "--%s: %s\n", name.c_str(),
                 parsed.status().ToString().c_str());
    std::exit(2);
  }
  return *parsed;
}

double Flags::Double(const std::string& name, double default_value,
                     const std::string& help) {
  registered_.push_back({name, help, common::StrFormat("%g", default_value)});
  const std::string* v = Lookup(name);
  if (v == nullptr) return default_value;
  auto parsed = common::ParseDouble(*v);
  if (!parsed.ok()) {
    std::fprintf(stderr, "--%s: %s\n", name.c_str(),
                 parsed.status().ToString().c_str());
    std::exit(2);
  }
  return *parsed;
}

std::string Flags::String(const std::string& name, std::string default_value,
                          const std::string& help) {
  registered_.push_back({name, help, default_value});
  const std::string* v = Lookup(name);
  return v == nullptr ? default_value : *v;
}

void Flags::Validate() const {
  bool bad = false;
  for (size_t i = 0; i < args_.size(); ++i) {
    if (!consumed_[i]) {
      std::fprintf(stderr, "unknown flag: --%s\n", args_[i].first.c_str());
      bad = true;
    }
  }
  if (bad || help_requested_) {
    std::fprintf(stderr, "usage: %s [flags]\n", program_.c_str());
    for (const Registered& r : registered_) {
      std::fprintf(stderr, "  --%-24s %s (default: %s)\n", r.name.c_str(),
                   r.help.c_str(), r.default_str.c_str());
    }
    std::exit(bad ? 2 : 0);
  }
}

TablePrinter::TablePrinter(std::vector<std::string> columns,
                           std::vector<int> widths)
    : columns_(std::move(columns)), widths_(std::move(widths)) {
  if (widths_.size() != columns_.size()) {
    widths_.assign(columns_.size(), 0);
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    widths_[i] =
        std::max(widths_[i], static_cast<int>(columns_[i].size()) + 2);
  }
}

void TablePrinter::PrintHeader() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%-*s", widths_[i], columns_[i].c_str());
  }
  std::printf("\n");
  int total = 0;
  for (int w : widths_) total += w;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    std::printf("%-*s", widths_[i], cells[i].c_str());
  }
  std::printf("\n");
}

std::string Pct(double value, int precision) {
  return common::StrFormat("%.*f", precision, value);
}

std::string Num(double value, int precision) {
  return common::StrFormat("%.*f", precision, value);
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s  (%s)\n", experiment.c_str(), paper_ref.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n");
}

}  // namespace dbsherlock::bench
