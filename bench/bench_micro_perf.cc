// Microbenchmarks (google-benchmark): throughput of the core building
// blocks — predicate generation as a function of R (partitions), X (rows)
// and k (attributes), matching the O(k(X+R)) analysis of Section 4.6 —
// plus DBSCAN-based detection, the simulator's tick rate, and the columnar
// SIMD kernels (DESIGN.md §12) as BM_*_Scalar / BM_*_Dispatch pairs whose
// ratio is the vector-unit speedup on this host.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/simd/simd.h"
#include "core/anomaly_detector.h"
#include "core/predicate_generator.h"
#include "eval/experiment.h"
#include "simulator/dataset_gen.h"

namespace {

using namespace dbsherlock;
namespace simd = dbsherlock::common::simd;

const simulator::GeneratedDataset& SharedDataset() {
  static const simulator::GeneratedDataset* dataset = [] {
    simulator::DatasetGenOptions options;
    options.seed = 42;
    return new simulator::GeneratedDataset(simulator::GenerateAnomalyDataset(
        options, simulator::AnomalyKind::kWorkloadSpike, 60.0));
  }();
  return *dataset;
}

void BM_PredicateGeneration_Partitions(benchmark::State& state) {
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::PredicateGenOptions options;
  options.num_partitions = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = core::GeneratePredicates(ds.data, ds.regions, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.data.num_rows()));
}
BENCHMARK(BM_PredicateGeneration_Partitions)
    ->Arg(125)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000);

simulator::GeneratedDataset RowsScaledDataset(int64_t normal_sec) {
  simulator::DatasetGenOptions options;
  options.seed = 7;
  options.normal_duration_sec = static_cast<double>(normal_sec);
  return simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kIoSaturation,
      options.normal_duration_sec / 2.0);
}

void BM_PredicateGeneration_Rows(benchmark::State& state) {
  simulator::GeneratedDataset ds = RowsScaledDataset(state.range(0));
  core::PredicateGenOptions gen_options;
  for (auto _ : state) {
    auto result = core::GeneratePredicates(ds.data, ds.regions, gen_options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.data.num_rows()));
}
BENCHMARK(BM_PredicateGeneration_Rows)->Arg(120)->Arg(300)->Arg(600)->Arg(1800)->Arg(3600);

// The batch-kernel path pinned to the scalar table: what the dispatch path
// falls back to on hosts without SSE2/AVX2. BM_PredicateGeneration_Rows /
// this = the vector-unit speedup of the diagnosis hot loop.
void BM_PredicateGeneration_Rows_Scalar(benchmark::State& state) {
  simulator::GeneratedDataset ds = RowsScaledDataset(state.range(0));
  core::PredicateGenOptions gen_options;
  simd::ScopedIsaOverride forced(simd::Isa::kScalar);
  for (auto _ : state) {
    auto result = core::GeneratePredicates(ds.data, ds.regions, gen_options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.data.num_rows()));
}
BENCHMARK(BM_PredicateGeneration_Rows_Scalar)
    ->Arg(120)
    ->Arg(300)
    ->Arg(600)
    ->Arg(1800)
    ->Arg(3600);

// The pre-kernel row-at-a-time path (use_batch_kernels=false): per-row
// schema lookups and virtual Predicate::MatchesRow calls. Kept as the
// regression baseline for the columnar refactor.
void BM_PredicateGeneration_Rows_RowAtATime(benchmark::State& state) {
  simulator::GeneratedDataset ds = RowsScaledDataset(state.range(0));
  core::PredicateGenOptions gen_options;
  gen_options.use_batch_kernels = false;
  for (auto _ : state) {
    auto result = core::GeneratePredicates(ds.data, ds.regions, gen_options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.data.num_rows()));
}
BENCHMARK(BM_PredicateGeneration_Rows_RowAtATime)
    ->Arg(120)
    ->Arg(300)
    ->Arg(600)
    ->Arg(1800)
    ->Arg(3600);

// Thread-count sweep of the fused per-attribute loop (1/2/4/8 lanes; the
// speedup relative to Arg(1) measures the parallel efficiency of the
// diagnosis engine on this machine).
void BM_PredicateGeneration_Threads(benchmark::State& state) {
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::PredicateGenOptions options;
  options.parallelism = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = core::GeneratePredicates(ds.data, ds.regions, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.data.num_rows()));
}
BENCHMARK(BM_PredicateGeneration_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// A merged-style repository over all 10 anomaly classes (two source
// datasets per class, kept unmerged so the repository holds 20 models with
// heavily overlapping attributes — the shape that made per-model
// partition-space rebuilding quadratic before PartitionSpaceCache).
const core::ModelRepository& SharedRepository() {
  static const core::ModelRepository* repo = [] {
    auto* r = new core::ModelRepository();
    core::PredicateGenOptions options;
    for (uint64_t round = 0; round < 2; ++round) {
      simulator::DatasetGenOptions gen;
      gen.seed = 1000 + round;
      for (simulator::AnomalyKind kind : simulator::AllAnomalyKinds()) {
        simulator::GeneratedDataset ds =
            simulator::GenerateAnomalyDataset(gen, kind, 60.0);
        r->AddUnmerged(eval::BuildCausalModel(
            ds, simulator::AnomalyKindName(kind), options));
      }
    }
    return r;
  }();
  return *repo;
}

void BM_RepositoryRank(benchmark::State& state) {
  const core::ModelRepository& repo = SharedRepository();
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::PredicateGenOptions options;
  options.parallelism = static_cast<size_t>(state.range(0));
  tsdata::LabeledRows rows = SplitRows(ds.data, ds.regions);
  for (auto _ : state) {
    auto ranked = repo.Rank(ds.data, rows, options, 20.0);
    benchmark::DoNotOptimize(ranked);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(repo.size()));
}
BENCHMARK(BM_RepositoryRank)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The seed's Rank loop: one cache-free ModelConfidence per model, i.e.
// every model rebuilds every referenced attribute's partition space. The
// ratio BM_RepositoryRank_NoCache / BM_RepositoryRank(1) is the
// PartitionSpaceCache win at equal thread count.
void BM_RepositoryRank_NoCache(benchmark::State& state) {
  const core::ModelRepository& repo = SharedRepository();
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::PredicateGenOptions options;
  tsdata::LabeledRows rows = SplitRows(ds.data, ds.regions);
  for (auto _ : state) {
    double sum = 0.0;
    for (const core::CausalModel& m : repo.models()) {
      sum += core::ModelConfidence(m, ds.data, rows, options);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(repo.size()));
}
BENCHMARK(BM_RepositoryRank_NoCache);

void BM_ModelConfidence(benchmark::State& state) {
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::PredicateGenOptions options;
  core::CausalModel model =
      eval::BuildCausalModel(ds, "Workload Spike", options);
  tsdata::LabeledRows rows = SplitRows(ds.data, ds.regions);
  for (auto _ : state) {
    double conf = core::ModelConfidence(model, ds.data, rows, options);
    benchmark::DoNotOptimize(conf);
  }
}
BENCHMARK(BM_ModelConfidence);

void BM_AutomaticAnomalyDetection(benchmark::State& state) {
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::AnomalyDetectorOptions options;
  for (auto _ : state) {
    auto result = core::DetectAnomalies(ds.data, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AutomaticAnomalyDetection);

void BM_SimulatorTick(benchmark::State& state) {
  simulator::ServerSimulator sim(simulator::ServerConfig{},
                                 simulator::MakeTpccWorkload(), 42);
  std::vector<simulator::AnomalyEvent> events;
  for (auto _ : state) {
    simulator::Metrics m = sim.Tick(events);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorTick);

// ---------------------------------------------------------------------------
// Columnar kernel microbenchmarks (DESIGN.md §12). Each kernel runs as a
// _Scalar / _Dispatch pair over the same column; the dispatch variant uses
// whatever ISA the host resolved (see the "simd_isa" context key in the
// JSON report). The column carries ~1/64 NaN cells so the finite-mask path
// is exercised, matching real telemetry.
// ---------------------------------------------------------------------------

constexpr size_t kMaxKernelRows = 1 << 16;

const std::vector<double>& KernelColumn() {
  static const std::vector<double>* column = [] {
    common::Pcg32 rng(1234);
    auto* c = new std::vector<double>(kMaxKernelRows);
    for (double& v : *c) {
      v = rng.NextDouble() < 1.0 / 64.0
              ? std::numeric_limits<double>::quiet_NaN()
              : rng.NextGaussian(50.0, 20.0);
    }
    return c;
  }();
  return *column;
}

template <typename Fn>
void RunKernelBench(benchmark::State& state, bool force_scalar, Fn&& body) {
  std::optional<simd::ScopedIsaOverride> forced;
  if (force_scalar) forced.emplace(simd::Isa::kScalar);
  size_t n = std::min<size_t>(static_cast<size_t>(state.range(0)),
                              KernelColumn().size());
  for (auto _ : state) body(n);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void ProfileSpanBody(size_t n) {
  simd::SpanProfile p = simd::ProfileSpan(KernelColumn().data(), n);
  benchmark::DoNotOptimize(p);
}
void BM_ProfileSpan_Scalar(benchmark::State& state) {
  RunKernelBench(state, true, ProfileSpanBody);
}
void BM_ProfileSpan_Dispatch(benchmark::State& state) {
  RunKernelBench(state, false, ProfileSpanBody);
}
BENCHMARK(BM_ProfileSpan_Scalar)->Arg(4096)->Arg(65536);
BENCHMARK(BM_ProfileSpan_Dispatch)->Arg(4096)->Arg(65536);

void CountMatchesBody(size_t n) {
  uint64_t c = simd::CountMatches(KernelColumn().data(), n,
                                  simd::CmpKind::kInRange, 30.0, 70.0);
  benchmark::DoNotOptimize(c);
}
void BM_CountMatches_Scalar(benchmark::State& state) {
  RunKernelBench(state, true, CountMatchesBody);
}
void BM_CountMatches_Dispatch(benchmark::State& state) {
  RunKernelBench(state, false, CountMatchesBody);
}
BENCHMARK(BM_CountMatches_Scalar)->Arg(4096)->Arg(65536);
BENCHMARK(BM_CountMatches_Dispatch)->Arg(4096)->Arg(65536);

void PartitionIndicesBody(size_t n) {
  static std::vector<uint32_t> out(kMaxKernelRows);
  simd::PartitionIndices(KernelColumn().data(), n, -30.0, 0.5, 250,
                         out.data());
  benchmark::DoNotOptimize(out.data());
}
void BM_PartitionIndices_Scalar(benchmark::State& state) {
  RunKernelBench(state, true, PartitionIndicesBody);
}
void BM_PartitionIndices_Dispatch(benchmark::State& state) {
  RunKernelBench(state, false, PartitionIndicesBody);
}
BENCHMARK(BM_PartitionIndices_Scalar)->Arg(4096)->Arg(65536);
BENCHMARK(BM_PartitionIndices_Dispatch)->Arg(4096)->Arg(65536);

void NormalizeSpanBody(size_t n) {
  static std::vector<double> out(kMaxKernelRows);
  simd::NormalizeSpan(KernelColumn().data(), n, -30.0, 130.0, 0.0,
                      out.data());
  benchmark::DoNotOptimize(out.data());
}
void BM_NormalizeSpan_Scalar(benchmark::State& state) {
  RunKernelBench(state, true, NormalizeSpanBody);
}
void BM_NormalizeSpan_Dispatch(benchmark::State& state) {
  RunKernelBench(state, false, NormalizeSpanBody);
}
BENCHMARK(BM_NormalizeSpan_Scalar)->Arg(4096)->Arg(65536);
BENCHMARK(BM_NormalizeSpan_Dispatch)->Arg(4096)->Arg(65536);

// DBSCAN's inner loop: one query point against n points in 8 dimensions
// (dimension-major, as anomaly_detector lays columns out).
void SquaredDistancesBody(size_t n) {
  constexpr size_t kDims = 8;
  const std::vector<double>& col = KernelColumn();
  static std::vector<double> out(kMaxKernelRows);
  const double* cols[kDims];
  for (size_t k = 0; k < kDims; ++k) {
    // Offset views into the shared column stand in for per-metric columns.
    cols[k] = col.data() + k * 16;
  }
  simd::SquaredDistancesToAll(cols, kDims, n, n / 2, out.data());
  benchmark::DoNotOptimize(out.data());
}
void BM_SquaredDistances_Scalar(benchmark::State& state) {
  RunKernelBench(state, true, SquaredDistancesBody);
}
void BM_SquaredDistances_Dispatch(benchmark::State& state) {
  RunKernelBench(state, false, SquaredDistancesBody);
}
BENCHMARK(BM_SquaredDistances_Scalar)->Arg(4096)->Arg(32768);
BENCHMARK(BM_SquaredDistances_Dispatch)->Arg(4096)->Arg(32768);

const char* BuildType() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): records the build type and the
// resolved SIMD ISA in the JSON context block (run_benchmarks.sh refuses
// debug reports without --allow-debug), and answers --print-build-info for
// scripts that want those facts without running anything.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-build-info") == 0) {
      std::printf("build_type=%s simd_isa=%s simd_best_isa=%s\n", BuildType(),
                  simd::IsaName(simd::ActiveIsa()),
                  simd::IsaName(simd::BestSupportedIsa()));
      return 0;
    }
  }
  benchmark::AddCustomContext("dbsherlock_build_type", BuildType());
  benchmark::AddCustomContext("simd_isa", simd::IsaName(simd::ActiveIsa()));
  benchmark::AddCustomContext("simd_best_isa",
                              simd::IsaName(simd::BestSupportedIsa()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
