// Microbenchmarks (google-benchmark): throughput of the core building
// blocks — predicate generation as a function of R (partitions), X (rows)
// and k (attributes), matching the O(k(X+R)) analysis of Section 4.6 —
// plus DBSCAN-based detection and the simulator's tick rate.

#include <benchmark/benchmark.h>

#include "core/anomaly_detector.h"
#include "core/predicate_generator.h"
#include "eval/experiment.h"
#include "simulator/dataset_gen.h"

namespace {

using namespace dbsherlock;

const simulator::GeneratedDataset& SharedDataset() {
  static const simulator::GeneratedDataset* dataset = [] {
    simulator::DatasetGenOptions options;
    options.seed = 42;
    return new simulator::GeneratedDataset(simulator::GenerateAnomalyDataset(
        options, simulator::AnomalyKind::kWorkloadSpike, 60.0));
  }();
  return *dataset;
}

void BM_PredicateGeneration_Partitions(benchmark::State& state) {
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::PredicateGenOptions options;
  options.num_partitions = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = core::GeneratePredicates(ds.data, ds.regions, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.data.num_rows()));
}
BENCHMARK(BM_PredicateGeneration_Partitions)
    ->Arg(125)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000);

void BM_PredicateGeneration_Rows(benchmark::State& state) {
  simulator::DatasetGenOptions options;
  options.seed = 7;
  options.normal_duration_sec = static_cast<double>(state.range(0));
  simulator::GeneratedDataset ds = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kIoSaturation,
      options.normal_duration_sec / 2.0);
  core::PredicateGenOptions gen_options;
  for (auto _ : state) {
    auto result = core::GeneratePredicates(ds.data, ds.regions, gen_options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.data.num_rows()));
}
BENCHMARK(BM_PredicateGeneration_Rows)->Arg(120)->Arg(300)->Arg(600);

// Thread-count sweep of the fused per-attribute loop (1/2/4/8 lanes; the
// speedup relative to Arg(1) measures the parallel efficiency of the
// diagnosis engine on this machine).
void BM_PredicateGeneration_Threads(benchmark::State& state) {
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::PredicateGenOptions options;
  options.parallelism = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = core::GeneratePredicates(ds.data, ds.regions, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.data.num_rows()));
}
BENCHMARK(BM_PredicateGeneration_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// A merged-style repository over all 10 anomaly classes (two source
// datasets per class, kept unmerged so the repository holds 20 models with
// heavily overlapping attributes — the shape that made per-model
// partition-space rebuilding quadratic before PartitionSpaceCache).
const core::ModelRepository& SharedRepository() {
  static const core::ModelRepository* repo = [] {
    auto* r = new core::ModelRepository();
    core::PredicateGenOptions options;
    for (uint64_t round = 0; round < 2; ++round) {
      simulator::DatasetGenOptions gen;
      gen.seed = 1000 + round;
      for (simulator::AnomalyKind kind : simulator::AllAnomalyKinds()) {
        simulator::GeneratedDataset ds =
            simulator::GenerateAnomalyDataset(gen, kind, 60.0);
        r->AddUnmerged(eval::BuildCausalModel(
            ds, simulator::AnomalyKindName(kind), options));
      }
    }
    return r;
  }();
  return *repo;
}

void BM_RepositoryRank(benchmark::State& state) {
  const core::ModelRepository& repo = SharedRepository();
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::PredicateGenOptions options;
  options.parallelism = static_cast<size_t>(state.range(0));
  tsdata::LabeledRows rows = SplitRows(ds.data, ds.regions);
  for (auto _ : state) {
    auto ranked = repo.Rank(ds.data, rows, options, 20.0);
    benchmark::DoNotOptimize(ranked);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(repo.size()));
}
BENCHMARK(BM_RepositoryRank)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The seed's Rank loop: one cache-free ModelConfidence per model, i.e.
// every model rebuilds every referenced attribute's partition space. The
// ratio BM_RepositoryRank_NoCache / BM_RepositoryRank(1) is the
// PartitionSpaceCache win at equal thread count.
void BM_RepositoryRank_NoCache(benchmark::State& state) {
  const core::ModelRepository& repo = SharedRepository();
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::PredicateGenOptions options;
  tsdata::LabeledRows rows = SplitRows(ds.data, ds.regions);
  for (auto _ : state) {
    double sum = 0.0;
    for (const core::CausalModel& m : repo.models()) {
      sum += core::ModelConfidence(m, ds.data, rows, options);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(repo.size()));
}
BENCHMARK(BM_RepositoryRank_NoCache);

void BM_ModelConfidence(benchmark::State& state) {
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::PredicateGenOptions options;
  core::CausalModel model =
      eval::BuildCausalModel(ds, "Workload Spike", options);
  tsdata::LabeledRows rows = SplitRows(ds.data, ds.regions);
  for (auto _ : state) {
    double conf = core::ModelConfidence(model, ds.data, rows, options);
    benchmark::DoNotOptimize(conf);
  }
}
BENCHMARK(BM_ModelConfidence);

void BM_AutomaticAnomalyDetection(benchmark::State& state) {
  const simulator::GeneratedDataset& ds = SharedDataset();
  core::AnomalyDetectorOptions options;
  for (auto _ : state) {
    auto result = core::DetectAnomalies(ds.data, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AutomaticAnomalyDetection);

void BM_SimulatorTick(benchmark::State& state) {
  simulator::ServerSimulator sim(simulator::ServerConfig{},
                                 simulator::MakeTpccWorkload(), 42);
  std::vector<simulator::AnomalyEvent> events;
  for (auto _ : state) {
    simulator::Metrics m = sim.Tick(events);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorTick);

}  // namespace

BENCHMARK_MAIN();
