// Table 2 (Section 8.6): effect of incorporating domain knowledge.
//
// Single causal models (theta = 0.2, one training dataset each, rotated as
// in Figure 7) are constructed twice — with and without the four
// MySQL/Linux rules — and the ratio of correct causes in the top-1 / top-2
// positions is compared.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

struct Accuracy {
  size_t top1 = 0;
  size_t top2 = 0;
  size_t total = 0;
};

Accuracy RunConfiguration(const eval::Corpus& corpus,
                          const core::PredicateGenOptions& options,
                          const core::DomainKnowledge* knowledge) {
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();
  Accuracy acc;
  for (size_t round = 0; round < per_class; ++round) {
    core::ModelRepository repo;
    for (size_t c = 0; c < num_classes; ++c) {
      repo.AddUnmerged(eval::BuildCausalModel(corpus.by_class[c][round],
                                              corpus.ClassName(c), options,
                                              knowledge));
    }
    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t i = 0; i < per_class; ++i) {
        if (i == round) continue;
        eval::RankingOutcome outcome = eval::RankAgainst(
            repo, corpus.by_class[c][i], corpus.ClassName(c), options);
        if (outcome.CorrectInTopK(1)) ++acc.top1;
        if (outcome.CorrectInTopK(2)) ++acc.top2;
        ++acc.total;
      }
    }
  }
  return acc;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  flags.Validate();

  bench::PrintBanner(
      "Table 2", "DBSherlock SIGMOD'16, Section 8.6",
      "Ratio of correct causes for single causal models, with and without "
      "the four MySQL/Linux domain-knowledge rules.");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  eval::Corpus corpus = eval::GenerateCorpus(gen);

  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.2;
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();

  Accuracy with = RunConfiguration(corpus, options, &knowledge);
  Accuracy without = RunConfiguration(corpus, options, nullptr);

  bench::TablePrinter table(
      {"Configuration", "Top-1 cause (%)", "Top-2 causes (%)"},
      {28, 18, 18});
  table.PrintHeader();
  auto pct = [](size_t hits, size_t total) {
    return bench::Pct(100.0 * static_cast<double>(hits) /
                      static_cast<double>(total));
  };
  table.PrintRow({"With Domain Knowledge", pct(with.top1, with.total),
                  pct(with.top2, with.total)});
  table.PrintRow({"Without Domain Knowledge", pct(without.top1, without.total),
                  pct(without.top2, without.total)});
  std::printf("\n(Paper: 85.3%% / 94.8%% with, 82.7%% / 93.2%% without — "
              "domain knowledge helps by ~2-3%%, and accuracy stays high "
              "without it.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
