// Observability overhead check (DESIGN.md §9): the pipeline keeps its
// TRACE_SPAN instrumentation compiled in permanently, so the cost of a
// span while tracing is DISABLED must be negligible. This harness
// measures (a) the raw per-span disabled cost in a tight loop, (b) the
// wall time of a full Explainer::Diagnose with tracing off vs on, and
// (c) the span volume of one diagnosis; from (a) and (c) it bounds the
// disabled-instrumentation share of a diagnosis and fails loudly when
// that bound exceeds the 2% budget.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/explainer.h"
#include "eval/experiment.h"
#include "simulator/dataset_gen.h"

namespace {

using namespace dbsherlock;

double MedianOf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Median wall time of `reps` calls to fn, in microseconds.
template <typename Fn>
double MedianWallUs(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    double t0 = common::Tracer::NowMicros();
    fn();
    times.push_back(common::Tracer::NowMicros() - t0);
  }
  return MedianOf(std::move(times));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int64_t reps = flags.Int("reps", 9, "diagnosis repetitions per mode");
  int64_t span_iters =
      flags.Int("span-iters", 2000000, "tight-loop disabled-span iterations");
  double budget_pct =
      flags.Double("budget", 2.0, "max tolerated disabled overhead, percent");
  flags.Validate();

  bench::PrintBanner("trace_overhead", "DESIGN.md §9",
                     "disabled-tracer overhead bound for one diagnosis");

  // --- (a) raw disabled-span cost ----------------------------------------
  common::Tracer::Global().Disable();
  double span_loop_us = MedianWallUs(5, [&] {
    for (int64_t i = 0; i < span_iters; ++i) {
      TRACE_SPAN("overhead.probe");
    }
  });
  double ns_per_disabled_span = span_loop_us * 1000.0 /
                                static_cast<double>(span_iters);

  // --- workload: the canonical diagnosis --------------------------------
  simulator::DatasetGenOptions gen;
  gen.seed = 42;
  simulator::GeneratedDataset ds = simulator::GenerateAnomalyDataset(
      gen, simulator::AnomalyKind::kWorkloadSpike, 60.0);
  core::Explainer::Options options;
  core::Explainer sherlock(options);
  core::PredicateGenOptions model_options;
  for (simulator::AnomalyKind kind : simulator::AllAnomalyKinds()) {
    simulator::DatasetGenOptions model_gen;
    model_gen.seed = 1000 + static_cast<uint64_t>(kind);
    simulator::GeneratedDataset model_ds =
        simulator::GenerateAnomalyDataset(model_gen, kind, 60.0);
    sherlock.repository().AddUnmerged(eval::BuildCausalModel(
        model_ds, simulator::AnomalyKindName(kind), model_options));
  }
  auto diagnose = [&] {
    core::Explanation e = sherlock.Diagnose(ds.data, ds.regions);
    if (e.predicates.empty()) {
      std::fprintf(stderr, "error: workload produced no predicates\n");
      std::exit(1);
    }
  };
  diagnose();  // warm up caches and the thread pool

  // --- (b) diagnosis wall time, tracing off vs on ------------------------
  common::Tracer::Global().Disable();
  double disabled_us = MedianWallUs(static_cast<int>(reps), diagnose);

  common::Tracer::Global().Enable(1 << 20);
  size_t before = common::Tracer::Global().events_recorded();
  double enabled_us = MedianWallUs(static_cast<int>(reps), diagnose);
  size_t after = common::Tracer::Global().events_recorded();
  common::Tracer::Global().Disable();

  // --- (c) span volume and the overhead bound ----------------------------
  double spans_per_diagnose =
      static_cast<double>(after - before) / static_cast<double>(reps);
  double disabled_overhead_us = spans_per_diagnose * ns_per_disabled_span /
                                1000.0;
  double disabled_overhead_pct = 100.0 * disabled_overhead_us / disabled_us;
  double enabled_overhead_pct =
      100.0 * (enabled_us - disabled_us) / disabled_us;

  std::printf("disabled span cost        %8.2f ns/span\n",
              ns_per_disabled_span);
  std::printf("spans per diagnosis       %8.0f\n", spans_per_diagnose);
  std::printf("diagnose, tracing off     %8.0f us (median of %lld)\n",
              disabled_us, static_cast<long long>(reps));
  std::printf("diagnose, tracing on      %8.0f us (median of %lld)\n",
              enabled_us, static_cast<long long>(reps));
  std::printf("enabled overhead          %8.2f %%  (informational)\n",
              enabled_overhead_pct);
  std::printf("disabled overhead bound   %8.4f %%  (budget %.1f %%)\n",
              disabled_overhead_pct, budget_pct);

  if (disabled_overhead_pct > budget_pct) {
    std::printf("FAIL: disabled instrumentation exceeds the %.1f%% budget\n",
                budget_pct);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
