#ifndef DBSHERLOCK_BENCH_BENCH_UTIL_H_
#define DBSHERLOCK_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace dbsherlock::bench {

/// "release" when the binary was compiled with NDEBUG, "debug" otherwise.
/// Debug numbers are not comparable across PRs; run_benchmarks.sh refuses
/// to record them without --allow-debug.
const char* BuildType();

/// {"build_type", "simd_isa", "simd_best_isa"} — embedded as "build_info"
/// in every BENCH_*.json so a report always says what produced it.
common::JsonValue BuildInfoJson();

/// Minimal --flag=value / --flag value parser shared by the experiment
/// binaries. Unknown flags abort with a usage message listing the
/// registered flags.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// Registers a flag and returns its value (or the default). Call these
  /// before Validate().
  int64_t Int(const std::string& name, int64_t default_value,
              const std::string& help);
  double Double(const std::string& name, double default_value,
                const std::string& help);
  std::string String(const std::string& name, std::string default_value,
                     const std::string& help);

  /// Aborts (exit 2) if unrecognized flags were passed; prints usage on
  /// --help.
  void Validate() const;

 private:
  struct Registered {
    std::string name;
    std::string help;
    std::string default_str;
  };

  const std::string* Lookup(const std::string& name);

  std::string program_;
  std::vector<std::pair<std::string, std::string>> args_;  // name -> value
  std::vector<bool> consumed_;
  std::vector<Registered> registered_;
  bool help_requested_ = false;
};

/// Fixed-width experiment table writer: prints a header row then data rows,
/// matching the plain-text layout used across the bench binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns,
                        std::vector<int> widths = {});

  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;

 private:
  std::vector<std::string> columns_;
  std::vector<int> widths_;
};

/// "12.3" style fixed-precision formatting helpers.
std::string Pct(double value, int precision = 1);
std::string Num(double value, int precision = 2);

/// Prints the standard experiment banner (figure/table id + description).
void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& description);

}  // namespace dbsherlock::bench

#endif  // DBSHERLOCK_BENCH_BENCH_UTIL_H_
