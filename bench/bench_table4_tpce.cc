// Table 4 (Appendix A): accuracy for TPC-C vs TPC-E workloads.
//
// The merged-model protocol of Section 8.5 (5 training datasets per class,
// repeated rounds) is run once on the TPC-C corpus and once on a corpus
// generated under the read-heavy TPC-E-like mix; top-1 / top-2 accuracy is
// compared.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

struct Accuracy {
  double top1 = 0.0;
  double top2 = 0.0;
};

Accuracy RunWorkload(const simulator::WorkloadSpec& workload, uint64_t seed,
                     int64_t rounds) {
  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  gen.workload = workload;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();
  const size_t train_count = 5;

  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();

  common::Pcg32 rng(seed, 0x79c3);
  size_t top1 = 0, top2 = 0, total = 0;
  for (int64_t round = 0; round < rounds; ++round) {
    std::vector<std::vector<size_t>> train =
        eval::RandomTrainSplit(num_classes, per_class, train_count, &rng);
    core::ModelRepository repo =
        eval::BuildMergedRepository(corpus, train, options, &knowledge);
    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t idx : eval::TestIndices(train[c], per_class)) {
        eval::RankingOutcome outcome = eval::RankAgainst(
            repo, corpus.by_class[c][idx], corpus.ClassName(c), options);
        if (outcome.CorrectInTopK(1)) ++top1;
        if (outcome.CorrectInTopK(2)) ++top2;
        ++total;
      }
    }
  }
  Accuracy acc;
  acc.top1 = 100.0 * static_cast<double>(top1) / static_cast<double>(total);
  acc.top2 = 100.0 * static_cast<double>(top2) / static_cast<double>(total);
  return acc;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  int64_t rounds = flags.Int("rounds", 20, "random train/test rounds");
  flags.Validate();

  bench::PrintBanner(
      "Table 4", "DBSherlock SIGMOD'16, Appendix A",
      "Merged-causal-model accuracy for the TPC-C vs the read-heavy "
      "TPC-E-like workload.");

  Accuracy tpcc = RunWorkload(simulator::MakeTpccWorkload(), seed, rounds);
  Accuracy tpce = RunWorkload(simulator::MakeTpceWorkload(), seed + 1, rounds);

  bench::TablePrinter table(
      {"Type of Workload", "Top-1 cause (%)", "Top-2 causes (%)"},
      {20, 18, 18});
  table.PrintHeader();
  table.PrintRow({"TPC-C", bench::Pct(tpcc.top1), bench::Pct(tpcc.top2)});
  table.PrintRow({"TPC-E", bench::Pct(tpce.top1), bench::Pct(tpce.top2)});
  std::printf("\n(Paper: TPC-C 98.0%% / 99.7%%, TPC-E 92.5%% / 99.6%% — "
              "TPC-E's read-heavy profile makes top-1 slightly harder.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
