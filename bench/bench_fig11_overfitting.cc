// Figure 11 (Appendix B): over-fitting and merged causal models.
//
// Leave-one-out cross validation: per class, the models from 10 datasets
// are merged and the result is evaluated on the 11th, rotated. Compared
// against the 5-dataset merged models of Figure 8 on (a) absolute
// confidence of the correct model, (b) margin of confidence, and (c)
// top-1/top-2 accuracy of the 10-dataset models.

#include <cstdio>
#include <limits>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  int64_t rounds5 = flags.Int("rounds5", 20, "rounds for 5-dataset models");
  flags.Validate();

  bench::PrintBanner(
      "Figure 11", "DBSherlock SIGMOD'16, Appendix B",
      "Merged models from 10 datasets (leave-one-out) vs 5 datasets: "
      "confidence, margin, and top-k accuracy.");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();

  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();
  common::Pcg32 rng(seed, 0x0f11);

  // --- 10-dataset leave-one-out ------------------------------------------
  std::vector<double> conf10(num_classes, 0.0), margin10(num_classes, 0.0);
  std::vector<size_t> top1_10(num_classes, 0), top2_10(num_classes, 0);
  for (size_t test_idx = 0; test_idx < per_class; ++test_idx) {
    std::vector<std::vector<size_t>> train(num_classes);
    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t i = 0; i < per_class; ++i) {
        if (i != test_idx) train[c].push_back(i);
      }
    }
    core::ModelRepository repo =
        eval::BuildMergedRepository(corpus, train, options, &knowledge);
    for (size_t c = 0; c < num_classes; ++c) {
      const simulator::GeneratedDataset& test = corpus.by_class[c][test_idx];
      eval::RankingOutcome outcome =
          eval::RankAgainst(repo, test, corpus.ClassName(c), options);
      margin10[c] += outcome.margin;
      if (outcome.CorrectInTopK(1)) ++top1_10[c];
      if (outcome.CorrectInTopK(2)) ++top2_10[c];
      const core::CausalModel* correct = repo.Find(corpus.ClassName(c));
      if (correct != nullptr) {
        conf10[c] += eval::ConfidenceOn(*correct, test, options);
      }
    }
  }

  // --- 5-dataset random splits (Figure 8 protocol) ------------------------
  std::vector<double> conf5(num_classes, 0.0), margin5(num_classes, 0.0);
  std::vector<size_t> count5(num_classes, 0);
  for (int64_t round = 0; round < rounds5; ++round) {
    std::vector<std::vector<size_t>> train =
        eval::RandomTrainSplit(num_classes, per_class, 5, &rng);
    core::ModelRepository repo =
        eval::BuildMergedRepository(corpus, train, options, &knowledge);
    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t idx : eval::TestIndices(train[c], per_class)) {
        const simulator::GeneratedDataset& test = corpus.by_class[c][idx];
        eval::RankingOutcome outcome =
            eval::RankAgainst(repo, test, corpus.ClassName(c), options);
        margin5[c] += outcome.margin;
        const core::CausalModel* correct = repo.Find(corpus.ClassName(c));
        if (correct != nullptr) {
          conf5[c] += eval::ConfidenceOn(*correct, test, options);
        }
        ++count5[c];
      }
    }
  }

  std::printf("\n(a,b) Confidence and margin: merged from 5 vs 10 datasets\n");
  bench::TablePrinter tab({"Test case", "Conf 5 (%)", "Conf 10 (%)",
                           "Margin 5 (%)", "Margin 10 (%)"},
                          {24, 12, 13, 14, 15});
  tab.PrintHeader();
  for (size_t c = 0; c < num_classes; ++c) {
    double n5 = static_cast<double>(count5[c]);
    double n10 = static_cast<double>(per_class);
    tab.PrintRow({corpus.ClassName(c), bench::Pct(conf5[c] / n5),
                  bench::Pct(conf10[c] / n10), bench::Pct(margin5[c] / n5),
                  bench::Pct(margin10[c] / n10)});
  }

  std::printf("\n(c) Accuracy of 10-dataset merged models (leave-one-out)\n");
  bench::TablePrinter tc({"Test case", "Top-1 shown (%)", "Top-2 shown (%)"},
                         {24, 17, 17});
  tc.PrintHeader();
  for (size_t c = 0; c < num_classes; ++c) {
    double n = static_cast<double>(per_class);
    tc.PrintRow({corpus.ClassName(c),
                 bench::Pct(100.0 * static_cast<double>(top1_10[c]) / n),
                 bench::Pct(100.0 * static_cast<double>(top2_10[c]) / n)});
  }
  std::printf("\n(Paper: confidence rises slightly with 10 datasets but the "
              "margin can shrink — merging beyond what is needed stops "
              "helping, akin to over-fitting.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
