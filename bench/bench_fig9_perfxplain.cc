// Figure 9 (Section 8.4): DBSherlock predicates vs PerfXplain.
//
// For each anomaly class, 10 of the 11 datasets train and the remaining
// one tests (rotated so every dataset is the test set once). DBSherlock
// merges the causal models built from the training datasets and evaluates
// the merged model's predicates on the test tuples; PerfXplain trains on
// pairs sampled from the training datasets (2,000 samples, weight 0.8, 2
// predicates — the paper's best configuration) and flags test tuples
// against its learned comparative predicates. We report average precision,
// recall and F1 per class.

#include <cstdio>
#include <vector>

#include "baselines/perfxplain.h"
#include "bench_util.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  int64_t samples = flags.Int("perfxplain_samples", 2000,
                              "pairs sampled by PerfXplain");
  int64_t num_predicates =
      flags.Int("perfxplain_predicates", 2, "PerfXplain predicate count");
  flags.Validate();

  bench::PrintBanner(
      "Figure 9", "DBSherlock SIGMOD'16, Section 8.4",
      "Average precision / recall / F1 of predicates: DBSherlock vs a "
      "PerfXplain reimplementation, leave-one-out per anomaly class.");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();

  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;  // merged-model setting
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();

  bench::TablePrinter table({"Test case", "PX prec", "DBS prec", "PX rec",
                             "DBS rec", "PX F1", "DBS F1"},
                            {24, 10, 10, 10, 10, 10, 10});
  table.PrintHeader();

  double dbs_f1_total = 0.0, px_f1_total = 0.0, max_gain = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    eval::PredicateAccuracy dbs_sum, px_sum;
    for (size_t test_idx = 0; test_idx < per_class; ++test_idx) {
      const simulator::GeneratedDataset& test = corpus.by_class[c][test_idx];

      // --- DBSherlock: merge models from the 10 training datasets -------
      core::CausalModel merged;
      bool first = true;
      for (size_t i = 0; i < per_class; ++i) {
        if (i == test_idx) continue;
        core::CausalModel next =
            eval::BuildCausalModel(corpus.by_class[c][i], corpus.ClassName(c),
                                   options, &knowledge);
        if (first) {
          merged = std::move(next);
          first = false;
        } else {
          auto m = core::MergeCausalModels(merged, next);
          if (m.ok() && !m->predicates.empty()) merged = std::move(*m);
        }
      }
      eval::PredicateAccuracy dbs = eval::EvaluatePredicates(
          merged.predicates, test.data, test.regions);
      dbs_sum.precision += dbs.precision;
      dbs_sum.recall += dbs.recall;
      dbs_sum.f1 += dbs.f1;

      // --- PerfXplain: pairs sampled across the same 10 training --------
      // datasets (the paper's setup).
      std::vector<baselines::PerfXplain::LabeledDataset> train_sets;
      for (size_t i = 0; i < per_class; ++i) {
        if (i == test_idx) continue;
        train_sets.push_back(
            {&corpus.by_class[c][i].data, &corpus.by_class[c][i].regions});
      }
      baselines::PerfXplain::Options px_options;
      px_options.num_samples = static_cast<size_t>(samples);
      px_options.num_predicates = static_cast<int>(num_predicates);
      px_options.seed = seed + test_idx;
      baselines::PerfXplain px(px_options);
      eval::PredicateAccuracy pxa;
      if (px.TrainOnMany(train_sets).ok()) {
        pxa = eval::EvaluateFlags(px.FlagRows(test.data), test.data,
                                  test.regions);
      }
      px_sum.precision += pxa.precision;
      px_sum.recall += pxa.recall;
      px_sum.f1 += pxa.f1;
    }

    double n = static_cast<double>(per_class);
    table.PrintRow({corpus.ClassName(c),
                    bench::Pct(100.0 * px_sum.precision / n),
                    bench::Pct(100.0 * dbs_sum.precision / n),
                    bench::Pct(100.0 * px_sum.recall / n),
                    bench::Pct(100.0 * dbs_sum.recall / n),
                    bench::Pct(100.0 * px_sum.f1 / n),
                    bench::Pct(100.0 * dbs_sum.f1 / n)});
    dbs_f1_total += 100.0 * dbs_sum.f1 / n;
    px_f1_total += 100.0 * px_sum.f1 / n;
    max_gain = std::max(max_gain, 100.0 * (dbs_sum.f1 - px_sum.f1) / n);
  }

  double k = static_cast<double>(num_classes);
  std::printf("\nAverage F1: PerfXplain %.1f%%, DBSherlock %.1f%% "
              "(gain %.1f points on average, up to %.1f).\n",
              px_f1_total / k, dbs_f1_total / k,
              (dbs_f1_total - px_f1_total) / k, max_gain);
  std::printf("(Paper: DBSherlock beats PerfXplain by 28%% F1 on average, "
              "up to 55%%.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
