// Table 5 (Appendix C): robustness against input errors and rare anomalies.
//
// Using the leave-one-out merged models of Appendix B, the test dataset's
// abnormal region is perturbed before diagnosis: extended by 10%, shortened
// by 10%, or replaced by a random two-second slice of the true region. The
// ratio of correct causes in the top-1 / top-2 positions is reported.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  int64_t two_second_repeats =
      flags.Int("two_second_repeats", 10, "random 2-second slices per test");
  flags.Validate();

  bench::PrintBanner(
      "Table 5", "DBSherlock SIGMOD'16, Appendix C",
      "Robustness to imperfect abnormal regions: original, +/-10% width, "
      "and a random two-second slice of the anomaly.");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();

  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();
  common::Pcg32 rng(seed, 0x7ab1e5);

  struct Row {
    std::string label;
    size_t top1 = 0;
    size_t top2 = 0;
    size_t total = 0;
  };
  std::vector<Row> rows = {{"Original", 0, 0, 0},
                           {"10% Longer", 0, 0, 0},
                           {"10% Shorter", 0, 0, 0},
                           {"Two Seconds", 0, 0, 0}};

  for (size_t test_idx = 0; test_idx < per_class; ++test_idx) {
    std::vector<std::vector<size_t>> train(num_classes);
    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t i = 0; i < per_class; ++i) {
        if (i != test_idx) train[c].push_back(i);
      }
    }
    core::ModelRepository repo =
        eval::BuildMergedRepository(corpus, train, options, &knowledge);

    for (size_t c = 0; c < num_classes; ++c) {
      simulator::GeneratedDataset test = corpus.by_class[c][test_idx];
      const tsdata::TimeRange truth = test.regions.abnormal.ranges()[0];

      auto evaluate = [&](Row* row, const tsdata::RegionSpec& abnormal,
                          size_t repeats = 1) {
        for (size_t r = 0; r < repeats; ++r) {
          tsdata::RegionSpec region = abnormal;
          if (repeats > 1) {
            // Random two-second slice of the true anomaly.
            double start =
                truth.start +
                rng.NextDouble() * std::max(0.0, truth.length() - 2.0);
            region = tsdata::RegionSpec({{start, start + 2.0}});
          }
          simulator::GeneratedDataset perturbed = test;
          perturbed.regions.abnormal = region;
          eval::RankingOutcome outcome = eval::RankAgainst(
              repo, perturbed, corpus.ClassName(c), options);
          if (outcome.CorrectInTopK(1)) ++row->top1;
          if (outcome.CorrectInTopK(2)) ++row->top2;
          ++row->total;
        }
      };

      evaluate(&rows[0], test.regions.abnormal);
      evaluate(&rows[1], test.regions.abnormal.ScaledAroundCenter(1.1));
      evaluate(&rows[2], test.regions.abnormal.ScaledAroundCenter(0.9));
      evaluate(&rows[3], test.regions.abnormal,
               static_cast<size_t>(two_second_repeats));
    }
  }

  bench::TablePrinter table({"Width of Abnormal Region", "Top-1 cause (%)",
                             "Top-2 causes (%)"},
                            {28, 18, 18});
  table.PrintHeader();
  for (const Row& row : rows) {
    double n = static_cast<double>(row.total);
    table.PrintRow({row.label,
                    bench::Pct(100.0 * static_cast<double>(row.top1) / n),
                    bench::Pct(100.0 * static_cast<double>(row.top2) / n)});
  }
  std::printf("\n(Paper: 94.6/99.1 original, 95.5/100 longer, 95.5/97.3 "
              "shorter, 74.6/86.4 two seconds — accuracy barely moves for "
              "+/-10%% and stays useful even for 2-second anomalies.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
