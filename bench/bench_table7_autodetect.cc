// Table 7 (Appendix E): accuracy with automatic anomaly detection.
//
// Ten-minute datasets (long normal region) are generated per class; merged
// models are built leave-one-out from ground-truth regions, and the held-
// out dataset is diagnosed three ways: with the manually specified
// (ground-truth) region, with DBSherlock's automatic detector (Section 7),
// and with PerfAugur's robust interval search supplying the region.

#include <cstdio>
#include <vector>

#include "baselines/perfaugur.h"
#include "bench_util.h"
#include "core/anomaly_detector.h"
#include "core/domain_knowledge.h"
#include "eval/experiment.h"

namespace {

using namespace dbsherlock;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed =
      static_cast<uint64_t>(flags.Int("seed", 42, "corpus generation seed"));
  int64_t rotations = flags.Int(
      "rotations", 3, "leave-one-out rotations to run (paper: all 11)");
  double normal_sec =
      flags.Double("normal_sec", 600.0, "normal-activity duration, seconds");
  flags.Validate();

  bench::PrintBanner(
      "Table 7", "DBSherlock SIGMOD'16, Appendix E",
      "Top-k accuracy when the abnormal region comes from manual selection, "
      "DBSherlock's automatic detector, or PerfAugur (10-minute datasets).");

  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  gen.normal_duration_sec = normal_sec;
  eval::Corpus corpus = eval::GenerateCorpus(gen);
  const size_t num_classes = corpus.num_classes();
  const size_t per_class = corpus.by_class[0].size();

  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  core::DomainKnowledge knowledge = core::DomainKnowledge::MySqlLinuxDefaults();
  core::AnomalyDetectorOptions detector_options;
  baselines::PerfAugurOptions perfaugur_options;

  struct Row {
    std::string label;
    size_t top1 = 0, top2 = 0, total = 0;
  };
  std::vector<Row> rows = {{"Manual Anomaly Detection"},
                           {"Automatic Anomaly Detection"},
                           {"PerfAugur"}};

  size_t max_rot = std::min<size_t>(per_class,
                                    static_cast<size_t>(rotations));
  for (size_t test_idx = 0; test_idx < max_rot; ++test_idx) {
    std::vector<std::vector<size_t>> train(num_classes);
    for (size_t c = 0; c < num_classes; ++c) {
      for (size_t i = 0; i < per_class; ++i) {
        if (i != test_idx) train[c].push_back(i);
      }
    }
    core::ModelRepository repo =
        eval::BuildMergedRepository(corpus, train, options, &knowledge);

    for (size_t c = 0; c < num_classes; ++c) {
      const simulator::GeneratedDataset& truth = corpus.by_class[c][test_idx];

      auto score = [&](Row* row, const tsdata::DiagnosisRegions& regions) {
        if (regions.abnormal.empty()) {
          ++row->total;  // nothing detected counts as a miss
          return;
        }
        simulator::GeneratedDataset test = truth;
        test.regions = regions;
        eval::RankingOutcome outcome =
            eval::RankAgainst(repo, test, corpus.ClassName(c), options);
        if (outcome.CorrectInTopK(1)) ++row->top1;
        if (outcome.CorrectInTopK(2)) ++row->top2;
        ++row->total;
      };

      tsdata::DiagnosisRegions manual;
      manual.abnormal = truth.regions.abnormal;
      score(&rows[0], manual);

      core::DetectionResult detected =
          core::DetectAnomalies(truth.data, detector_options);
      score(&rows[1], core::DetectionToRegions(detected, truth.data,
                                               detector_options));

      auto pa = baselines::PerfAugurDetect(truth.data, perfaugur_options);
      tsdata::DiagnosisRegions pa_regions;
      if (pa.ok()) pa_regions.abnormal = pa->abnormal;
      score(&rows[2], pa_regions);
    }
  }

  bench::TablePrinter table(
      {"Detection Strategy", "Top-1 cause (%)", "Top-2 causes (%)"},
      {30, 18, 18});
  table.PrintHeader();
  for (const Row& row : rows) {
    double n = static_cast<double>(row.total);
    table.PrintRow({row.label,
                    bench::Pct(100.0 * static_cast<double>(row.top1) / n),
                    bench::Pct(100.0 * static_cast<double>(row.top2) / n)});
  }
  std::printf("\n(Paper: manual 94.6/99.1, automatic 90.0/95.5, PerfAugur "
              "77.3/88.2 — our detector loses little vs manual and beats "
              "PerfAugur's regions.)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
