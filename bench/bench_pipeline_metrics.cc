// Metrics-snapshot harness for run_benchmarks.sh --with-metrics: runs one
// canonical pipeline pass — automatic detection, model-ranked diagnosis,
// and a short hostile streaming segment — with tracing on, then emits the
// process metrics snapshot plus the per-span stage summary. With
// --merge-into=BENCH_micro.json the two objects are embedded into an
// existing google-benchmark JSON report (keys "pipeline_metrics" and
// "stage_summary"), so one artifact carries both the timing rows and the
// counters behind them; otherwise they are written to --out as a
// standalone JSON document.

#include <cstdio>
#include <limits>
#include <string>

#include "bench_util.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/explainer.h"
#include "core/streaming_monitor.h"
#include "eval/experiment.h"
#include "simulator/dataset_gen.h"

namespace {

using namespace dbsherlock;

common::Result<std::string> ReadFileToString(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return common::Status::IoError("cannot read " + path);
  }
  std::string content;
  char buffer[1 << 14];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(f);
  return content;
}

common::Status WriteStringToFile(const std::string& path,
                                 const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return common::Status::IoError("cannot write " + path);
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return common::Status::OK();
}

/// One canonical pass over the full pipeline, chosen to touch every
/// instrumented subsystem: detector, predicate generator, partition-space
/// cache, model ranking, parallel pool, and the streaming monitor's
/// hostile-row counters.
void RunPipeline() {
  simulator::DatasetGenOptions gen;
  gen.seed = 42;
  simulator::GeneratedDataset ds = simulator::GenerateAnomalyDataset(
      gen, simulator::AnomalyKind::kWorkloadSpike, 60.0);

  core::Explainer::Options explainer_options;
  core::Explainer sherlock(explainer_options);
  core::PredicateGenOptions model_options;
  for (simulator::AnomalyKind kind : simulator::AllAnomalyKinds()) {
    simulator::DatasetGenOptions model_gen;
    model_gen.seed = 1000 + static_cast<uint64_t>(kind);
    simulator::GeneratedDataset model_ds =
        simulator::GenerateAnomalyDataset(model_gen, kind, 60.0);
    sherlock.repository().AddUnmerged(eval::BuildCausalModel(
        model_ds, simulator::AnomalyKindName(kind), model_options));
  }

  core::DetectionResult detected;
  core::Explanation automatic = sherlock.DiagnoseAuto(ds.data, &detected);
  core::Explanation labeled = sherlock.Diagnose(ds.data, ds.regions);
  std::printf("pipeline: %zu predicates (labeled), %zu causes, "
              "auto-detected %zu region(s)\n",
              labeled.predicates.size(), labeled.causes.size(),
              detected.abnormal.ranges().size());

  // Short streaming segment with hostile rows: a late arrival, a
  // duplicate, and a non-finite timestamp, so the drop counters in the
  // snapshot are non-zero by construction.
  tsdata::Schema schema({{"latency", tsdata::AttributeKind::kNumeric},
                         {"cpu", tsdata::AttributeKind::kNumeric}});
  core::StreamingMonitor::Options monitor_options;
  monitor_options.warmup_rows = 1000;  // no detection: this probes ingest
  core::StreamingMonitor monitor(schema, monitor_options);
  common::Pcg32 rng(7);
  for (int t = 0; t < 120; ++t) {
    monitor.Append(t, {10.0 + rng.NextGaussian(0.0, 1.5),
                       40.0 + rng.NextGaussian(0.0, 2.0)});
  }
  monitor.Append(50.0, {10.0, 40.0});   // late
  monitor.Append(119.0, {10.0, 40.0});  // duplicate of the newest row
  monitor.Append(std::numeric_limits<double>::quiet_NaN(), {10.0, 40.0});
  std::printf("pipeline: streaming window %zu rows, dropped %zu late + %zu "
              "duplicate + %zu non-finite\n",
              monitor.window_size(), monitor.late_rows_dropped(),
              monitor.duplicate_rows_dropped(),
              monitor.non_finite_rows_dropped());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string merge_into = flags.String(
      "merge-into", "",
      "existing benchmark JSON report to embed the snapshot into");
  std::string out = flags.String("out", "BENCH_pipeline_metrics.json",
                                 "standalone output (without --merge-into)");
  flags.Validate();

  bench::PrintBanner("pipeline_metrics", "DESIGN.md §9",
                     "metrics + stage-summary snapshot of one pipeline pass");

  common::Tracer::Global().Enable(1 << 18);
  RunPipeline();
  common::Tracer::Global().Disable();

  common::JsonValue metrics = common::MetricsRegistry::Global().SnapshotJson();
  common::JsonValue stages = common::Tracer::Global().SummaryJson();

  if (!merge_into.empty()) {
    auto text = ReadFileToString(merge_into);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
      return 1;
    }
    auto report = common::ParseJson(*text);
    if (!report.ok() || !report->is_object()) {
      std::fprintf(stderr, "error: %s is not a JSON object report\n",
                   merge_into.c_str());
      return 1;
    }
    report->as_object()["pipeline_metrics"] = std::move(metrics);
    report->as_object()["stage_summary"] = std::move(stages);
    common::Status status = WriteStringToFile(merge_into, report->Dump(2));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("embedded pipeline_metrics + stage_summary into %s\n",
                merge_into.c_str());
    return 0;
  }

  common::JsonValue::Object root;
  root["pipeline_metrics"] = std::move(metrics);
  root["stage_summary"] = std::move(stages);
  root["build_info"] = bench::BuildInfoJson();
  common::Status status =
      WriteStringToFile(out, common::JsonValue(std::move(root)).Dump(2));
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
