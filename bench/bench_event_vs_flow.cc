// Cross-validation of the two simulator fidelities (DESIGN.md's simulator
// ablation): for each anomaly class both engines support, compare the
// anomaly/normal ratio of that class's signature metric between the
// flow-level ServerSimulator (queueing formulas; used to regenerate the
// paper's corpus) and the transaction-level EventSimulator (every
// transaction executed under 2PL). Matching directions — and roughly
// matching factors — show the flow model's signatures are not artifacts of
// its formulas.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "eval/experiment.h"
#include "simulator/dataset_gen.h"
#include "simulator/event_sim.h"

namespace {

using namespace dbsherlock;

/// Mean of `attribute` over [from, to) in a dataset.
double AvgAttr(const tsdata::Dataset& data, const std::string& attribute,
               double from, double to) {
  auto col = data.ColumnByName(attribute);
  if (!col.ok()) return 0.0;
  std::vector<double> values;
  for (size_t row : data.RowsInTimeRange(from, to)) {
    values.push_back((*col)->numeric(row));
  }
  return common::Mean(values);
}

/// anomaly/normal ratio of one attribute (normal: [5,55), anomaly: [70,115)
/// for a 60..120 anomaly window).
double Ratio(const tsdata::Dataset& data, const std::string& attribute) {
  double normal = AvgAttr(data, attribute, 5.0, 55.0);
  double anomaly = AvgAttr(data, attribute, 70.0, 115.0);
  return normal > 1e-9 ? anomaly / normal : 0.0;
}

struct Case {
  simulator::AnomalyKind kind;
  /// Attribute names in the flow / event schemas (they differ slightly).
  std::string flow_attribute;
  std::string event_attribute;
};

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42, "RNG seed"));
  flags.Validate();

  bench::PrintBanner(
      "Simulator cross-validation", "repo-specific (DESIGN.md)",
      "Signature-metric anomaly/normal ratios: flow-level queueing model "
      "vs transaction-level discrete-event engine.");

  const std::vector<Case> cases = {
      {simulator::AnomalyKind::kLockContention, "lock_wait_time_ms",
       "lock_wait_time_ms"},
      {simulator::AnomalyKind::kCpuSaturation, "avg_latency_ms",
       "avg_latency_ms"},
      {simulator::AnomalyKind::kNetworkCongestion, "avg_latency_ms",
       "avg_latency_ms"},
      {simulator::AnomalyKind::kIoSaturation, "disk_util", "disk_util"},
      {simulator::AnomalyKind::kWorkloadSpike, "throughput_tps",
       "throughput_tps"},
  };

  bench::TablePrinter table({"Anomaly", "Signature metric", "Flow ratio",
                             "Event ratio", "Direction"},
                            {22, 20, 12, 13, 11});
  table.PrintHeader();

  size_t agree = 0;
  for (const Case& c : cases) {
    // Flow model: the paper-style dataset generator (anomaly at [60,120)).
    simulator::DatasetGenOptions gen;
    gen.seed = seed;
    simulator::GeneratedDataset flow =
        simulator::GenerateAnomalyDataset(gen, c.kind, 60.0);
    double flow_ratio = Ratio(flow.data, c.flow_attribute);

    // Event model: same window. The flow model's disk_util attribute is in
    // percent; the event model's in [0,1] — ratios are unit-free.
    simulator::EventSimulator event_sim(simulator::EventSimConfig{},
                                        seed + 1);
    simulator::AnomalyEvent ev;
    ev.kind = c.kind;
    ev.start_sec = 60.0;
    ev.duration_sec = 60.0;
    tsdata::Dataset event_data =
        simulator::EventMetricsToDataset(event_sim.Run(120.0, {ev}));
    double event_ratio = Ratio(event_data, c.event_attribute);

    bool same_direction = (flow_ratio > 1.0) == (event_ratio > 1.0);
    if (same_direction) ++agree;
    table.PrintRow({simulator::AnomalyKindName(c.kind), c.flow_attribute,
                    bench::Num(flow_ratio), bench::Num(event_ratio),
                    same_direction ? "agree" : "DISAGREE"});
  }
  std::printf("\n%zu of %zu signature directions agree between the two "
              "engines.\n",
              agree, cases.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
