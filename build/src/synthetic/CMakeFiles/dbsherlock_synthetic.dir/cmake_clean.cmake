file(REMOVE_RECURSE
  "CMakeFiles/dbsherlock_synthetic.dir/sem.cc.o"
  "CMakeFiles/dbsherlock_synthetic.dir/sem.cc.o.d"
  "libdbsherlock_synthetic.a"
  "libdbsherlock_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsherlock_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
