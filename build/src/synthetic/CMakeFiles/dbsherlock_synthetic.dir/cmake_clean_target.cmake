file(REMOVE_RECURSE
  "libdbsherlock_synthetic.a"
)
