# Empty dependencies file for dbsherlock_synthetic.
# This may be replaced when dependencies are built.
