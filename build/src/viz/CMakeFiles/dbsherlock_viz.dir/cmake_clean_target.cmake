file(REMOVE_RECURSE
  "libdbsherlock_viz.a"
)
