# Empty dependencies file for dbsherlock_viz.
# This may be replaced when dependencies are built.
