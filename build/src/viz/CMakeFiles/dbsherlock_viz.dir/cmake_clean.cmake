file(REMOVE_RECURSE
  "CMakeFiles/dbsherlock_viz.dir/chart.cc.o"
  "CMakeFiles/dbsherlock_viz.dir/chart.cc.o.d"
  "CMakeFiles/dbsherlock_viz.dir/incident_report.cc.o"
  "CMakeFiles/dbsherlock_viz.dir/incident_report.cc.o.d"
  "libdbsherlock_viz.a"
  "libdbsherlock_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsherlock_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
