
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/perfaugur.cc" "src/baselines/CMakeFiles/dbsherlock_baselines.dir/perfaugur.cc.o" "gcc" "src/baselines/CMakeFiles/dbsherlock_baselines.dir/perfaugur.cc.o.d"
  "/root/repo/src/baselines/perfxplain.cc" "src/baselines/CMakeFiles/dbsherlock_baselines.dir/perfxplain.cc.o" "gcc" "src/baselines/CMakeFiles/dbsherlock_baselines.dir/perfxplain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbsherlock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
