file(REMOVE_RECURSE
  "CMakeFiles/dbsherlock_baselines.dir/perfaugur.cc.o"
  "CMakeFiles/dbsherlock_baselines.dir/perfaugur.cc.o.d"
  "CMakeFiles/dbsherlock_baselines.dir/perfxplain.cc.o"
  "CMakeFiles/dbsherlock_baselines.dir/perfxplain.cc.o.d"
  "libdbsherlock_baselines.a"
  "libdbsherlock_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsherlock_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
