# Empty compiler generated dependencies file for dbsherlock_baselines.
# This may be replaced when dependencies are built.
