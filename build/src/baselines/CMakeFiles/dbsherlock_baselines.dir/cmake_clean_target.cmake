file(REMOVE_RECURSE
  "libdbsherlock_baselines.a"
)
