file(REMOVE_RECURSE
  "libdbsherlock_simulator.a"
)
