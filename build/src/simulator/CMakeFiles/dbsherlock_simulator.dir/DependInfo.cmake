
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulator/anomaly.cc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/anomaly.cc.o" "gcc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/anomaly.cc.o.d"
  "/root/repo/src/simulator/dataset_gen.cc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/dataset_gen.cc.o" "gcc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/dataset_gen.cc.o.d"
  "/root/repo/src/simulator/event_sim.cc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/event_sim.cc.o" "gcc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/event_sim.cc.o.d"
  "/root/repo/src/simulator/metric_schema.cc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/metric_schema.cc.o" "gcc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/metric_schema.cc.o.d"
  "/root/repo/src/simulator/resources.cc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/resources.cc.o" "gcc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/resources.cc.o.d"
  "/root/repo/src/simulator/server_sim.cc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/server_sim.cc.o" "gcc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/server_sim.cc.o.d"
  "/root/repo/src/simulator/workload.cc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/workload.cc.o" "gcc" "src/simulator/CMakeFiles/dbsherlock_simulator.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbsherlock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
