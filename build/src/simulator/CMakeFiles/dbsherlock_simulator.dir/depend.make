# Empty dependencies file for dbsherlock_simulator.
# This may be replaced when dependencies are built.
