file(REMOVE_RECURSE
  "CMakeFiles/dbsherlock_simulator.dir/anomaly.cc.o"
  "CMakeFiles/dbsherlock_simulator.dir/anomaly.cc.o.d"
  "CMakeFiles/dbsherlock_simulator.dir/dataset_gen.cc.o"
  "CMakeFiles/dbsherlock_simulator.dir/dataset_gen.cc.o.d"
  "CMakeFiles/dbsherlock_simulator.dir/event_sim.cc.o"
  "CMakeFiles/dbsherlock_simulator.dir/event_sim.cc.o.d"
  "CMakeFiles/dbsherlock_simulator.dir/metric_schema.cc.o"
  "CMakeFiles/dbsherlock_simulator.dir/metric_schema.cc.o.d"
  "CMakeFiles/dbsherlock_simulator.dir/resources.cc.o"
  "CMakeFiles/dbsherlock_simulator.dir/resources.cc.o.d"
  "CMakeFiles/dbsherlock_simulator.dir/server_sim.cc.o"
  "CMakeFiles/dbsherlock_simulator.dir/server_sim.cc.o.d"
  "CMakeFiles/dbsherlock_simulator.dir/workload.cc.o"
  "CMakeFiles/dbsherlock_simulator.dir/workload.cc.o.d"
  "libdbsherlock_simulator.a"
  "libdbsherlock_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsherlock_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
