# Empty dependencies file for dbsherlock_common.
# This may be replaced when dependencies are built.
