file(REMOVE_RECURSE
  "libdbsherlock_common.a"
)
