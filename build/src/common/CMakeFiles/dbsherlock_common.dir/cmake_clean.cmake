file(REMOVE_RECURSE
  "CMakeFiles/dbsherlock_common.dir/csv.cc.o"
  "CMakeFiles/dbsherlock_common.dir/csv.cc.o.d"
  "CMakeFiles/dbsherlock_common.dir/json.cc.o"
  "CMakeFiles/dbsherlock_common.dir/json.cc.o.d"
  "CMakeFiles/dbsherlock_common.dir/random.cc.o"
  "CMakeFiles/dbsherlock_common.dir/random.cc.o.d"
  "CMakeFiles/dbsherlock_common.dir/stats.cc.o"
  "CMakeFiles/dbsherlock_common.dir/stats.cc.o.d"
  "CMakeFiles/dbsherlock_common.dir/status.cc.o"
  "CMakeFiles/dbsherlock_common.dir/status.cc.o.d"
  "CMakeFiles/dbsherlock_common.dir/strings.cc.o"
  "CMakeFiles/dbsherlock_common.dir/strings.cc.o.d"
  "libdbsherlock_common.a"
  "libdbsherlock_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsherlock_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
