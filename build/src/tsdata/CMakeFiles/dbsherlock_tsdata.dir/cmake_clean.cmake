file(REMOVE_RECURSE
  "CMakeFiles/dbsherlock_tsdata.dir/align.cc.o"
  "CMakeFiles/dbsherlock_tsdata.dir/align.cc.o.d"
  "CMakeFiles/dbsherlock_tsdata.dir/dataset.cc.o"
  "CMakeFiles/dbsherlock_tsdata.dir/dataset.cc.o.d"
  "CMakeFiles/dbsherlock_tsdata.dir/dataset_io.cc.o"
  "CMakeFiles/dbsherlock_tsdata.dir/dataset_io.cc.o.d"
  "CMakeFiles/dbsherlock_tsdata.dir/region.cc.o"
  "CMakeFiles/dbsherlock_tsdata.dir/region.cc.o.d"
  "CMakeFiles/dbsherlock_tsdata.dir/schema.cc.o"
  "CMakeFiles/dbsherlock_tsdata.dir/schema.cc.o.d"
  "libdbsherlock_tsdata.a"
  "libdbsherlock_tsdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsherlock_tsdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
