file(REMOVE_RECURSE
  "libdbsherlock_tsdata.a"
)
