# Empty dependencies file for dbsherlock_tsdata.
# This may be replaced when dependencies are built.
