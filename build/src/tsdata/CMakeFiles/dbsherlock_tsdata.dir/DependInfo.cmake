
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsdata/align.cc" "src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/align.cc.o" "gcc" "src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/align.cc.o.d"
  "/root/repo/src/tsdata/dataset.cc" "src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/dataset.cc.o" "gcc" "src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/dataset.cc.o.d"
  "/root/repo/src/tsdata/dataset_io.cc" "src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/dataset_io.cc.o" "gcc" "src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/dataset_io.cc.o.d"
  "/root/repo/src/tsdata/region.cc" "src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/region.cc.o" "gcc" "src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/region.cc.o.d"
  "/root/repo/src/tsdata/schema.cc" "src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/schema.cc.o" "gcc" "src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbsherlock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
