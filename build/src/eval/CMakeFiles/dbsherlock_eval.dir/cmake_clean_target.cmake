file(REMOVE_RECURSE
  "libdbsherlock_eval.a"
)
