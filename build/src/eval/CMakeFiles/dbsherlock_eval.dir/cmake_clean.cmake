file(REMOVE_RECURSE
  "CMakeFiles/dbsherlock_eval.dir/experiment.cc.o"
  "CMakeFiles/dbsherlock_eval.dir/experiment.cc.o.d"
  "CMakeFiles/dbsherlock_eval.dir/simulated_user.cc.o"
  "CMakeFiles/dbsherlock_eval.dir/simulated_user.cc.o.d"
  "libdbsherlock_eval.a"
  "libdbsherlock_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsherlock_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
