# Empty dependencies file for dbsherlock_eval.
# This may be replaced when dependencies are built.
