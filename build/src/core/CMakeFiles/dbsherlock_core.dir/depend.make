# Empty dependencies file for dbsherlock_core.
# This may be replaced when dependencies are built.
