file(REMOVE_RECURSE
  "CMakeFiles/dbsherlock_core.dir/anomaly_detector.cc.o"
  "CMakeFiles/dbsherlock_core.dir/anomaly_detector.cc.o.d"
  "CMakeFiles/dbsherlock_core.dir/causal_model.cc.o"
  "CMakeFiles/dbsherlock_core.dir/causal_model.cc.o.d"
  "CMakeFiles/dbsherlock_core.dir/dbscan.cc.o"
  "CMakeFiles/dbsherlock_core.dir/dbscan.cc.o.d"
  "CMakeFiles/dbsherlock_core.dir/domain_knowledge.cc.o"
  "CMakeFiles/dbsherlock_core.dir/domain_knowledge.cc.o.d"
  "CMakeFiles/dbsherlock_core.dir/explainer.cc.o"
  "CMakeFiles/dbsherlock_core.dir/explainer.cc.o.d"
  "CMakeFiles/dbsherlock_core.dir/model_io.cc.o"
  "CMakeFiles/dbsherlock_core.dir/model_io.cc.o.d"
  "CMakeFiles/dbsherlock_core.dir/model_repository.cc.o"
  "CMakeFiles/dbsherlock_core.dir/model_repository.cc.o.d"
  "CMakeFiles/dbsherlock_core.dir/partition_space.cc.o"
  "CMakeFiles/dbsherlock_core.dir/partition_space.cc.o.d"
  "CMakeFiles/dbsherlock_core.dir/predicate.cc.o"
  "CMakeFiles/dbsherlock_core.dir/predicate.cc.o.d"
  "CMakeFiles/dbsherlock_core.dir/predicate_generator.cc.o"
  "CMakeFiles/dbsherlock_core.dir/predicate_generator.cc.o.d"
  "CMakeFiles/dbsherlock_core.dir/streaming_monitor.cc.o"
  "CMakeFiles/dbsherlock_core.dir/streaming_monitor.cc.o.d"
  "libdbsherlock_core.a"
  "libdbsherlock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsherlock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
