
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly_detector.cc" "src/core/CMakeFiles/dbsherlock_core.dir/anomaly_detector.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/anomaly_detector.cc.o.d"
  "/root/repo/src/core/causal_model.cc" "src/core/CMakeFiles/dbsherlock_core.dir/causal_model.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/causal_model.cc.o.d"
  "/root/repo/src/core/dbscan.cc" "src/core/CMakeFiles/dbsherlock_core.dir/dbscan.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/dbscan.cc.o.d"
  "/root/repo/src/core/domain_knowledge.cc" "src/core/CMakeFiles/dbsherlock_core.dir/domain_knowledge.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/domain_knowledge.cc.o.d"
  "/root/repo/src/core/explainer.cc" "src/core/CMakeFiles/dbsherlock_core.dir/explainer.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/explainer.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/dbsherlock_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/model_repository.cc" "src/core/CMakeFiles/dbsherlock_core.dir/model_repository.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/model_repository.cc.o.d"
  "/root/repo/src/core/partition_space.cc" "src/core/CMakeFiles/dbsherlock_core.dir/partition_space.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/partition_space.cc.o.d"
  "/root/repo/src/core/predicate.cc" "src/core/CMakeFiles/dbsherlock_core.dir/predicate.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/predicate.cc.o.d"
  "/root/repo/src/core/predicate_generator.cc" "src/core/CMakeFiles/dbsherlock_core.dir/predicate_generator.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/predicate_generator.cc.o.d"
  "/root/repo/src/core/streaming_monitor.cc" "src/core/CMakeFiles/dbsherlock_core.dir/streaming_monitor.cc.o" "gcc" "src/core/CMakeFiles/dbsherlock_core.dir/streaming_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbsherlock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
