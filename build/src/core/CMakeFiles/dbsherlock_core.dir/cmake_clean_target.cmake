file(REMOVE_RECURSE
  "libdbsherlock_core.a"
)
