file(REMOVE_RECURSE
  "CMakeFiles/auto_detect.dir/auto_detect.cc.o"
  "CMakeFiles/auto_detect.dir/auto_detect.cc.o.d"
  "auto_detect"
  "auto_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
