
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/live_monitoring.cc" "examples/CMakeFiles/live_monitoring.dir/live_monitoring.cc.o" "gcc" "examples/CMakeFiles/live_monitoring.dir/live_monitoring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dbsherlock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/dbsherlock_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dbsherlock_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dbsherlock_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/dbsherlock_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbsherlock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
