file(REMOVE_RECURSE
  "CMakeFiles/event_sim_diagnosis.dir/event_sim_diagnosis.cc.o"
  "CMakeFiles/event_sim_diagnosis.dir/event_sim_diagnosis.cc.o.d"
  "event_sim_diagnosis"
  "event_sim_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_sim_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
