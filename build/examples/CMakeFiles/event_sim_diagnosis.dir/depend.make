# Empty dependencies file for event_sim_diagnosis.
# This may be replaced when dependencies are built.
