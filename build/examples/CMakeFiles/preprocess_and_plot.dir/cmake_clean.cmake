file(REMOVE_RECURSE
  "CMakeFiles/preprocess_and_plot.dir/preprocess_and_plot.cc.o"
  "CMakeFiles/preprocess_and_plot.dir/preprocess_and_plot.cc.o.d"
  "preprocess_and_plot"
  "preprocess_and_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocess_and_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
