# Empty compiler generated dependencies file for preprocess_and_plot.
# This may be replaced when dependencies are built.
