file(REMOVE_RECURSE
  "CMakeFiles/dba_workweek.dir/dba_workweek.cc.o"
  "CMakeFiles/dba_workweek.dir/dba_workweek.cc.o.d"
  "dba_workweek"
  "dba_workweek.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_workweek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
