# Empty compiler generated dependencies file for dba_workweek.
# This may be replaced when dependencies are built.
