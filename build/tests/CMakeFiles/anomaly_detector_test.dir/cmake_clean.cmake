file(REMOVE_RECURSE
  "CMakeFiles/anomaly_detector_test.dir/anomaly_detector_test.cc.o"
  "CMakeFiles/anomaly_detector_test.dir/anomaly_detector_test.cc.o.d"
  "anomaly_detector_test"
  "anomaly_detector_test.pdb"
  "anomaly_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
