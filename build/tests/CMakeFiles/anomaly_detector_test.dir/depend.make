# Empty dependencies file for anomaly_detector_test.
# This may be replaced when dependencies are built.
