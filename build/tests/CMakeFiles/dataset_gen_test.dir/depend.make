# Empty dependencies file for dataset_gen_test.
# This may be replaced when dependencies are built.
