file(REMOVE_RECURSE
  "CMakeFiles/dataset_gen_test.dir/dataset_gen_test.cc.o"
  "CMakeFiles/dataset_gen_test.dir/dataset_gen_test.cc.o.d"
  "dataset_gen_test"
  "dataset_gen_test.pdb"
  "dataset_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
