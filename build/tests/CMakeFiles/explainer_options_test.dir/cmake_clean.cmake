file(REMOVE_RECURSE
  "CMakeFiles/explainer_options_test.dir/explainer_options_test.cc.o"
  "CMakeFiles/explainer_options_test.dir/explainer_options_test.cc.o.d"
  "explainer_options_test"
  "explainer_options_test.pdb"
  "explainer_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainer_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
