file(REMOVE_RECURSE
  "CMakeFiles/streaming_monitor_test.dir/streaming_monitor_test.cc.o"
  "CMakeFiles/streaming_monitor_test.dir/streaming_monitor_test.cc.o.d"
  "streaming_monitor_test"
  "streaming_monitor_test.pdb"
  "streaming_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
