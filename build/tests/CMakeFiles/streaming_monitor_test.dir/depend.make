# Empty dependencies file for streaming_monitor_test.
# This may be replaced when dependencies are built.
