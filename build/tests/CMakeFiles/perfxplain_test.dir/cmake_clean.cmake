file(REMOVE_RECURSE
  "CMakeFiles/perfxplain_test.dir/perfxplain_test.cc.o"
  "CMakeFiles/perfxplain_test.dir/perfxplain_test.cc.o.d"
  "perfxplain_test"
  "perfxplain_test.pdb"
  "perfxplain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfxplain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
