# Empty dependencies file for perfxplain_test.
# This may be replaced when dependencies are built.
