file(REMOVE_RECURSE
  "CMakeFiles/domain_knowledge_test.dir/domain_knowledge_test.cc.o"
  "CMakeFiles/domain_knowledge_test.dir/domain_knowledge_test.cc.o.d"
  "domain_knowledge_test"
  "domain_knowledge_test.pdb"
  "domain_knowledge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_knowledge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
