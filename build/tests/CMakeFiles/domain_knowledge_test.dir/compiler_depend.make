# Empty compiler generated dependencies file for domain_knowledge_test.
# This may be replaced when dependencies are built.
