# Empty dependencies file for partition_properties_test.
# This may be replaced when dependencies are built.
