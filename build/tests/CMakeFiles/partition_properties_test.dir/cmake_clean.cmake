file(REMOVE_RECURSE
  "CMakeFiles/partition_properties_test.dir/partition_properties_test.cc.o"
  "CMakeFiles/partition_properties_test.dir/partition_properties_test.cc.o.d"
  "partition_properties_test"
  "partition_properties_test.pdb"
  "partition_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
