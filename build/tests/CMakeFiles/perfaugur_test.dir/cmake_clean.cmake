file(REMOVE_RECURSE
  "CMakeFiles/perfaugur_test.dir/perfaugur_test.cc.o"
  "CMakeFiles/perfaugur_test.dir/perfaugur_test.cc.o.d"
  "perfaugur_test"
  "perfaugur_test.pdb"
  "perfaugur_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfaugur_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
