# Empty dependencies file for perfaugur_test.
# This may be replaced when dependencies are built.
