# Empty dependencies file for model_repository_test.
# This may be replaced when dependencies are built.
