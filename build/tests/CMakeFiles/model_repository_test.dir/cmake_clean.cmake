file(REMOVE_RECURSE
  "CMakeFiles/model_repository_test.dir/model_repository_test.cc.o"
  "CMakeFiles/model_repository_test.dir/model_repository_test.cc.o.d"
  "model_repository_test"
  "model_repository_test.pdb"
  "model_repository_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_repository_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
