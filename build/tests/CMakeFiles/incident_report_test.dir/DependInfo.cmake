
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/incident_report_test.cc" "tests/CMakeFiles/incident_report_test.dir/incident_report_test.cc.o" "gcc" "tests/CMakeFiles/incident_report_test.dir/incident_report_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/viz/CMakeFiles/dbsherlock_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/dbsherlock_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbsherlock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdata/CMakeFiles/dbsherlock_tsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbsherlock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
