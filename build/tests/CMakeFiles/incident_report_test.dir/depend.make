# Empty dependencies file for incident_report_test.
# This may be replaced when dependencies are built.
