file(REMOVE_RECURSE
  "CMakeFiles/incident_report_test.dir/incident_report_test.cc.o"
  "CMakeFiles/incident_report_test.dir/incident_report_test.cc.o.d"
  "incident_report_test"
  "incident_report_test.pdb"
  "incident_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
