# Empty compiler generated dependencies file for sem_test.
# This may be replaced when dependencies are built.
