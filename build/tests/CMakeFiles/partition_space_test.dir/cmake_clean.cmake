file(REMOVE_RECURSE
  "CMakeFiles/partition_space_test.dir/partition_space_test.cc.o"
  "CMakeFiles/partition_space_test.dir/partition_space_test.cc.o.d"
  "partition_space_test"
  "partition_space_test.pdb"
  "partition_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
