# Empty compiler generated dependencies file for partition_space_test.
# This may be replaced when dependencies are built.
