file(REMOVE_RECURSE
  "CMakeFiles/load_trace_test.dir/load_trace_test.cc.o"
  "CMakeFiles/load_trace_test.dir/load_trace_test.cc.o.d"
  "load_trace_test"
  "load_trace_test.pdb"
  "load_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
