# Empty dependencies file for load_trace_test.
# This may be replaced when dependencies are built.
