file(REMOVE_RECURSE
  "CMakeFiles/predicate_generator_test.dir/predicate_generator_test.cc.o"
  "CMakeFiles/predicate_generator_test.dir/predicate_generator_test.cc.o.d"
  "predicate_generator_test"
  "predicate_generator_test.pdb"
  "predicate_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
