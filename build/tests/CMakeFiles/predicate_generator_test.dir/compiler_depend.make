# Empty compiler generated dependencies file for predicate_generator_test.
# This may be replaced when dependencies are built.
