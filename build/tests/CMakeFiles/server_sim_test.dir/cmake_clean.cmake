file(REMOVE_RECURSE
  "CMakeFiles/server_sim_test.dir/server_sim_test.cc.o"
  "CMakeFiles/server_sim_test.dir/server_sim_test.cc.o.d"
  "server_sim_test"
  "server_sim_test.pdb"
  "server_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
