# Empty compiler generated dependencies file for explainer_test.
# This may be replaced when dependencies are built.
