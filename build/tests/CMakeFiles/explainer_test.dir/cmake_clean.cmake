file(REMOVE_RECURSE
  "CMakeFiles/explainer_test.dir/explainer_test.cc.o"
  "CMakeFiles/explainer_test.dir/explainer_test.cc.o.d"
  "explainer_test"
  "explainer_test.pdb"
  "explainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
