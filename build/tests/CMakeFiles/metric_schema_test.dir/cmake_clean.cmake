file(REMOVE_RECURSE
  "CMakeFiles/metric_schema_test.dir/metric_schema_test.cc.o"
  "CMakeFiles/metric_schema_test.dir/metric_schema_test.cc.o.d"
  "metric_schema_test"
  "metric_schema_test.pdb"
  "metric_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
