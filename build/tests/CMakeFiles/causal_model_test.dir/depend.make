# Empty dependencies file for causal_model_test.
# This may be replaced when dependencies are built.
