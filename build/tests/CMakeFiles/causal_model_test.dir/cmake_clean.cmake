file(REMOVE_RECURSE
  "CMakeFiles/causal_model_test.dir/causal_model_test.cc.o"
  "CMakeFiles/causal_model_test.dir/causal_model_test.cc.o.d"
  "causal_model_test"
  "causal_model_test.pdb"
  "causal_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
