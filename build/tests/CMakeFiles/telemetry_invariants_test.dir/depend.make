# Empty dependencies file for telemetry_invariants_test.
# This may be replaced when dependencies are built.
