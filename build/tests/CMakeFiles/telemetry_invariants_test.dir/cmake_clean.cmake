file(REMOVE_RECURSE
  "CMakeFiles/telemetry_invariants_test.dir/telemetry_invariants_test.cc.o"
  "CMakeFiles/telemetry_invariants_test.dir/telemetry_invariants_test.cc.o.d"
  "telemetry_invariants_test"
  "telemetry_invariants_test.pdb"
  "telemetry_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
