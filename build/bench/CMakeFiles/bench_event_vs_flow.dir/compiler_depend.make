# Empty compiler generated dependencies file for bench_event_vs_flow.
# This may be replaced when dependencies are built.
