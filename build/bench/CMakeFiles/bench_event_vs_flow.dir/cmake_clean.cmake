file(REMOVE_RECURSE
  "CMakeFiles/bench_event_vs_flow.dir/bench_event_vs_flow.cc.o"
  "CMakeFiles/bench_event_vs_flow.dir/bench_event_vs_flow.cc.o.d"
  "CMakeFiles/bench_event_vs_flow.dir/bench_util.cc.o"
  "CMakeFiles/bench_event_vs_flow.dir/bench_util.cc.o.d"
  "bench_event_vs_flow"
  "bench_event_vs_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_vs_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
