file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_user_study.dir/bench_table3_user_study.cc.o"
  "CMakeFiles/bench_table3_user_study.dir/bench_table3_user_study.cc.o.d"
  "CMakeFiles/bench_table3_user_study.dir/bench_util.cc.o"
  "CMakeFiles/bench_table3_user_study.dir/bench_util.cc.o.d"
  "bench_table3_user_study"
  "bench_table3_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
