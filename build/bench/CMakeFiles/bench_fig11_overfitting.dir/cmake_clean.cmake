file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_overfitting.dir/bench_fig11_overfitting.cc.o"
  "CMakeFiles/bench_fig11_overfitting.dir/bench_fig11_overfitting.cc.o.d"
  "CMakeFiles/bench_fig11_overfitting.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig11_overfitting.dir/bench_util.cc.o.d"
  "bench_fig11_overfitting"
  "bench_fig11_overfitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_overfitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
