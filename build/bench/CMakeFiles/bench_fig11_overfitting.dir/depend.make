# Empty dependencies file for bench_fig11_overfitting.
# This may be replaced when dependencies are built.
