# Empty compiler generated dependencies file for bench_fig8_merged_models.
# This may be replaced when dependencies are built.
