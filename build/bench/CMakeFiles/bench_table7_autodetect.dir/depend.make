# Empty dependencies file for bench_table7_autodetect.
# This may be replaced when dependencies are built.
