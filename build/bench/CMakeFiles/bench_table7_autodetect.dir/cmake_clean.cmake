file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_autodetect.dir/bench_table7_autodetect.cc.o"
  "CMakeFiles/bench_table7_autodetect.dir/bench_table7_autodetect.cc.o.d"
  "CMakeFiles/bench_table7_autodetect.dir/bench_util.cc.o"
  "CMakeFiles/bench_table7_autodetect.dir/bench_util.cc.o.d"
  "bench_table7_autodetect"
  "bench_table7_autodetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_autodetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
