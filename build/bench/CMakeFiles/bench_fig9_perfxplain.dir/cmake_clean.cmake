file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_perfxplain.dir/bench_fig9_perfxplain.cc.o"
  "CMakeFiles/bench_fig9_perfxplain.dir/bench_fig9_perfxplain.cc.o.d"
  "CMakeFiles/bench_fig9_perfxplain.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig9_perfxplain.dir/bench_util.cc.o.d"
  "bench_fig9_perfxplain"
  "bench_fig9_perfxplain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_perfxplain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
