# Empty compiler generated dependencies file for bench_fig10_compound.
# This may be replaced when dependencies are built.
