file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_compound.dir/bench_fig10_compound.cc.o"
  "CMakeFiles/bench_fig10_compound.dir/bench_fig10_compound.cc.o.d"
  "CMakeFiles/bench_fig10_compound.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig10_compound.dir/bench_util.cc.o.d"
  "bench_fig10_compound"
  "bench_fig10_compound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_compound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
