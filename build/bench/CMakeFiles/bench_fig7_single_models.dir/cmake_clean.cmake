file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_single_models.dir/bench_fig7_single_models.cc.o"
  "CMakeFiles/bench_fig7_single_models.dir/bench_fig7_single_models.cc.o.d"
  "CMakeFiles/bench_fig7_single_models.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig7_single_models.dir/bench_util.cc.o.d"
  "bench_fig7_single_models"
  "bench_fig7_single_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_single_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
