# Empty compiler generated dependencies file for bench_fig7_single_models.
# This may be replaced when dependencies are built.
