# Empty dependencies file for bench_table8_synthetic_dk.
# This may be replaced when dependencies are built.
