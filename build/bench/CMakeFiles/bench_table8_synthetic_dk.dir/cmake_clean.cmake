file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_synthetic_dk.dir/bench_table8_synthetic_dk.cc.o"
  "CMakeFiles/bench_table8_synthetic_dk.dir/bench_table8_synthetic_dk.cc.o.d"
  "CMakeFiles/bench_table8_synthetic_dk.dir/bench_util.cc.o"
  "CMakeFiles/bench_table8_synthetic_dk.dir/bench_util.cc.o.d"
  "bench_table8_synthetic_dk"
  "bench_table8_synthetic_dk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_synthetic_dk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
