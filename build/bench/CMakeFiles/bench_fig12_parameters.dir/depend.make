# Empty dependencies file for bench_fig12_parameters.
# This may be replaced when dependencies are built.
