file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_parameters.dir/bench_fig12_parameters.cc.o"
  "CMakeFiles/bench_fig12_parameters.dir/bench_fig12_parameters.cc.o.d"
  "CMakeFiles/bench_fig12_parameters.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig12_parameters.dir/bench_util.cc.o.d"
  "bench_fig12_parameters"
  "bench_fig12_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
