file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_domain_knowledge.dir/bench_table2_domain_knowledge.cc.o"
  "CMakeFiles/bench_table2_domain_knowledge.dir/bench_table2_domain_knowledge.cc.o.d"
  "CMakeFiles/bench_table2_domain_knowledge.dir/bench_util.cc.o"
  "CMakeFiles/bench_table2_domain_knowledge.dir/bench_util.cc.o.d"
  "bench_table2_domain_knowledge"
  "bench_table2_domain_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_domain_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
