# Empty compiler generated dependencies file for bench_table2_domain_knowledge.
# This may be replaced when dependencies are built.
