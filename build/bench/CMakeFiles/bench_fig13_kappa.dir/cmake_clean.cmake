file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_kappa.dir/bench_fig13_kappa.cc.o"
  "CMakeFiles/bench_fig13_kappa.dir/bench_fig13_kappa.cc.o.d"
  "CMakeFiles/bench_fig13_kappa.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig13_kappa.dir/bench_util.cc.o.d"
  "bench_fig13_kappa"
  "bench_fig13_kappa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_kappa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
