# Empty dependencies file for bench_fig13_kappa.
# This may be replaced when dependencies are built.
