file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_robustness.dir/bench_table5_robustness.cc.o"
  "CMakeFiles/bench_table5_robustness.dir/bench_table5_robustness.cc.o.d"
  "CMakeFiles/bench_table5_robustness.dir/bench_util.cc.o"
  "CMakeFiles/bench_table5_robustness.dir/bench_util.cc.o.d"
  "bench_table5_robustness"
  "bench_table5_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
