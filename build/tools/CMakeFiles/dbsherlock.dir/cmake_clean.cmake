file(REMOVE_RECURSE
  "CMakeFiles/dbsherlock.dir/dbsherlock_main.cc.o"
  "CMakeFiles/dbsherlock.dir/dbsherlock_main.cc.o.d"
  "dbsherlock"
  "dbsherlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsherlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
