# Empty compiler generated dependencies file for dbsherlock.
# This may be replaced when dependencies are built.
